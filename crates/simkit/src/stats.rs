//! Statistics used by the experiment harnesses.
//!
//! The paper's evaluation reduces to a handful of statistical views:
//! per-point means with variability (Figures 3 and 5), a sorted-sample
//! distribution with an outlier tail (Figure 4), and ordinary-least-squares
//! line fits (Figure 6's `y = 0.70x + 166` vs `y = 0.22x + 210`). This
//! module implements exactly those, deterministically.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Minimum observation (NaN-free input assumed); +inf when empty.
    pub fn min(&self) -> f64 {
        self.min
    }
    /// Maximum observation; -inf when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merge another accumulator into this one (parallel reduction form).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch summary of a sample: moments plus order statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation.
    pub stddev: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// 50th percentile.
    pub median: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarize a sample. Empty input yields an all-zero summary.
    pub fn of(samples: &[f64]) -> Summary {
        if samples.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
                median: 0.0,
                p90: 0.0,
                p99: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let mut acc = OnlineStats::new();
        for &x in samples {
            acc.push(x);
        }
        Summary {
            count: samples.len(),
            mean: acc.mean(),
            stddev: acc.stddev(),
            min: sorted[0],
            max: *sorted.last().expect("non-empty"),
            median: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }

    /// Coefficient of variation (stddev / mean), 0 when mean is 0.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.stddev / self.mean
        }
    }
}

/// Percentile (0–100) of an already sorted sample using linear
/// interpolation between closest ranks.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Result of an ordinary-least-squares line fit `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination (1 = perfect fit).
    pub r2: f64,
}

impl LineFit {
    /// Evaluate the fitted line at `x`.
    pub fn at(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

/// Ordinary least squares over `(x, y)` pairs.
///
/// # Panics
/// Panics on fewer than two points or zero x-variance — a line fit is
/// meaningless there and the figure harnesses must not silently produce one.
pub fn linfit(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "line fit needs at least two points");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let mx = sx / n;
    let my = sy / n;
    let sxx: f64 = points.iter().map(|p| (p.0 - mx) * (p.0 - mx)).sum();
    let sxy: f64 = points.iter().map(|p| (p.0 - mx) * (p.1 - my)).sum();
    assert!(sxx > 0.0, "line fit needs x variance");
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - my) * (p.1 - my)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| {
            let e = p.1 - (slope * p.0 + intercept);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LineFit {
        slope,
        intercept,
        r2,
    }
}

/// A fixed-width histogram for quick-look distributions in reports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    /// Observations below `lo`.
    pub underflow: u64,
    /// Observations at or above `hi`.
    pub overflow: u64,
}

impl Histogram {
    /// `nbins` equal-width bins covering `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Histogram {
        assert!(hi > lo && nbins > 0, "bad histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let idx = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Inclusive-lo/exclusive-hi bounds of bin `i`.
    pub fn bin_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_matches_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut acc = OnlineStats::new();
        for &x in &xs {
            acc.push(x);
        }
        let mean: f64 = xs.iter().sum::<f64>() / xs.len() as f64;
        let var: f64 = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
        assert!((acc.mean() - mean).abs() < 1e-12);
        assert!((acc.variance() - var).abs() < 1e-12);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 9.0);
        assert_eq!(acc.count(), 8);
    }

    #[test]
    fn merge_equals_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let b = OnlineStats::new();
        let mut a2 = a;
        a2.merge(&b);
        assert_eq!(a2, a);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    fn summary_order_stats() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.median - 50.5).abs() < 1e-9);
        assert!((s.p90 - 90.1).abs() < 1e-9);
        assert!((s.mean - 50.5).abs() < 1e-9);
    }

    #[test]
    fn summary_empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.cv(), 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile_sorted(&xs, 0.0), 10.0);
        assert_eq!(percentile_sorted(&xs, 100.0), 40.0);
        assert!((percentile_sorted(&xs, 50.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn linfit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| (i as f64, 0.7 * i as f64 + 166.0))
            .collect();
        let f = linfit(&pts);
        assert!((f.slope - 0.7).abs() < 1e-9);
        assert!((f.intercept - 166.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.at(1000.0) - 866.0).abs() < 1e-6);
    }

    #[test]
    fn linfit_r2_drops_with_noise() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                (x, 2.0 * x + if i % 2 == 0 { 40.0 } else { -40.0 })
            })
            .collect();
        let f = linfit(&pts);
        assert!((f.slope - 2.0).abs() < 0.1);
        assert!(f.r2 < 0.9);
    }

    #[test]
    #[should_panic(expected = "at least two points")]
    fn linfit_rejects_single_point() {
        linfit(&[(1.0, 1.0)]);
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(10.0);
        assert_eq!(h.counts(), &[1; 10]);
        assert_eq!(h.underflow, 1);
        assert_eq!(h.overflow, 1);
        assert_eq!(h.total(), 12);
        assert_eq!(h.bin_bounds(0), (0.0, 1.0));
        assert_eq!(h.bin_bounds(9), (9.0, 10.0));
    }
}
