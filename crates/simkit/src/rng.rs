//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulation (each daemon, each node's
//! clock drift, the workload's compute jitter, ...) draws from its **own**
//! ChaCha stream derived from a single master seed plus a stream label.
//! This gives two properties the experiments depend on:
//!
//! 1. **Reproducibility** — the same master seed reproduces the exact same
//!    cluster history, event for event.
//! 2. **Variance isolation** — toggling one component (say, enabling the
//!    co-scheduler) does not perturb the random draws of unrelated
//!    components, so A/B comparisons are paired, not merely sampled.

use crate::time::SimDur;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Factory for per-component RNG streams derived from one master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSpace {
    master: u64,
}

impl SeedSpace {
    /// Create a seed space from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSpace { master }
    }

    /// The master seed.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the stream for a labelled component. The label should be
    /// stable across runs (e.g. `("daemon", node, slot)` hashes).
    pub fn stream(&self, label: &str) -> SimRng {
        // FNV-1a over the label, folded with the master seed. Stable and
        // dependency-free; ChaCha then decorrelates similar labels.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        // splitmix64-style finalizer over (master, label-hash) so that
        // nearby seeds and labels land far apart in seed space.
        let mut z = self
            .master
            .wrapping_add(h.rotate_left(17))
            .wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(z),
        }
    }

    /// Derive the stream for a component identified by numeric coordinates,
    /// e.g. `("daemon", node=3, idx=7)`.
    pub fn stream_at(&self, kind: &str, a: u64, b: u64) -> SimRng {
        self.stream(&format!("{kind}/{a}/{b}"))
    }
}

/// The serializable position of one RNG stream: the ChaCha input block,
/// the current keystream block, and the next-unread-word index. Captured
/// at a checkpoint and loaded on restore so every stream resumes at the
/// exact draw it stopped at.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RngState {
    /// ChaCha input block (constants, key, counter, nonce), 16 words.
    pub state: Vec<u32>,
    /// Current keystream block, 16 words.
    pub buf: Vec<u32>,
    /// Next unread word of `buf` (16 = exhausted).
    pub idx: u64,
}

/// A deterministic RNG stream with simulation-flavoured helpers.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// A standalone stream (prefer [`SeedSpace::stream`] in simulator code).
    pub fn from_seed(seed: u64) -> Self {
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(seed),
        }
    }

    /// Capture this stream's exact position for a checkpoint.
    pub fn save_state(&self) -> RngState {
        let (state, buf, idx) = self.inner.dump_state();
        RngState {
            state: state.to_vec(),
            buf: buf.to_vec(),
            idx: idx as u64,
        }
    }

    /// Reposition this stream to a previously captured state. Errors if
    /// the word vectors do not have the expected length of 16.
    pub fn load_state(&mut self, s: &RngState) -> Result<(), String> {
        let state: [u32; 16] = s
            .state
            .as_slice()
            .try_into()
            .map_err(|_| format!("rng state has {} words, expected 16", s.state.len()))?;
        let buf: [u32; 16] = s
            .buf
            .as_slice()
            .try_into()
            .map_err(|_| format!("rng buf has {} words, expected 16", s.buf.len()))?;
        self.inner = ChaCha8Rng::from_state(state, buf, s.idx.min(16) as usize);
        Ok(())
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform u64 in `[lo, hi)`. `lo == hi` returns `lo`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            lo
        } else {
            self.inner.random_range(lo..hi)
        }
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Uniform duration in `[lo, hi)`.
    pub fn dur_range(&mut self, lo: SimDur, hi: SimDur) -> SimDur {
        SimDur::from_nanos(self.range(lo.nanos(), hi.nanos()))
    }

    /// Duration jittered multiplicatively: `base * U(1-frac, 1+frac)`.
    ///
    /// Used for compute-phase imbalance and daemon burst variation.
    pub fn jitter(&mut self, base: SimDur, frac: f64) -> SimDur {
        assert!(
            (0.0..=1.0).contains(&frac),
            "jitter fraction must be in [0,1]"
        );
        let k = 1.0 + frac * (2.0 * self.unit() - 1.0);
        base.mul_f64(k)
    }

    /// Exponentially distributed duration with the given mean
    /// (inter-arrival times of unsynchronized interference).
    pub fn exp_dur(&mut self, mean: SimDur) -> SimDur {
        // Inverse CDF; guard u=0 which would yield +inf.
        let u = self.unit().max(f64::MIN_POSITIVE);
        mean.mul_f64(-u.ln())
    }

    /// A standard normal variate (Box–Muller; one sample per call keeps the
    /// stream consumption deterministic and easy to reason about).
    pub fn std_normal(&mut self) -> f64 {
        let u1 = self.unit().max(f64::MIN_POSITIVE);
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Log-normally distributed duration with median `median` and shape
    /// `sigma` (heavy-tailed daemon bursts; sigma ≈ 0.3–0.8 is typical).
    pub fn lognormal_dur(&mut self, median: SimDur, sigma: f64) -> SimDur {
        let z = self.std_normal();
        median.mul_f64((sigma * z).exp())
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.range(0, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let a = SeedSpace::new(42);
        let b = SeedSpace::new(42);
        let mut ra = a.stream("daemon/0/1");
        let mut rb = b.stream("daemon/0/1");
        for _ in 0..100 {
            assert_eq!(ra.range(0, 1 << 40), rb.range(0, 1 << 40));
        }
    }

    #[test]
    fn different_labels_decorrelate() {
        let s = SeedSpace::new(42);
        let mut ra = s.stream("daemon/0/1");
        let mut rb = s.stream("daemon/0/2");
        let same = (0..64)
            .filter(|_| ra.range(0, 1000) == rb.range(0, 1000))
            .count();
        assert!(same < 8, "streams look correlated: {same}/64 equal draws");
    }

    #[test]
    fn different_masters_decorrelate() {
        let mut ra = SeedSpace::new(1).stream("x");
        let mut rb = SeedSpace::new(2).stream("x");
        let same = (0..64)
            .filter(|_| ra.range(0, 1000) == rb.range(0, 1000))
            .count();
        assert!(same < 8);
    }

    #[test]
    fn range_degenerate() {
        let mut r = SimRng::from_seed(7);
        assert_eq!(r.range(5, 5), 5);
        assert_eq!(r.range(9, 3), 9);
        for _ in 0..100 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn jitter_stays_in_band() {
        let mut r = SimRng::from_seed(1);
        let base = SimDur::from_micros(100);
        for _ in 0..1000 {
            let d = r.jitter(base, 0.2);
            assert!(d >= SimDur::from_micros(80) && d <= SimDur::from_micros(120));
        }
    }

    #[test]
    fn exp_dur_mean_is_close() {
        let mut r = SimRng::from_seed(3);
        let mean = SimDur::from_micros(500);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exp_dur(mean).as_micros_f64()).sum();
        let observed = total / n as f64;
        assert!(
            (observed - 500.0).abs() < 25.0,
            "mean {observed} too far from 500"
        );
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut r = SimRng::from_seed(4);
        let median = SimDur::from_micros(200);
        let mut xs: Vec<f64> = (0..10_001)
            .map(|_| r.lognormal_dur(median, 0.5).as_micros_f64())
            .collect();
        xs.sort_by(f64::total_cmp);
        let med = xs[xs.len() / 2];
        assert!((med - 200.0).abs() < 20.0, "median {med} too far from 200");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(r.chance(2.0)); // clamped
    }

    #[test]
    fn save_load_resumes_exact_stream() {
        let mut r = SeedSpace::new(11).stream("ckpt/0/0");
        // Park the stream mid-block so idx != 0.
        for _ in 0..37 {
            r.range(0, 1 << 40);
        }
        let saved = r.save_state();
        let expect: Vec<u64> = (0..100).map(|_| r.range(0, 1 << 40)).collect();
        let mut fresh = SimRng::from_seed(0);
        fresh.load_state(&saved).unwrap();
        let got: Vec<u64> = (0..100).map(|_| fresh.range(0, 1 << 40)).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn load_rejects_malformed_state() {
        let mut r = SimRng::from_seed(1);
        let mut s = r.save_state();
        s.state.pop();
        assert!(r.load_state(&s).is_err());
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::from_seed(6);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "50 elements should not stay sorted"
        );
    }
}
