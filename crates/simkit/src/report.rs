//! Plain-text tables and series for the figure/table harnesses.
//!
//! Every experiment binary prints the same rows the paper reports; this
//! module keeps the formatting consistent (fixed-width, aligned columns)
//! and serializable for the `--json` output mode.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header count.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row has {} cells, table has {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells.to_vec());
        self
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::new();
            for i in 0..ncols {
                if i > 0 {
                    s.push_str("  ");
                }
                let cell = &cells[i];
                let pad = widths[i] - cell.chars().count();
                // Right-align numeric-looking cells, left-align the rest.
                if cell
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+')
                {
                    s.push_str(&" ".repeat(pad));
                    s.push_str(cell);
                } else {
                    s.push_str(cell);
                    s.push_str(&" ".repeat(pad));
                }
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        out
    }
}

/// Format a float with `prec` decimals (helper for table rows).
pub fn fnum(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// One (x, y ± detail) point of a reported series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SeriesPoint {
    /// Independent variable (e.g. processor count).
    pub x: f64,
    /// Dependent variable (e.g. mean Allreduce µs).
    pub y: f64,
    /// Spread (e.g. stddev over repetitions).
    pub spread: f64,
}

/// A named data series, as plotted in one of the paper's figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points in x order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// New empty series.
    pub fn new(name: impl Into<String>) -> Series {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    /// Append a point.
    pub fn push(&mut self, x: f64, y: f64, spread: f64) {
        self.points.push(SeriesPoint { x, y, spread });
    }

    /// `(x, y)` pairs for line fitting.
    pub fn xy(&self) -> Vec<(f64, f64)> {
        self.points.iter().map(|p| (p.x, p.y)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["procs", "mean µs", "note"]);
        t.row(&["64".into(), "211.0".into(), "ok".into()]);
        t.row(&["1936".into(), "1520.7".into(), "long tail".into()]);
        let s = t.render();
        assert!(s.contains("## Demo"));
        assert!(s.contains("procs"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        // Numeric column right-aligned: both rows end at same column for col 0.
        assert!(lines[3].starts_with("  64") || lines[3].contains("64"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn row_arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn series_collects_xy() {
        let mut s = Series::new("vanilla");
        s.push(64.0, 200.0, 10.0);
        s.push(128.0, 260.0, 14.0);
        assert_eq!(s.xy(), vec![(64.0, 200.0), (128.0, 260.0)]);
        assert_eq!(s.points.len(), 2);
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(3.17159, 2), "3.17");
        assert_eq!(fnum(1520.666, 1), "1520.7");
    }

    #[test]
    fn table_len() {
        let mut t = Table::new("t", &["a"]);
        assert!(t.is_empty());
        t.row(&["1".into()]);
        assert_eq!(t.len(), 1);
    }
}
