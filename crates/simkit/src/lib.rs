//! # pa-simkit — deterministic discrete-event simulation kit
//!
//! Foundation crate for the PACE reproduction of *"Improving the Scalability
//! of Parallel Jobs by adding Parallel Awareness to the Operating System"*
//! (Jones et al., SC'03).
//!
//! Provides the pieces every higher layer builds on:
//!
//! * [`SimTime`] / [`SimDur`] — nanosecond-resolution simulation time;
//! * [`EventQueue`] — a deterministic, cancellable calendar queue;
//! * [`SeedSpace`] / [`SimRng`] — per-component reproducible RNG streams;
//! * [`stats`] — Welford accumulators, summaries, percentiles, OLS fits;
//! * [`report`] — the table/series formats used by the figure harnesses.
//!
//! The crate is intentionally free of any OS- or MPI-specific notions: it
//! knows nothing about CPUs, daemons, or collectives.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod events;
pub mod hash;
pub mod report;
pub mod rng;
pub mod stats;
pub mod time;

pub use events::{EventId, EventQueue, QueueStats};
pub use hash::{sha256_hex, Sha256};
pub use report::{Series, SeriesPoint, Table};
pub use rng::{RngState, SeedSpace, SimRng};
pub use stats::{linfit, LineFit, OnlineStats, Summary};
pub use time::{SimDur, SimTime};
