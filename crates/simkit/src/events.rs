//! Cancellable discrete-event queue.
//!
//! The engine is a classic calendar: events are `(time, payload)` pairs
//! popped in time order, with FIFO tie-breaking so that same-timestamp
//! events are processed in the order they were scheduled (this keeps
//! whole-cluster runs deterministic).
//!
//! Cancellation is lazy: [`EventQueue::cancel`] removes the handle from the
//! pending set and the heap entry is discarded when it surfaces. The
//! simulated kernel relies on this for preempted compute segments and
//! rescheduled timers.

use crate::time::SimTime;
use core::cmp::Reverse;
use serde::{Deserialize, Serialize};
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event; use with [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// A handle that never corresponds to a live event. Useful as an
    /// initializer for "no event outstanding" slots.
    pub const NONE: EventId = EventId(u64::MAX);
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    id: EventId,
    payload: E,
}

// Order by (time, id): earliest first, insertion order among ties
// (ids are handed out monotonically).
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        (self.time, self.id).cmp(&(other.time, other.id))
    }
}

/// Engine self-profile: lifetime totals of one [`EventQueue`].
///
/// Plain `u64` counters bumped inline on the hot path (an add and a
/// compare per operation); read them post-run and fold them into a
/// `pa-obs` metrics registry. Everything here is simulation-determined —
/// no wall-clock values — so it is safe to include in deterministic
/// snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Live events popped (tombstones excluded).
    pub popped: u64,
    /// Successful cancellations.
    pub cancelled: u64,
    /// High-water mark of live events pending at once.
    pub max_pending: u64,
}

impl QueueStats {
    /// Fold another queue's totals into this one (sharded engines keep
    /// one queue per shard and report the merged view). Counters add;
    /// `max_pending` adds too, making the merged value an upper bound on
    /// simultaneously pending events that — unlike a true global
    /// high-water mark — does not depend on how shard processing
    /// interleaves, so it is identical at any thread count.
    pub fn absorb(&mut self, other: QueueStats) {
        self.scheduled += other.scheduled;
        self.popped += other.popped;
        self.cancelled += other.cancelled;
        self.max_pending += other.max_pending;
    }
}

/// A deterministic, cancellable event queue.
///
/// ```
/// use pa_simkit::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime::from_micros(10), "b");
/// let a = q.schedule(SimTime::from_micros(5), "a");
/// q.cancel(a);
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "b")));
/// assert_eq!(q.pop(), None);
/// assert_eq!(q.stats().popped, 1);
/// assert_eq!(q.stats().cancelled, 1);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Ids scheduled but neither fired nor cancelled. A heap entry whose id
    /// is absent from this set is a tombstone.
    pending: HashSet<EventId>,
    next_id: u64,
    now: SimTime,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at the epoch.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_id: 0,
            now: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// Lifetime totals for this queue (engine self-profile).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// The timestamp of the most recently popped event (the simulation
    /// clock). Starts at [`SimTime::ZERO`].
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True iff no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedule `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock — an event in the
    /// past is always a simulator bug and silently reordering it would
    /// corrupt causality.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "scheduled event at {time} before current time {}",
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.heap.push(Reverse(Entry { time, id, payload }));
        self.pending.insert(id);
        self.stats.scheduled += 1;
        self.stats.max_pending = self.stats.max_pending.max(self.pending.len() as u64);
        id
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now dead), `false` if it had already fired,
    /// been cancelled, or is [`EventId::NONE`].
    pub fn cancel(&mut self, id: EventId) -> bool {
        let removed = self.pending.remove(&id);
        self.stats.cancelled += u64::from(removed);
        removed
    }

    /// True iff `id` is scheduled and has neither fired nor been cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.pending.contains(&id)
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if !self.pending.remove(&entry.id) {
                continue; // tombstone of a cancelled event
            }
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            self.stats.popped += 1;
            return Some((entry.time, entry.payload));
        }
        None
    }

    /// Advance the clock to `time` without popping anything, so that
    /// "ran to the horizon" leaves `now()` *at* the horizon rather than
    /// at the last popped event. Post-run artifacts (metrics, span
    /// timelines) then carry a single end-of-run timestamp.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock.
    pub fn advance_to(&mut self, time: SimTime) {
        assert!(
            time >= self.now,
            "advance_to {time} would move the clock backwards from {}",
            self.now
        );
        self.now = time;
    }

    /// Live (non-cancelled) entries as `(time, raw event id, payload)`,
    /// sorted in pop order `(time, id)`. Tombstones of cancelled events
    /// are omitted — they are unobservable and need not survive a
    /// checkpoint. Ids are exposed raw so a restored queue can reproduce
    /// the exact FIFO tie-breaking of the original.
    pub fn live_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .filter(|Reverse(e)| self.pending.contains(&e.id))
            .map(|Reverse(e)| (e.time, e.id.0, &e.payload))
            .collect();
        out.sort_by_key(|&(t, id, _)| (t, id));
        out
    }

    /// The next id this queue would hand out (checkpoint bookkeeping).
    pub fn next_id_raw(&self) -> u64 {
        self.next_id
    }

    /// Rebuild a queue from checkpointed parts: clock position, id
    /// allocator, lifetime stats, and the live entries with their
    /// original ids. The inverse of [`EventQueue::live_entries`] plus the
    /// scalar accessors.
    ///
    /// Errors (rather than corrupting causality) if an entry lies in the
    /// past of `now`, reuses an id, or holds an id at or above `next_id`.
    pub fn from_parts(
        now: SimTime,
        next_id: u64,
        stats: QueueStats,
        entries: Vec<(SimTime, u64, E)>,
    ) -> Result<Self, String> {
        let mut heap = BinaryHeap::with_capacity(entries.len());
        let mut pending = HashSet::with_capacity(entries.len());
        for (time, id, payload) in entries {
            if time < now {
                return Err(format!(
                    "checkpointed event at {time} lies before the queue clock {now}"
                ));
            }
            if id >= next_id {
                return Err(format!(
                    "checkpointed event id {id} not below the id allocator {next_id}"
                ));
            }
            if !pending.insert(EventId(id)) {
                return Err(format!("checkpointed event id {id} appears twice"));
            }
            heap.push(Reverse(Entry {
                time,
                id: EventId(id),
                payload,
            }));
        }
        Ok(EventQueue {
            heap,
            pending,
            next_id,
            now,
            stats,
        })
    }

    /// Timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if self.pending.contains(&entry.id) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_micros(1), "dead");
        q.schedule(SimTime::from_micros(2), "live");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double cancel reports false");
        assert_eq!(q.pop().unwrap().1, "live");
    }

    #[test]
    fn cancel_none_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId::NONE));
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_micros(1), ());
        q.pop();
        assert!(!q.cancel(id));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_micros(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn is_pending_lifecycle() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_micros(1), ());
        assert!(q.is_pending(id));
        q.pop();
        assert!(!q.is_pending(id));
        assert!(!q.is_pending(EventId::NONE));
    }

    #[test]
    fn stats_track_lifecycle() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_micros(2), ());
        q.schedule(SimTime::from_micros(3), ());
        q.cancel(a);
        q.cancel(a); // double cancel must not double count
        q.pop();
        q.pop();
        let s = q.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.popped, 2);
        assert_eq!(s.max_pending, 3);
    }

    #[test]
    fn advance_to_moves_clock_without_popping() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(50), ());
        q.advance_to(SimTime::from_micros(20));
        assert_eq!(q.now(), SimTime::from_micros(20));
        assert_eq!(q.len(), 1, "advance_to must not consume events");
        // Advancing to the current time is a no-op, not a panic.
        q.advance_to(SimTime::from_micros(20));
        assert_eq!(q.pop().unwrap().0, SimTime::from_micros(50));
    }

    #[test]
    #[should_panic(expected = "move the clock backwards")]
    fn advance_to_rejects_past() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.advance_to(SimTime::from_micros(5));
    }

    #[test]
    fn stats_absorb_sums_shards() {
        let a = QueueStats {
            scheduled: 10,
            popped: 8,
            cancelled: 1,
            max_pending: 4,
        };
        let mut b = QueueStats {
            scheduled: 3,
            popped: 3,
            cancelled: 0,
            max_pending: 2,
        };
        b.absorb(a);
        assert_eq!(
            b,
            QueueStats {
                scheduled: 13,
                popped: 11,
                cancelled: 1,
                max_pending: 6,
            }
        );
    }

    #[test]
    fn peek_time_skips_tombstones() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_micros(9), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn live_entries_round_trip_preserves_order_and_ids() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "late");
        let dead = q.schedule(SimTime::from_micros(2), "dead");
        let t = SimTime::from_micros(5);
        q.schedule(t, "tie-a");
        q.schedule(t, "tie-b");
        q.cancel(dead);
        q.schedule(SimTime::from_micros(3), "early");
        q.pop(); // consumes "early", clock now at 3 us

        let entries: Vec<(SimTime, u64, &str)> = q
            .live_entries()
            .into_iter()
            .map(|(t, id, p)| (t, id, *p))
            .collect();
        let mut r = EventQueue::from_parts(q.now(), q.next_id_raw(), q.stats(), entries).unwrap();
        assert_eq!(r.now(), q.now());
        assert_eq!(r.stats(), q.stats());
        assert_eq!(r.len(), 3, "tombstone must not survive the round trip");
        // Same-timestamp events keep their original FIFO order.
        assert_eq!(r.pop().unwrap().1, "tie-a");
        assert_eq!(r.pop().unwrap().1, "tie-b");
        assert_eq!(r.pop().unwrap().1, "late");
        // The id allocator continues where the original left off.
        assert_eq!(r.schedule(SimTime::from_micros(20), "new"), {
            let mut orig = q;
            orig.pop();
            orig.pop();
            orig.pop();
            orig.schedule(SimTime::from_micros(20), "new")
        });
    }

    #[test]
    fn from_parts_rejects_corrupt_entries() {
        let stats = QueueStats::default();
        let now = SimTime::from_micros(10);
        // Event in the past of the clock.
        assert!(
            EventQueue::from_parts(now, 5, stats, vec![(SimTime::from_micros(9), 0, ())],).is_err()
        );
        // Id at/above the allocator.
        assert!(
            EventQueue::from_parts(now, 5, stats, vec![(SimTime::from_micros(11), 5, ())],)
                .is_err()
        );
        // Duplicate id.
        assert!(EventQueue::from_parts(
            now,
            5,
            stats,
            vec![
                (SimTime::from_micros(11), 2, ()),
                (SimTime::from_micros(12), 2, ()),
            ],
        )
        .is_err());
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 0u32);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDur::from_micros(5), 1u32);
        q.schedule(t + SimDur::from_micros(3), 2u32);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }
}
