//! Cancellable discrete-event queue.
//!
//! The engine is a classic calendar: events are `(time, payload)` pairs
//! popped in time order, with FIFO tie-breaking so that same-timestamp
//! events are processed in the order they were scheduled (this keeps
//! whole-cluster runs deterministic).
//!
//! # Structure
//!
//! The calendar is an **indexed 4-ary min-heap**: a flat `Vec` ordered by
//! `(time, id)` plus a position map from [`EventId`] to heap slot. The
//! position map doubles as the pending set, so `len`/`is_pending` are a
//! single hash probe and — the part that matters — [`EventQueue::cancel`]
//! is a true O(log n) removal: swap the victim with the last slot and
//! sift. Nothing dead ever stays resident, so [`EventQueue::peek_time`]
//! is a non-allocating, non-mutating `&self` read of slot 0. A 4-ary
//! layout halves the tree depth of a binary heap and keeps each node's
//! children in one cache line, which is where a discrete-event simulator
//! spends its time.
//!
//! # Fallback: lazy cancellation with amortized compaction
//!
//! [`EventQueue::new_lazy`] builds the same heap with the pre-overhaul
//! cancellation policy — cancel only drops the id from the pending map
//! and the heap entry lingers as a *tombstone* — but with the leak
//! fixed: the queue counts resident tombstones and **compacts** (retains
//! live entries, re-heapifies) as soon as dead entries outnumber live
//! ones. That bounds resident garbage at `tombstones <= live` while
//! keeping cancel O(1) amortized. Dead roots are drained eagerly on
//! `cancel`/`pop` so the root is always live and `peek_time` stays
//! `&self` in both modes. [`QueueStats::tombstones`] (resident gauge)
//! and [`QueueStats::compactions`] surface queue health to `pa-obs`.

use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Heap arity. Four children per node: shallower than binary, and a
/// node's child block spans a single cache line of `(time, id)` keys.
const D: usize = 4;

/// Handle to a scheduled event; use with [`EventQueue::cancel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// A handle that never corresponds to a live event. Useful as an
    /// initializer for "no event outstanding" slots.
    pub const NONE: EventId = EventId(u64::MAX);

    /// The raw id, for checkpoint plumbing. Pairs with
    /// [`EventId::from_raw`] and the raw ids in
    /// [`EventQueue::live_entries`].
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from a checkpointed raw id. Only meaningful for
    /// ids previously obtained from [`EventId::raw`] against the same
    /// queue history.
    pub const fn from_raw(raw: u64) -> Self {
        EventId(raw)
    }
}

/// Event ids are dense, monotonically assigned integers, so a general
/// SipHash is wasted cycles on the hottest map in the engine. One
/// Fibonacci multiply mixes the low bits into the high ones, which is
/// all a power-of-two-capacity table needs.
#[derive(Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    #[inline]
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("EventId hashes via write_u64");
    }
    #[inline]
    fn write_u64(&mut self, x: u64) {
        self.0 = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

type PosMap = HashMap<EventId, u32, BuildHasherDefault<IdHasher>>;

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    id: EventId,
    payload: E,
}

impl<E> Entry<E> {
    /// Pop order: earliest time first, insertion order among ties (ids
    /// are handed out monotonically).
    #[inline]
    fn key(&self) -> (SimTime, EventId) {
        (self.time, self.id)
    }
}

/// Engine self-profile: lifetime totals of one [`EventQueue`].
///
/// Plain `u64` counters bumped inline on the hot path (an add and a
/// compare per operation); read them post-run and fold them into a
/// `pa-obs` metrics registry. Everything here is simulation-determined —
/// no wall-clock values — so it is safe to include in deterministic
/// snapshots.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueStats {
    /// Events ever scheduled.
    pub scheduled: u64,
    /// Live events popped (tombstones excluded).
    pub popped: u64,
    /// Successful cancellations.
    pub cancelled: u64,
    /// High-water mark of live events pending at once.
    pub max_pending: u64,
    /// Dead entries currently resident in the heap (a gauge, not a
    /// lifetime total). Always 0 in indexed mode, bounded by the live
    /// count in lazy mode — a growing value here is the leak this field
    /// exists to catch.
    pub tombstones: u64,
    /// Times the lazy fallback compacted tombstones out of the heap.
    pub compactions: u64,
}

impl QueueStats {
    /// Fold another queue's totals into this one (sharded engines keep
    /// one queue per shard and report the merged view). Counters add;
    /// `max_pending` adds too, making the merged value an upper bound on
    /// simultaneously pending events that — unlike a true global
    /// high-water mark — does not depend on how shard processing
    /// interleaves, so it is identical at any thread count. The
    /// `tombstones` gauge likewise adds to a whole-engine resident total.
    pub fn absorb(&mut self, other: QueueStats) {
        self.scheduled += other.scheduled;
        self.popped += other.popped;
        self.cancelled += other.cancelled;
        self.max_pending += other.max_pending;
        self.tombstones += other.tombstones;
        self.compactions += other.compactions;
    }
}

/// A deterministic, cancellable event queue.
///
/// ```
/// use pa_simkit::{EventQueue, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule(SimTime::from_micros(10), "b");
/// let a = q.schedule(SimTime::from_micros(5), "a");
/// q.cancel(a);
/// assert_eq!(q.pop(), Some((SimTime::from_micros(10), "b")));
/// assert_eq!(q.pop(), None);
/// assert_eq!(q.stats().popped, 1);
/// assert_eq!(q.stats().cancelled, 1);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    /// 4-ary min-heap by `(time, id)`. Invariant (both modes): slot 0,
    /// when present, holds a *live* entry.
    heap: Vec<Entry<E>>,
    /// Ids scheduled but neither fired nor cancelled, mapped to their
    /// heap slot. Slots are maintained only in indexed mode; the lazy
    /// fallback uses this purely as the pending set.
    live: PosMap,
    /// Lazy-cancellation fallback when true (see module docs).
    lazy: bool,
    /// Dead entries resident in the heap (lazy mode only; 0 otherwise).
    dead: u32,
    next_id: u64,
    now: SimTime,
    stats: QueueStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at the epoch, with indexed (true
    /// removal) cancellation. This is the production configuration.
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            live: PosMap::default(),
            lazy: false,
            dead: 0,
            next_id: 0,
            now: SimTime::ZERO,
            stats: QueueStats::default(),
        }
    }

    /// An empty queue using the lazy-cancellation fallback: `cancel` is
    /// O(1) and leaves a tombstone, the heap compacts whenever dead
    /// entries outnumber live ones. Same observable pop order and stats
    /// semantics as [`EventQueue::new`] apart from the
    /// `tombstones`/`compactions` fields.
    pub fn new_lazy() -> Self {
        EventQueue {
            lazy: true,
            ..Self::new()
        }
    }

    /// True if this queue uses the lazy-cancellation fallback.
    pub fn is_lazy(&self) -> bool {
        self.lazy
    }

    /// Lifetime totals for this queue (engine self-profile).
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// The timestamp of the most recently popped event (the simulation
    /// clock). Starts at [`SimTime::ZERO`].
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// True iff no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Heap entries physically resident, live plus tombstones. Equals
    /// [`EventQueue::len`] in indexed mode; in lazy mode the compaction
    /// policy bounds it at `2 * len() + 1`.
    pub fn resident_len(&self) -> usize {
        self.heap.len()
    }

    #[inline]
    fn entry_less(a: &Entry<E>, b: &Entry<E>) -> bool {
        a.key() < b.key()
    }

    /// Record that the entry in heap slot `i` now lives there. Position
    /// upkeep is an indexed-mode concern; the lazy fallback never reads
    /// slots.
    #[inline]
    fn set_pos(&mut self, i: usize) {
        if !self.lazy {
            let id = self.heap[i].id;
            if let Some(slot) = self.live.get_mut(&id) {
                *slot = i as u32;
            }
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / D;
            if Self::entry_less(&self.heap[i], &self.heap[parent]) {
                self.heap.swap(i, parent);
                self.set_pos(i);
                i = parent;
            } else {
                break;
            }
        }
        self.set_pos(i);
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let first = i * D + 1;
            if first >= self.heap.len() {
                break;
            }
            let mut best = first;
            let end = (first + D).min(self.heap.len());
            for c in first + 1..end {
                if Self::entry_less(&self.heap[c], &self.heap[best]) {
                    best = c;
                }
            }
            if Self::entry_less(&self.heap[best], &self.heap[i]) {
                self.heap.swap(i, best);
                self.set_pos(i);
                i = best;
            } else {
                break;
            }
        }
        self.set_pos(i);
    }

    /// Remove the entry at heap slot `i` (indexed mode), restoring the
    /// heap property around the hole.
    fn remove_at(&mut self, i: usize) {
        self.heap.swap_remove(i);
        if i < self.heap.len() {
            // The displaced last entry may belong above or below `i`.
            self.set_pos(i);
            if i > 0 && Self::entry_less(&self.heap[i], &self.heap[(i - 1) / D]) {
                self.sift_up(i);
            } else {
                self.sift_down(i);
            }
        }
    }

    /// Lazy mode: pop dead entries off the root until it is live, so
    /// `peek_time` can stay a `&self` read of slot 0.
    fn drain_dead_roots(&mut self) {
        while let Some(e) = self.heap.first() {
            if self.live.contains_key(&e.id) {
                break;
            }
            self.heap.swap_remove(0);
            if !self.heap.is_empty() {
                self.sift_down(0);
            }
            self.dead -= 1;
        }
    }

    /// Lazy mode: rebuild the heap from its live entries. O(n), paid at
    /// most once per n cancellations since the trigger is dead > live.
    fn compact(&mut self) {
        let Self { heap, live, .. } = self;
        heap.retain(|e| live.contains_key(&e.id));
        if self.heap.len() > 1 {
            for i in (0..=(self.heap.len() - 2) / D).rev() {
                self.sift_down(i);
            }
        }
        self.dead = 0;
        self.stats.compactions += 1;
    }

    /// Schedule `payload` at `time`.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock — an event in the
    /// past is always a simulator bug and silently reordering it would
    /// corrupt causality.
    pub fn schedule(&mut self, time: SimTime, payload: E) -> EventId {
        assert!(
            time >= self.now,
            "scheduled event at {time} before current time {}",
            self.now
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        let i = self.heap.len();
        self.heap.push(Entry { time, id, payload });
        self.live.insert(id, i as u32);
        self.sift_up(i);
        self.stats.scheduled += 1;
        self.stats.max_pending = self.stats.max_pending.max(self.live.len() as u64);
        id
    }

    /// Cancel a previously scheduled event. Returns `true` if the event was
    /// still pending (and is now dead), `false` if it had already fired,
    /// been cancelled, or is [`EventId::NONE`].
    ///
    /// Indexed mode removes the heap entry outright (O(log n)); the lazy
    /// fallback leaves a tombstone and compacts when dead entries
    /// outnumber live ones.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(pos) = self.live.remove(&id) else {
            return false;
        };
        self.stats.cancelled += 1;
        if self.lazy {
            self.dead += 1;
            self.drain_dead_roots();
            if usize::try_from(self.dead).unwrap_or(usize::MAX) > self.live.len() {
                self.compact();
            }
            self.stats.tombstones = u64::from(self.dead);
        } else {
            self.remove_at(pos as usize);
        }
        true
    }

    /// True iff `id` is scheduled and has neither fired nor been cancelled.
    pub fn is_pending(&self, id: EventId) -> bool {
        self.live.contains_key(&id)
    }

    /// Pop the earliest live event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let entry = self.heap.swap_remove(0);
        if !self.heap.is_empty() {
            self.set_pos(0);
            self.sift_down(0);
        }
        let was_live = self.live.remove(&entry.id).is_some();
        debug_assert!(was_live, "heap root was a tombstone");
        if self.lazy {
            self.drain_dead_roots();
            // A pop shrinks the live set, so it can push the dead share
            // over the cancel-path threshold; compacting here too keeps
            // `tombstones <= live` after *every* operation, not just
            // after cancels.
            if usize::try_from(self.dead).unwrap_or(usize::MAX) > self.live.len() {
                self.compact();
            }
            self.stats.tombstones = u64::from(self.dead);
        }
        debug_assert!(entry.time >= self.now, "event queue went backwards");
        self.now = entry.time;
        self.stats.popped += 1;
        Some((entry.time, entry.payload))
    }

    /// Advance the clock to `time` without popping anything, so that
    /// "ran to the horizon" leaves `now()` *at* the horizon rather than
    /// at the last popped event. Post-run artifacts (metrics, span
    /// timelines) then carry a single end-of-run timestamp.
    ///
    /// # Panics
    /// Panics if `time` is earlier than the current clock.
    pub fn advance_to(&mut self, time: SimTime) {
        assert!(
            time >= self.now,
            "advance_to {time} would move the clock backwards from {}",
            self.now
        );
        self.now = time;
    }

    /// Live (non-cancelled) entries as `(time, raw event id, payload)`,
    /// sorted in pop order `(time, id)`. Tombstones of cancelled events
    /// are omitted — they are unobservable and need not survive a
    /// checkpoint. Ids are exposed raw so a restored queue can reproduce
    /// the exact FIFO tie-breaking of the original.
    pub fn live_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut out: Vec<(SimTime, u64, &E)> = self
            .heap
            .iter()
            .filter(|e| self.live.contains_key(&e.id))
            .map(|e| (e.time, e.id.0, &e.payload))
            .collect();
        out.sort_by_key(|&(t, id, _)| (t, id));
        out
    }

    /// The next id this queue would hand out (checkpoint bookkeeping).
    pub fn next_id_raw(&self) -> u64 {
        self.next_id
    }

    /// Rebuild a queue from checkpointed parts: clock position, id
    /// allocator, lifetime stats, and the live entries with their
    /// original ids. The inverse of [`EventQueue::live_entries`] plus the
    /// scalar accessors. The rebuilt queue is always indexed — tombstones
    /// do not survive a checkpoint, so its `tombstones` gauge restarts at
    /// zero regardless of what the snapshot's stats carried.
    ///
    /// Errors (rather than corrupting causality) if an entry lies in the
    /// past of `now`, reuses an id, or holds an id at or above `next_id`.
    pub fn from_parts(
        now: SimTime,
        next_id: u64,
        stats: QueueStats,
        entries: Vec<(SimTime, u64, E)>,
    ) -> Result<Self, String> {
        let mut heap = Vec::with_capacity(entries.len());
        let mut live = PosMap::default();
        live.reserve(entries.len());
        for (time, id, payload) in entries {
            if time < now {
                return Err(format!(
                    "checkpointed event at {time} lies before the queue clock {now}"
                ));
            }
            if id >= next_id {
                return Err(format!(
                    "checkpointed event id {id} not below the id allocator {next_id}"
                ));
            }
            if live.insert(EventId(id), heap.len() as u32).is_some() {
                return Err(format!("checkpointed event id {id} appears twice"));
            }
            heap.push(Entry {
                time,
                id: EventId(id),
                payload,
            });
        }
        let mut q = EventQueue {
            heap,
            live,
            lazy: false,
            dead: 0,
            next_id,
            now,
            stats: QueueStats {
                tombstones: 0,
                ..stats
            },
        };
        if q.heap.len() > 1 {
            for i in (0..=(q.heap.len() - 2) / D).rev() {
                q.sift_down(i);
            }
        }
        Ok(q)
    }

    /// Timestamp of the next live event without popping it. The root is
    /// live by invariant in both modes, so this is one bounds check and
    /// one load.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDur;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(30), 3);
        q.schedule(SimTime::from_micros(10), 1);
        q.schedule(SimTime::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(7), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_micros(7));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_in_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.schedule(SimTime::from_micros(5), ());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_micros(1), "dead");
        q.schedule(SimTime::from_micros(2), "live");
        assert!(q.cancel(id));
        assert!(!q.cancel(id), "double cancel reports false");
        assert_eq!(q.pop().unwrap().1, "live");
    }

    #[test]
    fn cancel_none_is_noop() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId::NONE));
    }

    #[test]
    fn cancel_after_fire_reports_false() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_micros(1), ());
        q.pop();
        assert!(!q.cancel(id));
        assert!(q.is_empty());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_micros(2), ());
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
    }

    #[test]
    fn is_pending_lifecycle() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_micros(1), ());
        assert!(q.is_pending(id));
        q.pop();
        assert!(!q.is_pending(id));
        assert!(!q.is_pending(EventId::NONE));
    }

    #[test]
    fn stats_track_lifecycle() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_micros(2), ());
        q.schedule(SimTime::from_micros(3), ());
        q.cancel(a);
        q.cancel(a); // double cancel must not double count
        q.pop();
        q.pop();
        let s = q.stats();
        assert_eq!(s.scheduled, 3);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.popped, 2);
        assert_eq!(s.max_pending, 3);
        assert_eq!(s.tombstones, 0, "indexed mode never leaves tombstones");
        assert_eq!(s.compactions, 0);
    }

    #[test]
    fn advance_to_moves_clock_without_popping() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(50), ());
        q.advance_to(SimTime::from_micros(20));
        assert_eq!(q.now(), SimTime::from_micros(20));
        assert_eq!(q.len(), 1, "advance_to must not consume events");
        // Advancing to the current time is a no-op, not a panic.
        q.advance_to(SimTime::from_micros(20));
        assert_eq!(q.pop().unwrap().0, SimTime::from_micros(50));
    }

    #[test]
    #[should_panic(expected = "move the clock backwards")]
    fn advance_to_rejects_past() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.schedule(SimTime::from_micros(10), ());
        q.pop();
        q.advance_to(SimTime::from_micros(5));
    }

    #[test]
    fn stats_absorb_sums_shards() {
        let a = QueueStats {
            scheduled: 10,
            popped: 8,
            cancelled: 1,
            max_pending: 4,
            tombstones: 1,
            compactions: 2,
        };
        let mut b = QueueStats {
            scheduled: 3,
            popped: 3,
            cancelled: 0,
            max_pending: 2,
            tombstones: 0,
            compactions: 1,
        };
        b.absorb(a);
        assert_eq!(
            b,
            QueueStats {
                scheduled: 13,
                popped: 11,
                cancelled: 1,
                max_pending: 6,
                tombstones: 1,
                compactions: 3,
            }
        );
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_micros(1), ());
        q.schedule(SimTime::from_micros(9), ());
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(9)));
    }

    #[test]
    fn peek_time_is_a_shared_borrow() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(4), ());
        let shared: &EventQueue<()> = &q;
        assert_eq!(shared.peek_time(), Some(SimTime::from_micros(4)));
        assert_eq!(shared.peek_time(), shared.peek_time());
    }

    #[test]
    fn live_entries_round_trip_preserves_order_and_ids() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), "late");
        let dead = q.schedule(SimTime::from_micros(2), "dead");
        let t = SimTime::from_micros(5);
        q.schedule(t, "tie-a");
        q.schedule(t, "tie-b");
        q.cancel(dead);
        q.schedule(SimTime::from_micros(3), "early");
        q.pop(); // consumes "early", clock now at 3 us

        let entries: Vec<(SimTime, u64, &str)> = q
            .live_entries()
            .into_iter()
            .map(|(t, id, p)| (t, id, *p))
            .collect();
        let mut r = EventQueue::from_parts(q.now(), q.next_id_raw(), q.stats(), entries).unwrap();
        assert_eq!(r.now(), q.now());
        assert_eq!(r.stats(), q.stats());
        assert_eq!(r.len(), 3, "tombstone must not survive the round trip");
        // Same-timestamp events keep their original FIFO order.
        assert_eq!(r.pop().unwrap().1, "tie-a");
        assert_eq!(r.pop().unwrap().1, "tie-b");
        assert_eq!(r.pop().unwrap().1, "late");
        // The id allocator continues where the original left off.
        assert_eq!(r.schedule(SimTime::from_micros(20), "new"), {
            let mut orig = q;
            orig.pop();
            orig.pop();
            orig.pop();
            orig.schedule(SimTime::from_micros(20), "new")
        });
    }

    #[test]
    fn from_parts_rejects_corrupt_entries() {
        let stats = QueueStats::default();
        let now = SimTime::from_micros(10);
        // Event in the past of the clock.
        assert!(
            EventQueue::from_parts(now, 5, stats, vec![(SimTime::from_micros(9), 0, ())],).is_err()
        );
        // Id at/above the allocator.
        assert!(
            EventQueue::from_parts(now, 5, stats, vec![(SimTime::from_micros(11), 5, ())],)
                .is_err()
        );
        // Duplicate id.
        assert!(EventQueue::from_parts(
            now,
            5,
            stats,
            vec![
                (SimTime::from_micros(11), 2, ()),
                (SimTime::from_micros(12), 2, ()),
            ],
        )
        .is_err());
    }

    #[test]
    fn interleaved_schedule_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_micros(10), 0u32);
        let (t, _) = q.pop().unwrap();
        q.schedule(t + SimDur::from_micros(5), 1u32);
        q.schedule(t + SimDur::from_micros(3), 2u32);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 1);
    }

    #[test]
    fn indexed_cancel_removes_resident_entry() {
        let mut q = EventQueue::new();
        let mut ids = Vec::new();
        for i in 0..100u32 {
            ids.push(q.schedule(SimTime::from_micros(u64::from(i % 13)), i));
        }
        for id in ids.iter().step_by(2) {
            assert!(q.cancel(*id));
        }
        assert_eq!(q.len(), 50);
        assert_eq!(
            q.resident_len(),
            50,
            "indexed cancel must physically remove the entry"
        );
        assert_eq!(q.stats().tombstones, 0);
        // Survivors still pop in (time, id) order.
        let mut last = (SimTime::ZERO, 0u32);
        let mut popped = 0;
        while let Some((t, v)) = q.pop() {
            assert!((t, v) > last || popped == 0);
            last = (t, v);
            popped += 1;
        }
        assert_eq!(popped, 50);
    }

    #[test]
    fn lazy_mode_bounds_tombstones_and_compacts() {
        let mut q = EventQueue::new_lazy();
        assert!(q.is_lazy());
        // Timer re-arm pattern: a near event stays live at the root while
        // far-future timers are repeatedly armed and cancelled behind it.
        // The old queue leaked one buried heap entry per round; the
        // compaction policy must keep residency bounded.
        q.schedule(SimTime::from_micros(10), u64::MAX);
        let mut prev = None;
        for i in 0..1_000u64 {
            let id = q.schedule(SimTime::from_micros(1_000 + i), i);
            if let Some(p) = prev.replace(id) {
                q.cancel(p);
            }
            assert!(
                q.stats().tombstones <= q.len() as u64,
                "round {i}: {} tombstones vs {} live",
                q.stats().tombstones,
                q.len()
            );
            assert!(q.resident_len() <= 2 * q.len() + 1);
        }
        assert_eq!(q.len(), 2);
        assert!(q.stats().compactions > 0, "compaction never triggered");
        assert_eq!(q.pop().unwrap().1, u64::MAX);
        assert_eq!(q.pop().unwrap().1, 999);
        assert!(q.pop().is_none());
    }

    #[test]
    fn lazy_peek_and_pop_skip_dead_roots() {
        let mut q = EventQueue::new_lazy();
        let a = q.schedule(SimTime::from_micros(1), "a");
        let b = q.schedule(SimTime::from_micros(2), "b");
        q.schedule(SimTime::from_micros(3), "c");
        q.cancel(a);
        // Root was the cancelled entry; the eager root drain keeps
        // peek_time a &self read.
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        q.cancel(b);
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(3)));
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
        assert_eq!(q.stats().tombstones, 0);
    }

    #[test]
    fn lazy_and_indexed_agree_on_pop_order_and_core_stats() {
        // Deterministic interleaving of schedule/cancel/pop across both
        // policies; the big randomized version lives in the workspace
        // proptest suite.
        let mut qi = EventQueue::new();
        let mut ql = EventQueue::new_lazy();
        let mut ids_i = Vec::new();
        let mut ids_l = Vec::new();
        let mut x = 9_u64;
        for round in 0..200u64 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            // Anchor at the (mirrored) clock so pops never strand later
            // schedules in the past.
            let t = qi.now() + SimDur::from_micros(1 + (x >> 33) % 50);
            ids_i.push(qi.schedule(t, round));
            ids_l.push(ql.schedule(t, round));
            if x % 3 == 0 && !ids_i.is_empty() {
                let k = (x as usize >> 7) % ids_i.len();
                assert_eq!(qi.cancel(ids_i[k]), ql.cancel(ids_l[k]));
            }
            if x % 5 == 0 {
                assert_eq!(qi.pop(), ql.pop());
            }
            assert_eq!(qi.peek_time(), ql.peek_time());
            assert_eq!(qi.len(), ql.len());
        }
        loop {
            let (a, b) = (qi.pop(), ql.pop());
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        let (si, sl) = (qi.stats(), ql.stats());
        assert_eq!(si.scheduled, sl.scheduled);
        assert_eq!(si.popped, sl.popped);
        assert_eq!(si.cancelled, sl.cancelled);
        assert_eq!(si.max_pending, sl.max_pending);
    }

    #[test]
    fn event_id_raw_round_trip() {
        let mut q = EventQueue::new();
        let id = q.schedule(SimTime::from_micros(1), ());
        assert_eq!(EventId::from_raw(id.raw()), id);
        assert_eq!(EventId::NONE.raw(), u64::MAX);
    }
}
