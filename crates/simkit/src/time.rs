//! Simulation time types.
//!
//! The simulator keeps a single global timeline in integer nanoseconds.
//! Nanosecond resolution keeps every quantity in the paper's range —
//! microsecond collective phases up to multi-hour cron periods — exactly
//! representable without rounding drift (u64 nanoseconds covers ~584 years).
//!
//! Two newtypes keep instants and durations from being mixed up:
//! [`SimTime`] is a point on the timeline, [`SimDur`] is a length of time.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Rem, Sub, SubAssign};
use serde::{Deserialize, Serialize};

/// An instant on the simulation timeline, in nanoseconds since the epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

/// A span of simulation time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDur(pub u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline sentinel.
    pub const FAR_FUTURE: SimTime = SimTime(u64::MAX);

    /// Instant `n` nanoseconds after the epoch.
    pub const fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }
    /// Instant `us` microseconds after the epoch.
    ///
    /// # Panics
    /// Panics if the instant is not representable in u64 nanoseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(checked_ns(us, 1_000, "µs"))
    }
    /// Instant `ms` milliseconds after the epoch.
    ///
    /// # Panics
    /// Panics if the instant is not representable in u64 nanoseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(checked_ns(ms, 1_000_000, "ms"))
    }
    /// Instant `s` seconds after the epoch.
    ///
    /// # Panics
    /// Panics if the instant is not representable in u64 nanoseconds.
    pub fn from_secs(s: u64) -> Self {
        SimTime(checked_ns(s, 1_000_000_000, "s"))
    }

    /// Raw nanosecond count.
    pub const fn nanos(self) -> u64 {
        self.0
    }
    /// Whole microseconds (truncating).
    pub const fn micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Time as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Time as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Elapsed duration since `earlier`; saturates to zero if `earlier`
    /// is in this instant's future.
    pub fn since(self, earlier: SimTime) -> SimDur {
        SimDur(self.0.saturating_sub(earlier.0))
    }

    /// The next instant at or after `self` that is an exact multiple of
    /// `period` from `phase`. Used for tick alignment and for the
    /// co-scheduler's second-boundary alignment (§4 of the paper).
    ///
    /// If `self` already lies on a boundary, `self` is returned.
    pub fn align_up(self, period: SimDur, phase: SimDur) -> SimTime {
        assert!(period.0 > 0, "alignment period must be nonzero");
        let p = period.0;
        let ph = phase.0 % p;
        let t = self.0;
        // Smallest x >= t with x ≡ ph (mod p).
        let rem = (t + p - ph % p) % p; // distance past the previous boundary
        let _ = rem;
        let base = t.saturating_sub(ph) / p * p + ph;
        if base >= t {
            SimTime(base)
        } else {
            SimTime(base + p)
        }
    }

    /// The next *strictly later* boundary (see [`SimTime::align_up`]).
    pub fn next_boundary(self, period: SimDur, phase: SimDur) -> SimTime {
        let aligned = self.align_up(period, phase);
        if aligned > self {
            aligned
        } else {
            aligned + period
        }
    }
}

impl SimDur {
    /// A zero-length duration.
    pub const ZERO: SimDur = SimDur(0);

    /// Duration of `n` nanoseconds.
    pub const fn from_nanos(n: u64) -> Self {
        SimDur(n)
    }
    /// Duration of `us` microseconds.
    ///
    /// # Panics
    /// Panics if the duration is not representable in u64 nanoseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDur(checked_ns(us, 1_000, "µs"))
    }
    /// Duration of `ms` milliseconds.
    ///
    /// # Panics
    /// Panics if the duration is not representable in u64 nanoseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDur(checked_ns(ms, 1_000_000, "ms"))
    }
    /// Duration of `s` seconds.
    ///
    /// # Panics
    /// Panics if the duration is not representable in u64 nanoseconds.
    pub fn from_secs(s: u64) -> Self {
        SimDur(checked_ns(s, 1_000_000_000, "s"))
    }
    /// Duration from fractional microseconds (truncating to ns).
    pub fn from_micros_f64(us: f64) -> Self {
        assert!(
            us >= 0.0 && us.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDur((us * 1e3) as u64)
    }
    /// Duration from fractional seconds (truncating to ns).
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s >= 0.0 && s.is_finite(),
            "duration must be finite and non-negative"
        );
        SimDur((s * 1e9) as u64)
    }

    /// Raw nanosecond count.
    pub const fn nanos(self) -> u64 {
        self.0
    }
    /// Whole microseconds (truncating).
    pub const fn micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }
    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }
    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }
    /// True iff this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0.saturating_sub(rhs.0))
    }

    /// Scale by a non-negative float (used for duty cycles and jitter).
    ///
    /// The multiply runs in u128 fixed point (the factor is held as a
    /// rounded 64.64 binary fraction), so durations above 2^53 ns do not
    /// lose nanoseconds to an f64 round-trip.
    ///
    /// # Panics
    /// Panics if `k` is negative/non-finite or the product overflows u64
    /// nanoseconds.
    pub fn mul_f64(self, k: f64) -> SimDur {
        assert!(
            k >= 0.0 && k.is_finite(),
            "scale factor must be finite and non-negative, got {k}"
        );
        // k as a 64.64 fixed-point fraction. Splitting off the integer
        // part first keeps the fractional scale exact for any finite k
        // (the 2^64 shift is a power of two, so `fract * 2^64` only
        // rescales the mantissa).
        let int = k.trunc() as u128;
        let frac = (k.fract() * 18_446_744_073_709_551_616.0).round() as u128; // 2^64
        let n = u128::from(self.0);
        let scaled = n
            .checked_mul(int)
            .and_then(|whole| {
                let part = (n * frac + (1u128 << 63)) >> 64; // round to nearest ns
                whole.checked_add(part)
            })
            .unwrap_or_else(|| panic!("duration overflow: {} ns * {k}", self.0));
        assert!(
            scaled <= u128::from(u64::MAX),
            "duration overflow: {} ns * {k} exceeds u64 nanoseconds",
            self.0
        );
        SimDur(scaled as u64)
    }
}

/// `value * ns_per_unit` with overflow reported against the offending
/// value, for the unit-suffixed constructors.
fn checked_ns(value: u64, ns_per_unit: u64, unit: &str) -> u64 {
    value.checked_mul(ns_per_unit).unwrap_or_else(|| {
        panic!("time value {value}{unit} overflows u64 nanoseconds (~584 years)")
    })
}

impl Add<SimDur> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}
impl AddAssign<SimDur> for SimTime {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}
impl Sub<SimDur> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDur) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}
impl Sub<SimTime> for SimTime {
    type Output = SimDur;
    fn sub(self, rhs: SimTime) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}
impl Rem<SimDur> for SimTime {
    type Output = SimDur;
    fn rem(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 % rhs.0)
    }
}

impl Add for SimDur {
    type Output = SimDur;
    fn add(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 + rhs.0)
    }
}
impl AddAssign for SimDur {
    fn add_assign(&mut self, rhs: SimDur) {
        self.0 += rhs.0;
    }
}
impl Sub for SimDur {
    type Output = SimDur;
    fn sub(self, rhs: SimDur) -> SimDur {
        SimDur(self.0 - rhs.0)
    }
}
impl SubAssign for SimDur {
    fn sub_assign(&mut self, rhs: SimDur) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for SimDur {
    type Output = SimDur;
    fn mul(self, rhs: u64) -> SimDur {
        SimDur(self.0 * rhs)
    }
}
impl Div<u64> for SimDur {
    type Output = SimDur;
    fn div(self, rhs: u64) -> SimDur {
        SimDur(self.0 / rhs)
    }
}
impl Div<SimDur> for SimDur {
    type Output = u64;
    fn div(self, rhs: SimDur) -> u64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}
impl fmt::Display for SimDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", fmt_ns(self.0))
    }
}

/// Human-scaled rendering of a nanosecond count (e.g. `350.0µs`, `1.315s`).
fn fmt_ns(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.3}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.3}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}µs", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimDur::from_secs(1).nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_micros(100);
        let d = SimDur::from_micros(40);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
        let mut u = t;
        u += d;
        assert_eq!(u, SimTime::from_micros(140));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(b.since(a), SimDur::from_micros(4));
        assert_eq!(a.since(b), SimDur::ZERO);
    }

    #[test]
    fn align_up_on_boundary_is_identity() {
        let p = SimDur::from_millis(10);
        let t = SimTime::from_millis(30);
        assert_eq!(t.align_up(p, SimDur::ZERO), t);
    }

    #[test]
    fn align_up_rounds_up() {
        let p = SimDur::from_millis(10);
        assert_eq!(
            SimTime::from_millis(31).align_up(p, SimDur::ZERO),
            SimTime::from_millis(40)
        );
        // Phase of 1ms: boundaries at 1, 11, 21, ... (the staggered-tick layout).
        assert_eq!(
            SimTime::from_millis(31).align_up(p, SimDur::from_millis(1)),
            SimTime::from_millis(31)
        );
        assert_eq!(
            SimTime::from_millis(32).align_up(p, SimDur::from_millis(1)),
            SimTime::from_millis(41)
        );
    }

    #[test]
    fn next_boundary_is_strictly_later() {
        let p = SimDur::from_secs(1);
        let t = SimTime::from_secs(10);
        assert_eq!(t.next_boundary(p, SimDur::ZERO), SimTime::from_secs(11));
        let t2 = SimTime::from_millis(10_500);
        assert_eq!(t2.next_boundary(p, SimDur::ZERO), SimTime::from_secs(11));
    }

    #[test]
    fn duty_cycle_scaling() {
        let w = SimDur::from_secs(5);
        assert_eq!(w.mul_f64(0.9), SimDur::from_millis(4_500));
        assert_eq!(w.mul_f64(0.0), SimDur::ZERO);
    }

    #[test]
    fn mul_f64_is_exact_above_f64_precision() {
        // 2^53 + 1 ns is not representable in f64; the old f64 round-trip
        // lost the low bit even at k = 1.0.
        let d = SimDur::from_nanos((1 << 53) + 1);
        assert_eq!(d.mul_f64(1.0), d);
        // Halving is a power-of-two scale: exact at any magnitude.
        let big = SimDur::from_nanos(u64::MAX - 1);
        assert_eq!(big.mul_f64(0.5), SimDur::from_nanos((u64::MAX - 1) / 2));
    }

    #[test]
    #[should_panic(expected = "overflows u64 nanoseconds")]
    fn from_secs_overflow_panics() {
        // Would silently wrap with the old unchecked multiply.
        let _ = SimDur::from_secs(18_500_000_000);
    }

    #[test]
    #[should_panic(expected = "duration overflow")]
    fn mul_f64_overflow_panics() {
        let _ = SimDur::from_nanos(u64::MAX).mul_f64(2.0);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(format!("{}", SimDur::from_nanos(17)), "17ns");
        assert_eq!(format!("{}", SimDur::from_micros(350)), "350.0µs");
        assert_eq!(format!("{}", SimDur::from_millis(600)), "600.000ms");
        assert_eq!(format!("{}", SimDur::from_secs(1315)), "1315.000s");
    }

    #[test]
    fn div_counts_periods() {
        assert_eq!(SimDur::from_secs(1) / SimDur::from_millis(10), 100);
    }
}
