//! # pa-cluster — the multi-node SP system
//!
//! Assembles per-node kernels (`pa-kernel`) into a cluster connected by a
//! switch fabric with a globally synchronized timebase, mirroring the
//! study's RS/6000 SP machines (ASCI White, Frost, Blue Oak):
//!
//! * [`FabricModel`] — LogGP-style message delivery (switch vs. shared
//!   memory paths);
//! * [`ClusterSpec`] — the machine shape (nodes × CPUs, kernel options,
//!   boot-time clock skew);
//! * [`ClusterSim`] — the event-calendar driver that routes messages and
//!   runs every node kernel on the shared global timeline, including the
//!   switch-clock synchronization step the co-scheduler performs at
//!   startup (§4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fabric;
pub mod sim;

pub use fabric::FabricModel;
pub use sim::{ClusterEvent, ClusterSim, ClusterSpec};
