//! # pa-cluster — the multi-node SP system
//!
//! Assembles per-node kernels (`pa-kernel`) into a cluster connected by a
//! switch fabric with a globally synchronized timebase, mirroring the
//! study's RS/6000 SP machines (ASCI White, Frost, Blue Oak):
//!
//! * [`FabricModel`] — LogGP-style message delivery (switch vs. shared
//!   memory paths);
//! * [`ClusterSpec`] — the machine shape (nodes × CPUs, kernel options,
//!   boot-time clock skew);
//! * [`ClusterSim`] — the conservatively-parallel engine that advances one
//!   shard per node in lookahead-bounded time windows, routes messages
//!   between shards at deterministic window barriers (bit-identical at any
//!   thread count), and performs the switch-clock synchronization step the
//!   co-scheduler runs at startup (§4).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fabric;
pub mod sim;

pub use fabric::{FabricModel, LINK_WAIT_BUCKETS, LINK_WAIT_EDGES_NS};
pub use sim::{verify_checkpoint_file, ClusterSim, ClusterSpec};
