//! The multi-node simulation driver.
//!
//! [`ClusterSim`] owns one *shard* per node — the node's [`Kernel`] plus a
//! private event calendar — and a switch [`FabricModel`] connecting them.
//! The engine is **conservatively parallel**: it advances all shards in
//! bounded time windows whose width is the cross-node wire latency
//! (the *lookahead*). Because every cross-node message takes at least
//! `net_latency` of fabric time, no event processed inside the current
//! window can affect another shard within that same window, so shards may
//! run the window concurrently without coordination. At each window
//! barrier, cross-shard messages are exchanged and merged in a
//! deterministic order — sorted by `(delivery time, source node, send
//! sequence)` — so the simulation history is **bit-identical at any
//! thread count**, including the serial path.
//!
//! The per-shard calendars together *are* the switch's globally
//! synchronized timebase; each node's kernel sees global time only through
//! its own `ClockModel` — exactly as real nodes see real time only through
//! their (possibly skewed) time-of-day clocks.
//!
//! Fabric channels are FIFO: delivery on each `(src node, dst node)`
//! channel is clamped to be non-decreasing in send order, mirroring the
//! in-order SP switch routes. Without the clamp a small message could
//! overtake a large one sent earlier on the same channel (serialization
//! makes the large one slower), which no real in-order fabric permits.

use crate::fabric::{FabricModel, LINK_WAIT_BUCKETS, LINK_WAIT_EDGES_NS};
use pa_kernel::{ClockModel, Effects, Kernel, KernelEvent, Message, SchedOptions};
use pa_simkit::{EventQueue, QueueStats, SeedSpace, SimDur, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Static description of a cluster to build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of SMP nodes.
    pub nodes: u32,
    /// CPUs per node (the study's machines: 16-way Nighthawk/Power3).
    pub cpus_per_node: u8,
    /// Kernel options (identical on every node, like a site-wide kernel).
    pub options: SchedOptions,
    /// Maximum boot-time clock offset; each node draws uniformly from
    /// `[0, skew_max)`. Zero models pre-synchronized clocks.
    pub skew_max: SimDur,
    /// Trace-ring capacity per node.
    pub trace_capacity: usize,
    /// Fabric constants.
    pub fabric: FabricModel,
}

impl ClusterSpec {
    /// A cluster in the study's shape: `nodes` × 16-way, vanilla kernel,
    /// unsynchronized clocks (up to 10 ms skew).
    pub fn sp_system(nodes: u32) -> ClusterSpec {
        ClusterSpec {
            nodes,
            cpus_per_node: 16,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::from_millis(10),
            trace_capacity: 1 << 18,
            fabric: FabricModel::default(),
        }
    }

    /// Same, with the prototype kernel options.
    pub fn sp_system_prototype(nodes: u32) -> ClusterSpec {
        ClusterSpec {
            options: SchedOptions::prototype(),
            ..ClusterSpec::sp_system(nodes)
        }
    }

    /// Total CPU count.
    pub fn total_cpus(&self) -> u32 {
        self.nodes * u32::from(self.cpus_per_node)
    }
}

/// A cross-shard message staged during a window, delivered at the barrier.
struct StagedMsg {
    deliver_at: SimTime,
    src_node: u32,
    seq: u64,
    dst_node: u32,
    msg: Message,
}

/// One node's slice of the cluster: its kernel, its private event
/// calendar, and the staging state for messages leaving the node. Shard
/// structure is *per node*, never per thread, so the event history is
/// independent of how shards are distributed over worker threads.
struct Shard {
    node: u32,
    nnodes: u32,
    kernel: Kernel,
    queue: EventQueue<KernelEvent>,
    fx: Effects,
    events_processed: u64,
    messages_routed: u64,
    bytes_routed: u64,
    fifo_clamps: u64,
    /// Monotone sequence for cross-shard sends; with the source node it
    /// forms the deterministic tie-break of the barrier merge.
    msg_seq: u64,
    /// Per-destination FIFO floor: the latest delivery time already
    /// promised on the `(this node → dst)` channel.
    last_delivery: HashMap<u32, SimTime>,
    /// Cross-shard messages staged during the current window.
    outbox: Vec<StagedMsg>,
    /// Busy-until register of this node's egress link. Advanced at send,
    /// inside the owning shard, so it is deterministic in event order.
    egress_free_at: SimTime,
    /// Busy-until register of this node's ingress link. Advanced only at
    /// the window-merge barrier, in the canonical merge order.
    ingress_free_at: SimTime,
    /// Messages delayed by a busy link (egress or ingress).
    link_waits: u64,
    /// Total link queueing delay, nanoseconds.
    link_wait_ns: u64,
    /// Queueing-delay histogram; buckets bounded by `LINK_WAIT_EDGES_NS`
    /// plus one overflow bucket.
    link_wait_hist: [u64; LINK_WAIT_BUCKETS],
}

impl Shard {
    /// Process every local event strictly before `window_end`.
    fn process_window(&mut self, window_end: SimTime, fabric: &FabricModel) {
        while let Some(t) = self.queue.peek_time() {
            if t >= window_end {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event vanished");
            self.events_processed += 1;
            self.kernel.handle(now, ev, &mut self.fx);
            self.drain_effects(now, fabric);
        }
    }

    /// Move kernel effects into the calendar (local) or outbox (remote).
    fn drain_effects(&mut self, now: SimTime, fabric: &FabricModel) {
        for (t, ev) in self.fx.schedule.drain(..) {
            self.queue.schedule(t, ev);
        }
        for msg in self.fx.outbound.drain(..) {
            let dst = msg.dst.node;
            assert!(dst < self.nnodes, "message to nonexistent node {dst}");
            self.messages_routed += 1;
            self.bytes_routed += u64::from(msg.bytes);
            let mut deliver_at = now + fabric.delay(&msg);
            // Egress link: concurrent cross-node sends share the node's
            // finite uplink, so a send issued while the link is still
            // draining an earlier payload queues behind it. The wait is
            // non-negative, so `deliver_at >= now + net_latency` still
            // holds and the engine's lookahead is never shortened.
            if dst != self.node {
                if let Some(occ) = fabric.link_occupancy(msg.bytes) {
                    let start = if self.egress_free_at > now {
                        let wait = self.egress_free_at - now;
                        self.link_waits += 1;
                        self.link_wait_ns += wait.nanos();
                        self.link_wait_hist[link_wait_bucket(wait)] += 1;
                        deliver_at += wait;
                        self.egress_free_at
                    } else {
                        now
                    };
                    self.egress_free_at = start + occ;
                }
            }
            // FIFO clamp: fabric channels deliver in send order. A later
            // (smaller) message may not overtake an earlier (larger) one
            // still serializing on the same channel.
            let floor = self.last_delivery.entry(dst).or_insert(SimTime::ZERO);
            if deliver_at < *floor {
                deliver_at = *floor;
                self.fifo_clamps += 1;
            }
            *floor = deliver_at;
            if dst == self.node {
                self.queue
                    .schedule(deliver_at, KernelEvent::Deliver { msg });
            } else {
                self.outbox.push(StagedMsg {
                    deliver_at,
                    src_node: self.node,
                    seq: self.msg_seq,
                    dst_node: dst,
                    msg,
                });
                self.msg_seq += 1;
            }
        }
    }

    /// Apply ingress-link queueing to a staged cross-shard message and
    /// schedule it into this (destination) shard's calendar; returns the
    /// final delivery time. Must be called in the canonical
    /// `(deliver_at, src_node, seq)` merge order: the ingress busy-until
    /// register advances monotonically in that order, so the serial and
    /// parallel engines observe identical queueing.
    fn accept_staged(&mut self, m: StagedMsg, fabric: &FabricModel) -> SimTime {
        let mut deliver_at = m.deliver_at;
        if let Some(occ) = fabric.link_occupancy(m.msg.bytes) {
            if self.ingress_free_at > deliver_at {
                let wait = self.ingress_free_at - deliver_at;
                self.link_waits += 1;
                self.link_wait_ns += wait.nanos();
                self.link_wait_hist[link_wait_bucket(wait)] += 1;
                deliver_at = self.ingress_free_at;
            }
            self.ingress_free_at = deliver_at + occ;
        }
        self.queue
            .schedule(deliver_at, KernelEvent::Deliver { msg: m.msg });
        deliver_at
    }
}

/// Histogram bucket for a link queueing delay (last bucket is overflow).
fn link_wait_bucket(wait: SimDur) -> usize {
    LINK_WAIT_EDGES_NS
        .iter()
        .position(|&edge| wait.nanos() <= edge)
        .unwrap_or(LINK_WAIT_EDGES_NS.len())
}

/// What one worker thread learned about its shards during a window:
/// earliest next local event, live application threads, and the staged
/// cross-shard messages. The coordinator aggregates these instead of
/// re-scanning every shard.
struct WindowReport {
    min_next_ns: u64,
    apps: usize,
    staged: Vec<StagedMsg>,
}

impl Default for WindowReport {
    fn default() -> Self {
        WindowReport {
            min_next_ns: u64::MAX,
            apps: 0,
            staged: Vec::new(),
        }
    }
}

/// Exclusive upper bound of the window opening at `t_start`.
fn window_end_of(t_start: SimTime, horizon: SimTime, lookahead: SimDur) -> SimTime {
    // `horizon` is inclusive, so the hard cap is one nanosecond past it.
    let hard = horizon.nanos().saturating_add(1);
    SimTime::from_nanos(t_start.nanos().saturating_add(lookahead.nanos()).min(hard))
}

/// The running cluster.
pub struct ClusterSim {
    shards: Vec<Shard>,
    fabric: FabricModel,
    /// Window width: the minimum cross-node fabric delay.
    lookahead: SimDur,
    booted: bool,
    clock_resyncs: u64,
    sim_threads: usize,
    now: SimTime,
}

impl ClusterSim {
    /// Build the cluster: one kernel per node with per-node RNG streams
    /// and boot-time clock offsets drawn from `seeds`.
    pub fn build(spec: &ClusterSpec, seeds: &SeedSpace) -> ClusterSim {
        spec.fabric.validate().expect("invalid fabric model");
        assert!(spec.nodes > 0, "cluster needs at least one node");
        let shards = (0..spec.nodes)
            .map(|n| {
                let mut clock_rng = seeds.stream_at("cluster/clock", u64::from(n), 0);
                let offset = if spec.skew_max.is_zero() {
                    SimDur::ZERO
                } else {
                    SimDur::from_nanos(clock_rng.range(0, spec.skew_max.nanos()))
                };
                Shard {
                    node: n,
                    nnodes: spec.nodes,
                    kernel: Kernel::new(
                        n,
                        spec.cpus_per_node,
                        spec.options,
                        ClockModel::with_offset(offset),
                        seeds.stream_at("cluster/kernel", u64::from(n), 0),
                        spec.trace_capacity,
                    ),
                    queue: EventQueue::new(),
                    fx: Effects::new(),
                    events_processed: 0,
                    messages_routed: 0,
                    bytes_routed: 0,
                    fifo_clamps: 0,
                    msg_seq: 0,
                    last_delivery: HashMap::new(),
                    outbox: Vec::new(),
                    egress_free_at: SimTime::ZERO,
                    ingress_free_at: SimTime::ZERO,
                    link_waits: 0,
                    link_wait_ns: 0,
                    link_wait_hist: [0; LINK_WAIT_BUCKETS],
                }
            })
            .collect();
        ClusterSim {
            shards,
            fabric: spec.fabric,
            lookahead: spec.fabric.net_latency,
            booted: false,
            clock_resyncs: 0,
            sim_threads: 1,
            now: SimTime::ZERO,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Worker threads used to advance shards (1 = serial). The event
    /// history is identical at any setting; this only trades wall-clock
    /// time. Clamped to the node count at run time.
    pub fn set_sim_threads(&mut self, threads: usize) {
        self.sim_threads = threads.max(1);
    }

    /// Configured worker thread count.
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Access a node's kernel (setup: spawning threads, enabling traces).
    pub fn kernel_mut(&mut self, node: u32) -> &mut Kernel {
        &mut self.shards[node as usize].kernel
    }

    /// Access a node's kernel read-only (post-run analysis).
    pub fn kernel(&self, node: u32) -> &Kernel {
        &self.shards[node as usize].kernel
    }

    /// Current global time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Messages routed over the fabric.
    pub fn messages_routed(&self) -> u64 {
        self.shards.iter().map(|s| s.messages_routed).sum()
    }

    /// Payload bytes routed over the fabric.
    pub fn bytes_routed(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes_routed).sum()
    }

    /// Deliveries delayed by the per-channel FIFO clamp (a later message
    /// would otherwise have overtaken an earlier one on the same channel).
    pub fn fifo_clamps(&self) -> u64 {
        self.shards.iter().map(|s| s.fifo_clamps).sum()
    }

    /// Messages delayed behind a busy ingress or egress link. Always zero
    /// in the unlimited (default) link mode.
    pub fn link_waits(&self) -> u64 {
        self.shards.iter().map(|s| s.link_waits).sum()
    }

    /// Total link queueing delay across all messages, nanoseconds.
    pub fn link_wait_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.link_wait_ns).sum()
    }

    /// Link queueing-delay histogram, merged across shards; buckets are
    /// bounded by [`LINK_WAIT_EDGES_NS`] plus one overflow bucket.
    pub fn link_wait_hist(&self) -> [u64; LINK_WAIT_BUCKETS] {
        let mut total = [0u64; LINK_WAIT_BUCKETS];
        for sh in &self.shards {
            for (t, &c) in total.iter_mut().zip(sh.link_wait_hist.iter()) {
                *t += c;
            }
        }
        total
    }

    /// Node clocks re-synchronized via [`ClusterSim::sync_clocks`].
    pub fn clock_resyncs(&self) -> u64 {
        self.clock_resyncs
    }

    /// Engine self-profile, merged across all shard calendars.
    pub fn queue_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for sh in &self.shards {
            total.absorb(sh.queue.stats());
        }
        total
    }

    /// Synchronize every node's clock to the switch clock, leaving at most
    /// `residual_max` of error per node (the co-scheduler's startup
    /// procedure, §4). Must be called before [`ClusterSim::boot`] so tick
    /// boundaries are planned on the synced clocks.
    pub fn sync_clocks(&mut self, seeds: &SeedSpace, residual_max: SimDur) {
        for (n, sh) in self.shards.iter_mut().enumerate() {
            let mut rng = seeds.stream_at("cluster/clocksync", n as u64, 0);
            let residual = if residual_max.is_zero() {
                SimDur::ZERO
            } else {
                SimDur::from_nanos(rng.range(0, residual_max.nanos()))
            };
            sh.kernel.clock_mut().sync_to_switch(residual);
            self.clock_resyncs += 1;
        }
    }

    /// Boot every node at the current time.
    pub fn boot(&mut self) {
        assert!(!self.booted, "boot called twice");
        self.booted = true;
        let now = self.now;
        for sh in &mut self.shards {
            sh.kernel.boot(now, &mut sh.fx);
            sh.drain_effects(now, &self.fabric);
        }
        Self::merge_outboxes(&mut self.shards, &self.fabric);
    }

    /// Live application threads across the cluster.
    pub fn apps_alive(&self) -> usize {
        self.shards.iter().map(|s| s.kernel.app_alive()).sum()
    }

    /// Run until every application thread has exited or `horizon` passes.
    /// Returns the stop time: the latest event processed. Termination is
    /// checked at window barriers, so trailing events inside the final
    /// lookahead window are processed on every shard before stopping —
    /// identically at any thread count.
    pub fn run_until_apps_done(&mut self, horizon: SimTime) -> SimTime {
        self.run_windows(horizon, true);
        let end = self
            .shards
            .iter()
            .map(|s| s.queue.now())
            .max()
            .unwrap_or(self.now)
            .max(self.now);
        self.now = end;
        end
    }

    /// Run until `horizon` regardless of application state. Afterwards the
    /// global clock reads exactly `horizon` (every event at or before it
    /// has been processed), and that time is returned.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        self.run_windows(horizon, false);
        for sh in &mut self.shards {
            let target = horizon.max(sh.queue.now());
            sh.queue.advance_to(target);
        }
        self.now = self.now.max(horizon);
        self.now
    }

    /// Deliver staged cross-shard messages in the canonical merge order,
    /// applying ingress-link queueing per destination as they land.
    fn merge_outboxes(shards: &mut [Shard], fabric: &FabricModel) {
        let mut staged: Vec<StagedMsg> = Vec::new();
        for sh in shards.iter_mut() {
            staged.append(&mut sh.outbox);
        }
        if staged.is_empty() {
            return;
        }
        staged.sort_by_key(|m| (m.deliver_at, m.src_node, m.seq));
        for m in staged {
            let dst = m.dst_node as usize;
            shards[dst].accept_staged(m, fabric);
        }
    }

    /// Earliest pending event across all shards.
    fn next_event_time(&mut self) -> Option<SimTime> {
        self.shards
            .iter_mut()
            .filter_map(|s| s.queue.peek_time())
            .min()
    }

    fn run_windows(&mut self, horizon: SimTime, until_apps_done: bool) {
        assert!(self.booted, "boot the cluster first");
        let nthreads = self.sim_threads.min(self.shards.len()).max(1);
        if nthreads <= 1 {
            self.run_windows_serial(horizon, until_apps_done);
        } else {
            self.run_windows_parallel(horizon, until_apps_done, nthreads);
        }
    }

    /// The serial engine: the reference window sequence.
    fn run_windows_serial(&mut self, horizon: SimTime, until_apps_done: bool) {
        loop {
            if until_apps_done && self.apps_alive() == 0 {
                break;
            }
            let Some(t_start) = self.next_event_time() else {
                break;
            };
            if t_start > horizon {
                break;
            }
            let we = window_end_of(t_start, horizon, self.lookahead);
            for sh in &mut self.shards {
                sh.process_window(we, &self.fabric);
            }
            Self::merge_outboxes(&mut self.shards, &self.fabric);
        }
    }

    /// The parallel engine: persistent workers advance disjoint shard
    /// stripes window by window; a coordinator derives the *same* window
    /// sequence the serial path would and performs the deterministic
    /// barrier merge. Stop conditions, window bounds, per-shard event
    /// order, and merge order are all functions of simulation state alone,
    /// so the history is identical to the serial engine's.
    fn run_windows_parallel(&mut self, horizon: SimTime, until_apps_done: bool, nthreads: usize) {
        let fabric = self.fabric;
        let lookahead = self.lookahead;
        let shards: Vec<Mutex<Shard>> = std::mem::take(&mut self.shards)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let barrier = Barrier::new(nthreads + 1);
        let window_end_ns = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let slots: Vec<Mutex<WindowReport>> = (0..nthreads)
            .map(|_| Mutex::new(WindowReport::default()))
            .collect();
        std::thread::scope(|scope| {
            for t in 0..nthreads {
                let shards = &shards;
                let barrier = &barrier;
                let window_end_ns = &window_end_ns;
                let done = &done;
                let slots = &slots;
                let fabric = &fabric;
                scope.spawn(move || loop {
                    barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let we = SimTime::from_nanos(window_end_ns.load(Ordering::Acquire));
                    let mut report = WindowReport::default();
                    let mut i = t;
                    while i < shards.len() {
                        let mut sh = shards[i].lock().unwrap();
                        sh.process_window(we, fabric);
                        if let Some(next) = sh.queue.peek_time() {
                            report.min_next_ns = report.min_next_ns.min(next.nanos());
                        }
                        report.apps += sh.kernel.app_alive();
                        report.staged.append(&mut sh.outbox);
                        drop(sh);
                        i += nthreads;
                    }
                    *slots[t].lock().unwrap() = report;
                    barrier.wait();
                });
            }
            // Coordinator. Initial scan mirrors the serial loop's first
            // apps/next-event check; afterwards both are maintained from
            // the worker reports plus the merged deliveries.
            let mut next_ns = u64::MAX;
            let mut apps = 0usize;
            for m in shards.iter() {
                let mut sh = m.lock().unwrap();
                if let Some(t0) = sh.queue.peek_time() {
                    next_ns = next_ns.min(t0.nanos());
                }
                apps += sh.kernel.app_alive();
            }
            loop {
                if until_apps_done && apps == 0 {
                    break;
                }
                if next_ns == u64::MAX || next_ns > horizon.nanos() {
                    break;
                }
                let we = window_end_of(SimTime::from_nanos(next_ns), horizon, lookahead);
                window_end_ns.store(we.nanos(), Ordering::Release);
                barrier.wait(); // open the window
                barrier.wait(); // all shards processed it
                let mut staged: Vec<StagedMsg> = Vec::new();
                next_ns = u64::MAX;
                apps = 0;
                for slot in slots.iter() {
                    let mut s = slot.lock().unwrap();
                    next_ns = next_ns.min(s.min_next_ns);
                    apps += s.apps;
                    staged.append(&mut s.staged);
                }
                staged.sort_by_key(|m| (m.deliver_at, m.src_node, m.seq));
                for m in staged {
                    let dst = m.dst_node as usize;
                    // Ingress queueing may move the delivery later; track
                    // the *final* time so the next window opens exactly
                    // where the serial engine's queue scan would put it.
                    let final_at = shards[dst].lock().unwrap().accept_staged(m, &fabric);
                    next_ns = next_ns.min(final_at.nanos());
                }
            }
            done.store(true, Ordering::Release);
            barrier.wait();
        });
        self.shards = shards
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::{
        Action, CpuId, Endpoint, Message, Prio, Script, SrcSel, TagSel, ThreadSpec, ThreadState,
        Tid, WaitMode,
    };
    use pa_trace::{HookMask, ThreadClass};

    fn two_node_cluster() -> ClusterSim {
        let spec = ClusterSpec {
            nodes: 2,
            cpus_per_node: 2,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::ZERO,
            trace_capacity: 1 << 14,
            fabric: FabricModel::default(),
        };
        ClusterSim::build(&spec, &SeedSpace::new(1))
    }

    fn ep(node: u32, tid: u32) -> Endpoint {
        Endpoint {
            node,
            tid: Tid(tid),
        }
    }

    fn msg(src: Endpoint, dst: Endpoint, tag: u64, bytes: u32) -> Message {
        Message {
            src,
            dst,
            tag,
            bytes,
            sent_at: SimTime::ZERO,
            payload: 0,
        }
    }

    #[test]
    fn cross_node_ping_pong() {
        let mut sim = two_node_cluster();
        // Node 0 rank sends to node 1 rank, which replies; both then exit.
        sim.kernel_mut(0).trace_mut().set_mask(HookMask::ALL);
        sim.kernel_mut(0).spawn(
            ThreadSpec::new("rank0", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Send(msg(ep(0, 0), ep(1, 0), 1, 8)),
                Action::Recv {
                    tag: TagSel::Exact(2),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
            ])),
        );
        sim.kernel_mut(1).spawn(
            ThreadSpec::new("rank1", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Recv {
                    tag: TagSel::Exact(1),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
                Action::Send(msg(ep(1, 0), ep(0, 0), 2, 8)),
            ])),
        );
        sim.boot();
        let end = sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        // Two network hops plus overheads: tens of microseconds.
        assert!(end >= SimTime::from_micros(26), "too fast: {end}");
        assert!(end < SimTime::from_millis(1), "too slow: {end}");
        assert_eq!(sim.kernel(0).thread_state(Tid(0)), ThreadState::Exited);
        assert_eq!(sim.now(), end);
    }

    #[test]
    fn fifo_clamp_prevents_overtaking() {
        // A 1 MB message followed by an 8-byte message on the same
        // channel: serialization makes the large one ~2.9 ms slower, so
        // without the clamp the small one would overtake it. The receiver
        // waits only for the *small* message; in-order delivery forces its
        // completion past the large message's serialization time.
        let mut sim = two_node_cluster();
        sim.kernel_mut(0).spawn(
            ThreadSpec::new("sender", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Send(msg(ep(0, 0), ep(1, 0), 1, 1_000_000)),
                Action::Send(msg(ep(0, 0), ep(1, 0), 2, 8)),
            ])),
        );
        sim.kernel_mut(1).spawn(
            ThreadSpec::new("receiver", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![Action::Recv {
                tag: TagSel::Exact(2),
                src: SrcSel::Any,
                wait: WaitMode::Poll,
            }])),
        );
        sim.boot();
        let end = sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        assert_eq!(sim.fifo_clamps(), 1, "small message should be clamped");
        // 1 MB at 350 MB/s is ~2.86 ms of serialization.
        assert!(
            end >= SimTime::from_millis(2),
            "overtook the large message: {end}"
        );
    }

    fn two_node_cluster_with_link(link_bandwidth: f64) -> ClusterSim {
        let spec = ClusterSpec {
            nodes: 2,
            cpus_per_node: 2,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::ZERO,
            trace_capacity: 1 << 14,
            fabric: FabricModel {
                link_bandwidth: Some(link_bandwidth),
                ..FabricModel::default()
            },
        };
        ClusterSim::build(&spec, &SeedSpace::new(1))
    }

    #[test]
    fn egress_link_queues_concurrent_sends() {
        // Two 100 KB messages sent back-to-back over a 100 MB/s link:
        // each occupies the egress link for 1 ms, so the second must queue
        // behind the first instead of overlapping for free.
        let mut sim = two_node_cluster_with_link(100e6);
        sim.kernel_mut(0).spawn(
            ThreadSpec::new("sender", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Send(msg(ep(0, 0), ep(1, 0), 1, 100_000)),
                Action::Send(msg(ep(0, 0), ep(1, 0), 2, 100_000)),
            ])),
        );
        sim.kernel_mut(1).spawn(
            ThreadSpec::new("receiver", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Recv {
                    tag: TagSel::Exact(1),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
                Action::Recv {
                    tag: TagSel::Exact(2),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
            ])),
        );
        sim.boot();
        let end = sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        assert!(sim.link_waits() >= 1, "second send should queue");
        assert!(sim.link_wait_ns() > 0);
        // The second send waits ~1 ms for the link; without contention the
        // run finishes in ~0.6 ms (latency + serialization only).
        assert!(
            end >= SimTime::from_micros(1200),
            "link never queued: {end}"
        );
        let hist = sim.link_wait_hist();
        assert_eq!(hist.iter().sum::<u64>(), sim.link_waits());
    }

    #[test]
    fn ingress_link_queues_simultaneous_senders() {
        // Two nodes fire 100 KB at node 2 at the same instant: the
        // messages arrive together, and the destination's 100 MB/s ingress
        // link forces the merge-ordered second one to wait ~1 ms.
        let spec = ClusterSpec {
            nodes: 3,
            cpus_per_node: 2,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::ZERO,
            trace_capacity: 1 << 14,
            fabric: FabricModel {
                link_bandwidth: Some(100e6),
                ..FabricModel::default()
            },
        };
        let mut sim = ClusterSim::build(&spec, &SeedSpace::new(1));
        for n in 0..2u32 {
            sim.kernel_mut(n).spawn(
                ThreadSpec::new("sender", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                Box::new(Script::new(vec![Action::Send(msg(
                    ep(n, 0),
                    ep(2, 0),
                    u64::from(n) + 1,
                    100_000,
                ))])),
            );
        }
        sim.kernel_mut(2).spawn(
            ThreadSpec::new("receiver", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Recv {
                    tag: TagSel::Exact(1),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
                Action::Recv {
                    tag: TagSel::Exact(2),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
            ])),
        );
        sim.boot();
        sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        assert!(sim.link_waits() >= 1, "ingress should serialize arrivals");
    }

    #[test]
    fn unlimited_link_mode_records_no_waits() {
        let mut sim = two_node_cluster();
        sim.kernel_mut(0).spawn(
            ThreadSpec::new("sender", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Send(msg(ep(0, 0), ep(1, 0), 1, 100_000)),
                Action::Send(msg(ep(0, 0), ep(1, 0), 2, 100_000)),
            ])),
        );
        sim.boot();
        sim.run_until_apps_done(SimTime::from_millis(50));
        assert_eq!(sim.link_waits(), 0);
        assert_eq!(sim.link_wait_ns(), 0);
        assert_eq!(sim.link_wait_hist(), [0; LINK_WAIT_BUCKETS]);
    }

    #[test]
    fn identical_history_with_link_contention() {
        // The contention registers must not perturb determinism: an
        // all-to-all burst over a tight 10 MB/s link replays identically
        // at 1/2/4 threads, waits included.
        let fingerprint = |threads: usize| {
            let spec = ClusterSpec {
                nodes: 4,
                cpus_per_node: 2,
                options: SchedOptions::vanilla(),
                skew_max: SimDur::from_millis(1),
                trace_capacity: 1 << 14,
                fabric: FabricModel {
                    link_bandwidth: Some(10e6),
                    ..FabricModel::default()
                },
            };
            let mut sim = ClusterSim::build(&spec, &SeedSpace::new(7));
            sim.set_sim_threads(threads);
            for n in 0..4u32 {
                let mut acts = Vec::new();
                for peer in 0..4u32 {
                    if peer != n {
                        acts.push(Action::Send(msg(
                            ep(n, 0),
                            ep(peer, 0),
                            u64::from(n * 4 + peer),
                            200_000,
                        )));
                    }
                }
                for peer in 0..4u32 {
                    if peer != n {
                        acts.push(Action::Recv {
                            tag: TagSel::Exact(u64::from(peer * 4 + n)),
                            src: SrcSel::Any,
                            wait: WaitMode::Poll,
                        });
                    }
                }
                sim.kernel_mut(n).spawn(
                    ThreadSpec::new("rank", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                    Box::new(Script::new(acts)),
                );
            }
            sim.boot();
            let end = sim.run_until_apps_done(SimTime::from_secs(5));
            (
                end,
                sim.events_processed(),
                sim.fifo_clamps(),
                sim.link_waits(),
                sim.link_wait_ns(),
                sim.link_wait_hist(),
                sim.queue_stats(),
            )
        };
        let serial = fingerprint(1);
        assert!(serial.3 > 0, "burst over a 10 MB/s link must queue");
        assert_eq!(serial, fingerprint(2));
        assert_eq!(serial, fingerprint(4));
    }

    #[test]
    fn run_until_advances_clock_to_horizon() {
        let mut sim = two_node_cluster();
        sim.boot();
        let horizon = SimTime::from_millis(50);
        let end = sim.run_until(horizon);
        assert_eq!(end, horizon);
        assert_eq!(sim.now(), horizon, "clock must land on the horizon");
    }

    #[test]
    fn identical_history_across_thread_counts() {
        // A 4-node ring of send/recv pairs; fingerprints of the run must
        // match exactly no matter how shards are spread over threads.
        let fingerprint = |threads: usize| {
            let spec = ClusterSpec {
                nodes: 4,
                cpus_per_node: 2,
                options: SchedOptions::vanilla(),
                skew_max: SimDur::from_millis(1),
                trace_capacity: 1 << 14,
                fabric: FabricModel::default(),
            };
            let mut sim = ClusterSim::build(&spec, &SeedSpace::new(7));
            sim.set_sim_threads(threads);
            for n in 0..4u32 {
                let next = (n + 1) % 4;
                sim.kernel_mut(n).spawn(
                    ThreadSpec::new("rank", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                    Box::new(Script::new(vec![
                        Action::Send(msg(ep(n, 0), ep(next, 0), u64::from(n), 4096)),
                        Action::Recv {
                            tag: TagSel::Exact(u64::from((n + 3) % 4)),
                            src: SrcSel::Any,
                            wait: WaitMode::Poll,
                        },
                        Action::Compute(SimDur::from_micros(200)),
                        Action::Send(msg(ep(n, 0), ep(next, 0), 10 + u64::from(n), 64)),
                        Action::Recv {
                            tag: TagSel::Exact(10 + u64::from((n + 3) % 4)),
                            src: SrcSel::Any,
                            wait: WaitMode::Poll,
                        },
                    ])),
                );
            }
            sim.boot();
            let end = sim.run_until_apps_done(SimTime::from_secs(1));
            (
                end,
                sim.events_processed(),
                sim.messages_routed(),
                sim.bytes_routed(),
                sim.fifo_clamps(),
                sim.queue_stats(),
            )
        };
        let serial = fingerprint(1);
        assert_eq!(serial, fingerprint(2));
        assert_eq!(serial, fingerprint(4));
        assert_eq!(serial, fingerprint(16)); // clamped to node count
    }

    #[test]
    fn skew_draws_distinct_offsets() {
        let spec = ClusterSpec {
            skew_max: SimDur::from_millis(10),
            ..ClusterSpec::sp_system(4)
        };
        let sim = ClusterSim::build(&spec, &SeedSpace::new(1));
        let offsets: Vec<SimDur> = (0..4).map(|n| sim.kernel(n).clock().offset()).collect();
        let distinct: std::collections::HashSet<u64> = offsets.iter().map(|o| o.nanos()).collect();
        assert!(distinct.len() >= 3, "offsets look degenerate: {offsets:?}");
    }

    #[test]
    fn sync_clocks_collapses_offsets() {
        let spec = ClusterSpec {
            skew_max: SimDur::from_millis(10),
            ..ClusterSpec::sp_system(4)
        };
        let seeds = SeedSpace::new(1);
        let mut sim = ClusterSim::build(&spec, &seeds);
        sim.sync_clocks(&seeds, SimDur::from_micros(20));
        for n in 0..4 {
            assert!(sim.kernel(n).clock().offset() < SimDur::from_micros(20));
        }
    }

    #[test]
    fn same_seed_same_history() {
        let run = || {
            let mut sim = two_node_cluster();
            sim.kernel_mut(0).spawn(
                ThreadSpec::new("a", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(5))])),
            );
            sim.boot();
            let t = sim.run_until_apps_done(SimTime::from_secs(1));
            (t, sim.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spec_presets() {
        let v = ClusterSpec::sp_system(59);
        assert_eq!(v.total_cpus(), 944);
        let p = ClusterSpec::sp_system_prototype(59);
        assert_eq!(p.options.big_tick, 25);
        assert_eq!(v.options.big_tick, 1);
    }
}
