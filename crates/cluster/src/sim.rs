//! The multi-node simulation driver.
//!
//! [`ClusterSim`] owns one *shard* per node — the node's [`Kernel`] plus a
//! private event calendar — and a switch [`FabricModel`] connecting them.
//! The engine is **conservatively parallel**: it advances all shards in
//! bounded time windows whose width is the cross-node wire latency
//! (the *lookahead*). Because every cross-node message takes at least
//! `net_latency` of fabric time, no event processed inside the current
//! window can affect another shard within that same window, so shards may
//! run the window concurrently without coordination. At each window
//! barrier, cross-shard messages are exchanged and merged in a
//! deterministic order — sorted by `(delivery time, source node, send
//! sequence)` — so the simulation history is **bit-identical at any
//! thread count**, including the serial path.
//!
//! The per-shard calendars together *are* the switch's globally
//! synchronized timebase; each node's kernel sees global time only through
//! its own `ClockModel` — exactly as real nodes see real time only through
//! their (possibly skewed) time-of-day clocks.
//!
//! Fabric channels are FIFO: delivery on each `(src node, dst node)`
//! channel is clamped to be non-decreasing in send order, mirroring the
//! in-order SP switch routes. Without the clamp a small message could
//! overtake a large one sent earlier on the same channel (serialization
//! makes the large one slower), which no real in-order fabric permits.

use crate::fabric::{FabricModel, LINK_WAIT_BUCKETS, LINK_WAIT_EDGES_NS};
use pa_kernel::{
    seg_slots_of, ClockModel, Effects, Kernel, KernelEvent, KernelSnapshot, Message, SchedOptions,
};
use pa_simkit::{sha256_hex, EventId, EventQueue, QueueStats, SeedSpace, SimDur, SimTime};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::any::Any;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// Static description of a cluster to build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of SMP nodes.
    pub nodes: u32,
    /// CPUs per node (the study's machines: 16-way Nighthawk/Power3).
    pub cpus_per_node: u8,
    /// Kernel options (identical on every node, like a site-wide kernel).
    pub options: SchedOptions,
    /// Maximum boot-time clock offset; each node draws uniformly from
    /// `[0, skew_max)`. Zero models pre-synchronized clocks.
    pub skew_max: SimDur,
    /// Trace-ring capacity per node.
    pub trace_capacity: usize,
    /// Fabric constants.
    pub fabric: FabricModel,
}

impl ClusterSpec {
    /// A cluster in the study's shape: `nodes` × 16-way, vanilla kernel,
    /// unsynchronized clocks (up to 10 ms skew).
    pub fn sp_system(nodes: u32) -> ClusterSpec {
        ClusterSpec {
            nodes,
            cpus_per_node: 16,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::from_millis(10),
            trace_capacity: 1 << 18,
            fabric: FabricModel::default(),
        }
    }

    /// Same, with the prototype kernel options.
    pub fn sp_system_prototype(nodes: u32) -> ClusterSpec {
        ClusterSpec {
            options: SchedOptions::prototype(),
            ..ClusterSpec::sp_system(nodes)
        }
    }

    /// Total CPU count.
    pub fn total_cpus(&self) -> u32 {
        self.nodes * u32::from(self.cpus_per_node)
    }
}

/// A cross-shard message staged during a window, delivered at the barrier.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct StagedMsg {
    deliver_at: SimTime,
    src_node: u32,
    seq: u64,
    dst_node: u32,
    msg: Message,
}

/// One node's slice of the cluster: its kernel, its private event
/// calendar, and the staging state for messages leaving the node. Shard
/// structure is *per node*, never per thread, so the event history is
/// independent of how shards are distributed over worker threads.
struct Shard {
    node: u32,
    nnodes: u32,
    kernel: Kernel,
    queue: EventQueue<KernelEvent>,
    fx: Effects,
    events_processed: u64,
    messages_routed: u64,
    bytes_routed: u64,
    fifo_clamps: u64,
    /// Monotone sequence for cross-shard sends; with the source node it
    /// forms the deterministic tie-break of the barrier merge.
    msg_seq: u64,
    /// Per-destination FIFO floor: the latest delivery time already
    /// promised on the `(this node → dst)` channel.
    last_delivery: HashMap<u32, SimTime>,
    /// Cross-shard messages staged during the current window.
    outbox: Vec<StagedMsg>,
    /// Outstanding `SegEnd` calendar entry per CPU ([`EventId::NONE`]
    /// when none), so kernel-voided segment timers are cancelled out of
    /// the calendar instead of accumulating as stale entries.
    seg_events: Vec<EventId>,
    /// Busy-until register of this node's egress link. Advanced at send,
    /// inside the owning shard, so it is deterministic in event order.
    egress_free_at: SimTime,
    /// Busy-until register of this node's ingress link. Advanced only at
    /// the window-merge barrier, in the canonical merge order.
    ingress_free_at: SimTime,
    /// Messages delayed by a busy link (egress or ingress).
    link_waits: u64,
    /// Total link queueing delay, nanoseconds.
    link_wait_ns: u64,
    /// Queueing-delay histogram; buckets bounded by `LINK_WAIT_EDGES_NS`
    /// plus one overflow bucket.
    link_wait_hist: [u64; LINK_WAIT_BUCKETS],
}

/// One shard's slice of a cluster checkpoint. Everything mutable lives
/// here; static structure (node config, fabric, trace registrations) is
/// rebuilt from the [`ClusterSpec`] on restore and validated against the
/// snapshot by [`Kernel::restore`].
#[derive(Debug, Serialize, Deserialize)]
struct ShardSnap {
    node: u32,
    queue_now: SimTime,
    queue_next_id: u64,
    queue_stats: QueueStats,
    queue_entries: Vec<(SimTime, u64, KernelEvent)>,
    kernel: KernelSnapshot,
    events_processed: u64,
    messages_routed: u64,
    bytes_routed: u64,
    fifo_clamps: u64,
    msg_seq: u64,
    /// FIFO floors as a node-sorted pair list (canonical encoding).
    last_delivery: Vec<(u32, SimTime)>,
    /// Always empty at a window barrier; serialized anyway so the format
    /// does not change if checkpoints ever move inside a window.
    outbox: Vec<StagedMsg>,
    egress_free_at: SimTime,
    ingress_free_at: SimTime,
    link_waits: u64,
    link_wait_ns: u64,
    /// `LINK_WAIT_BUCKETS` entries (length-checked on restore).
    link_wait_hist: Vec<u64>,
}

impl Shard {
    /// Process every local event strictly before `window_end` — or up to
    /// and including it when `inclusive` (the final window of a
    /// `SimTime`-saturating horizon, where the exclusive bound is not
    /// representable).
    fn process_window(&mut self, window_end: SimTime, inclusive: bool, fabric: &FabricModel) {
        while let Some(t) = self.queue.peek_time() {
            if t > window_end || (t == window_end && !inclusive) {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event vanished");
            if let KernelEvent::SegEnd { cpu, .. } = &ev {
                self.seg_events[cpu.0 as usize] = EventId::NONE;
            }
            self.events_processed += 1;
            self.kernel.handle(now, ev, &mut self.fx);
            self.drain_effects(now, fabric);
        }
    }

    /// Capture this shard's full mutable state.
    fn snapshot(&self) -> ShardSnap {
        let mut last_delivery: Vec<(u32, SimTime)> =
            self.last_delivery.iter().map(|(&n, &t)| (n, t)).collect();
        last_delivery.sort_by_key(|&(n, _)| n);
        ShardSnap {
            node: self.node,
            queue_now: self.queue.now(),
            queue_next_id: self.queue.next_id_raw(),
            queue_stats: self.queue.stats(),
            queue_entries: self
                .queue
                .live_entries()
                .into_iter()
                .map(|(t, id, ev)| (t, id, ev.clone()))
                .collect(),
            kernel: self.kernel.snapshot(),
            events_processed: self.events_processed,
            messages_routed: self.messages_routed,
            bytes_routed: self.bytes_routed,
            fifo_clamps: self.fifo_clamps,
            msg_seq: self.msg_seq,
            last_delivery,
            outbox: self.outbox.clone(),
            egress_free_at: self.egress_free_at,
            ingress_free_at: self.ingress_free_at,
            link_waits: self.link_waits,
            link_wait_ns: self.link_wait_ns,
            link_wait_hist: self.link_wait_hist.to_vec(),
        }
    }

    /// Overlay a checkpointed state onto this freshly assembled shard.
    fn restore(&mut self, snap: &ShardSnap) -> Result<(), String> {
        if snap.node != self.node {
            return Err(format!(
                "checkpoint shard {} restored into node {}",
                snap.node, self.node
            ));
        }
        if snap.link_wait_hist.len() != LINK_WAIT_BUCKETS {
            return Err(format!(
                "node {}: link-wait histogram has {} buckets, engine expects {}",
                self.node,
                snap.link_wait_hist.len(),
                LINK_WAIT_BUCKETS
            ));
        }
        self.kernel
            .restore(&snap.kernel)
            .map_err(|e| format!("node {}: {e}", self.node))?;
        self.queue = EventQueue::from_parts(
            snap.queue_now,
            snap.queue_next_id,
            snap.queue_stats,
            snap.queue_entries.clone(),
        )
        .map_err(|e| format!("node {}: {e}", self.node))?;
        // The per-CPU outstanding-SegEnd slots are derived state: with
        // true cancellation at most one SegEnd per CPU is live at any
        // barrier, so the restored calendar names them all.
        self.seg_events = seg_slots_of(&self.queue, self.kernel.ncpus() as usize);
        self.events_processed = snap.events_processed;
        self.messages_routed = snap.messages_routed;
        self.bytes_routed = snap.bytes_routed;
        self.fifo_clamps = snap.fifo_clamps;
        self.msg_seq = snap.msg_seq;
        self.last_delivery = snap.last_delivery.iter().copied().collect();
        self.outbox = snap.outbox.clone();
        self.egress_free_at = snap.egress_free_at;
        self.ingress_free_at = snap.ingress_free_at;
        self.link_waits = snap.link_waits;
        self.link_wait_ns = snap.link_wait_ns;
        for (slot, &v) in self
            .link_wait_hist
            .iter_mut()
            .zip(snap.link_wait_hist.iter())
        {
            *slot = v;
        }
        Ok(())
    }

    /// Cancel the outstanding `SegEnd` entry for the CPU in `slot`.
    fn cancel_seg_slot(queue: &mut EventQueue<KernelEvent>, slot: &mut EventId) {
        if *slot != EventId::NONE {
            queue.cancel(*slot);
            *slot = EventId::NONE;
        }
    }

    /// Move kernel effects into the calendar (local) or outbox (remote).
    fn drain_effects(&mut self, now: SimTime, fabric: &FabricModel) {
        // Interleave voided-segment cancels with schedules in program
        // order — a handler may cancel a CPU's timer and then arm a new
        // one for the same CPU, and the watermark says how many schedule
        // entries precede each cancel. Keeping the original schedule
        // order also keeps event-id assignment (and therefore FIFO
        // tie-breaks) identical to the uncancelled engine.
        let mut ci = 0;
        for (idx, (t, ev)) in self.fx.schedule.drain(..).enumerate() {
            while ci < self.fx.cancels.len() && (self.fx.cancels[ci].after as usize) <= idx {
                let slot = &mut self.seg_events[self.fx.cancels[ci].cpu.0 as usize];
                Self::cancel_seg_slot(&mut self.queue, slot);
                ci += 1;
            }
            let seg_cpu = match &ev {
                KernelEvent::SegEnd { cpu, .. } => Some(cpu.0 as usize),
                _ => None,
            };
            let id = self.queue.schedule(t, ev);
            if let Some(c) = seg_cpu {
                self.seg_events[c] = id;
            }
        }
        while ci < self.fx.cancels.len() {
            let slot = &mut self.seg_events[self.fx.cancels[ci].cpu.0 as usize];
            Self::cancel_seg_slot(&mut self.queue, slot);
            ci += 1;
        }
        self.fx.cancels.clear();
        for msg in self.fx.outbound.drain(..) {
            let dst = msg.dst.node;
            assert!(dst < self.nnodes, "message to nonexistent node {dst}");
            self.messages_routed += 1;
            self.bytes_routed += u64::from(msg.bytes);
            let mut deliver_at = now + fabric.delay(&msg);
            // Egress link: concurrent cross-node sends share the node's
            // finite uplink, so a send issued while the link is still
            // draining an earlier payload queues behind it. The wait is
            // non-negative, so `deliver_at >= now + net_latency` still
            // holds and the engine's lookahead is never shortened.
            if dst != self.node {
                if let Some(occ) = fabric.link_occupancy(msg.bytes) {
                    let start = if self.egress_free_at > now {
                        let wait = self.egress_free_at - now;
                        self.link_waits += 1;
                        self.link_wait_ns += wait.nanos();
                        self.link_wait_hist[link_wait_bucket(wait)] += 1;
                        deliver_at += wait;
                        self.egress_free_at
                    } else {
                        now
                    };
                    self.egress_free_at = start + occ;
                }
            }
            // FIFO clamp: fabric channels deliver in send order. A later
            // (smaller) message may not overtake an earlier (larger) one
            // still serializing on the same channel.
            let floor = self.last_delivery.entry(dst).or_insert(SimTime::ZERO);
            if deliver_at < *floor {
                deliver_at = *floor;
                self.fifo_clamps += 1;
            }
            *floor = deliver_at;
            if dst == self.node {
                self.queue
                    .schedule(deliver_at, KernelEvent::Deliver { msg });
            } else {
                self.outbox.push(StagedMsg {
                    deliver_at,
                    src_node: self.node,
                    seq: self.msg_seq,
                    dst_node: dst,
                    msg,
                });
                self.msg_seq += 1;
            }
        }
    }

    /// Apply ingress-link queueing to a staged cross-shard message and
    /// schedule it into this (destination) shard's calendar; returns the
    /// final delivery time. Must be called in the canonical
    /// `(deliver_at, src_node, seq)` merge order: the ingress busy-until
    /// register advances monotonically in that order, so the serial and
    /// parallel engines observe identical queueing.
    fn accept_staged(&mut self, m: StagedMsg, fabric: &FabricModel) -> SimTime {
        let mut deliver_at = m.deliver_at;
        if let Some(occ) = fabric.link_occupancy(m.msg.bytes) {
            if self.ingress_free_at > deliver_at {
                let wait = self.ingress_free_at - deliver_at;
                self.link_waits += 1;
                self.link_wait_ns += wait.nanos();
                self.link_wait_hist[link_wait_bucket(wait)] += 1;
                deliver_at = self.ingress_free_at;
            }
            self.ingress_free_at = deliver_at + occ;
        }
        self.queue
            .schedule(deliver_at, KernelEvent::Deliver { msg: m.msg });
        deliver_at
    }
}

/// Histogram bucket for a link queueing delay (last bucket is overflow).
fn link_wait_bucket(wait: SimDur) -> usize {
    LINK_WAIT_EDGES_NS
        .iter()
        .position(|&edge| wait.nanos() <= edge)
        .unwrap_or(LINK_WAIT_EDGES_NS.len())
}

/// What one worker thread learned about its shards during a window:
/// earliest next local event, live application threads, and the staged
/// cross-shard messages. The coordinator aggregates these instead of
/// re-scanning every shard.
struct WindowReport {
    min_next_ns: u64,
    apps: usize,
    staged: Vec<StagedMsg>,
}

impl Default for WindowReport {
    fn default() -> Self {
        WindowReport {
            min_next_ns: u64::MAX,
            apps: 0,
            staged: Vec::new(),
        }
    }
}

/// Bounds of the window opening at `t_start`: `(end, inclusive)`. The
/// window covers `[t_start, end)`, or `[t_start, end]` when `inclusive`.
///
/// `horizon` is an inclusive cap, so the exclusive end is
/// `min(t_start + lookahead, horizon + 1)` — computed in 128 bits because
/// at `horizon = SimTime::FAR_FUTURE` the `+ 1` is not representable in
/// nanoseconds. A saturating add here would silently shrink the final
/// window by one nanosecond: events at the last representable instant
/// would never be processed and the window loop would spin on them
/// forever. When the true bound exceeds `u64::MAX`, the window is instead
/// closed *inclusively* at `FAR_FUTURE`.
fn window_bounds(t_start: SimTime, horizon: SimTime, lookahead: SimDur) -> (SimTime, bool) {
    bounds_from_end(window_end_u128(t_start, horizon, lookahead))
}

/// Exclusive window end in 128-bit nanoseconds (see [`window_bounds`]).
fn window_end_u128(t_start: SimTime, horizon: SimTime, lookahead: SimDur) -> u128 {
    let end = u128::from(t_start.nanos()) + u128::from(lookahead.nanos());
    end.min(u128::from(horizon.nanos()) + 1)
}

/// Convert a 128-bit exclusive window end to `(end, inclusive)` bounds.
fn bounds_from_end(end: u128) -> (SimTime, bool) {
    if end > u128::from(u64::MAX) {
        (SimTime::FAR_FUTURE, true)
    } else {
        (SimTime::from_nanos(end as u64), false)
    }
}

/// Magic string identifying a cluster checkpoint file.
pub const CHECKPOINT_FORMAT: &str = "pa-cluster-checkpoint";

/// Checkpoint format version. Bump on any change to the snapshot schema;
/// restore rejects mismatches instead of guessing.
///
/// v2: per-thread wait-state accounting fields in `ThreadSnap`, the
/// rank program's compute counters, and the recorder's record-all flag.
///
/// v3: `QueueStats` gained the `tombstones`/`compactions` queue-health
/// fields (the indexed-heap event calendar overhaul).
///
/// v4: ready-queue entries carry dispatch keys and arrival sequences
/// instead of priorities, `SchedOptions` gained the `dispatcher` field,
/// and `KernelSnapshot` carries the dispatcher policy state (`disp`).
pub const CHECKPOINT_VERSION: u64 = 4;

/// Whole-cluster checkpoint state (everything the engine mutates).
#[derive(Debug, Serialize, Deserialize)]
struct ClusterSnap {
    now: SimTime,
    clock_resyncs: u64,
    /// Carried so a restored run's write counter continues where the
    /// interrupted run's left off (totals then match an uninterrupted
    /// run's bit-for-bit).
    checkpoints_written: u64,
    /// Next scheduled periodic checkpoint, nanoseconds (None = unarmed).
    /// Carried so a restored run keeps the uninterrupted run's schedule.
    checkpoint_next_ns: Option<u64>,
    shards: Vec<ShardSnap>,
}

/// Callback that captures engine-external state (e.g. a shared run
/// recorder) into a checkpoint's `extras` section.
pub type ExtrasProvider = Box<dyn Fn() -> Vec<(String, Value)> + Send + Sync>;

/// The running cluster.
pub struct ClusterSim {
    shards: Vec<Shard>,
    fabric: FabricModel,
    /// Window width: the minimum cross-node fabric delay.
    lookahead: SimDur,
    booted: bool,
    clock_resyncs: u64,
    sim_threads: usize,
    now: SimTime,
    /// Periodic-checkpoint interval (None = disabled).
    checkpoint_every: Option<SimDur>,
    /// File the periodic checkpointer overwrites.
    checkpoint_path: Option<PathBuf>,
    /// Next barrier time at/after which a periodic checkpoint is due.
    next_checkpoint_at: Option<SimTime>,
    checkpoints_written: u64,
    checkpoint_restores: u64,
    /// Size of the most recent checkpoint file written or restored.
    last_checkpoint_bytes: u64,
    extras_provider: Option<ExtrasProvider>,
    /// Pooled barrier-merge buffer (serial path): reused across windows
    /// so the per-barrier merge allocates nothing in steady state.
    staged_buf: Vec<StagedMsg>,
    /// Windows opened by the engine (serial or coordinator; identical at
    /// any thread count).
    windows_run: u64,
    /// Windows widened past the lookahead because the whole cluster was
    /// daemon-idle.
    widened_windows: u64,
}

/// Serialize a checkpoint to `path` atomically (write + rename), hashing
/// the payload so corruption and truncation are caught on restore.
/// Returns the file size in bytes.
fn write_checkpoint_file(
    path: &Path,
    snap: &ClusterSnap,
    extras: Vec<(String, Value)>,
) -> Result<u64, String> {
    let payload = Value::Map(vec![
        ("state".to_string(), snap.to_value()),
        ("extras".to_string(), Value::Map(extras)),
    ]);
    let payload_json =
        serde_json::to_string(&payload).map_err(|e| format!("encode checkpoint: {}", e.0))?;
    let file = Value::Map(vec![
        (
            "format".to_string(),
            Value::Str(CHECKPOINT_FORMAT.to_string()),
        ),
        ("version".to_string(), Value::UInt(CHECKPOINT_VERSION)),
        (
            "sha256".to_string(),
            Value::Str(sha256_hex(payload_json.as_bytes())),
        ),
        ("payload".to_string(), Value::Str(payload_json)),
    ]);
    let text = serde_json::to_string(&file).map_err(|e| format!("encode checkpoint: {}", e.0))?;
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        }
    }
    // Write-then-rename: a run killed mid-write leaves the previous
    // checkpoint intact instead of a truncated file.
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text.as_bytes()).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
    Ok(text.len() as u64)
}

/// What [`read_checkpoint_file`] yields: the snapshot, the extras pairs,
/// and the file size in bytes.
type CheckpointContents = (ClusterSnap, Vec<(String, Value)>, u64);

/// Check that `path` holds a well-formed checkpoint — parseable, right
/// format and version, hash intact — without applying it. Callers that
/// resume opportunistically (the campaign executor) use this to treat a
/// damaged checkpoint as absent rather than fatal.
pub fn verify_checkpoint_file(path: impl AsRef<Path>) -> Result<(), String> {
    read_checkpoint_file(path.as_ref()).map(|_| ())
}

/// Parse and verify a checkpoint file.
fn read_checkpoint_file(path: &Path) -> Result<CheckpointContents, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let file =
        serde_json::parse(&text).map_err(|e| format!("parse {}: {}", path.display(), e.0))?;
    let field = |name: &str| -> Result<&Value, String> {
        match &file {
            Value::Map(pairs) => pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("{}: missing field `{name}`", path.display())),
            _ => Err(format!("{}: not a checkpoint object", path.display())),
        }
    };
    match field("format")? {
        Value::Str(f) if f == CHECKPOINT_FORMAT => {}
        other => return Err(format!("{}: bad format tag {other:?}", path.display())),
    }
    match field("version")? {
        Value::UInt(v) if *v == CHECKPOINT_VERSION => {}
        other => {
            return Err(format!(
                "{}: unsupported checkpoint version {other:?} (expected {CHECKPOINT_VERSION})",
                path.display()
            ))
        }
    }
    let Value::Str(expect_hash) = field("sha256")? else {
        return Err(format!("{}: sha256 is not a string", path.display()));
    };
    let Value::Str(payload_json) = field("payload")? else {
        return Err(format!("{}: payload is not a string", path.display()));
    };
    let got = sha256_hex(payload_json.as_bytes());
    if &got != expect_hash {
        return Err(format!(
            "{}: checkpoint corrupt (sha256 {got} != recorded {expect_hash})",
            path.display()
        ));
    }
    let payload = serde_json::parse(payload_json)
        .map_err(|e| format!("parse checkpoint payload: {}", e.0))?;
    let Value::Map(pairs) = payload else {
        return Err("checkpoint payload is not an object".to_string());
    };
    let mut state = None;
    let mut extras = Vec::new();
    for (k, v) in pairs {
        match k.as_str() {
            "state" => state = Some(v),
            "extras" => {
                if let Value::Map(e) = v {
                    extras = e;
                }
            }
            _ => {}
        }
    }
    let state = state.ok_or("checkpoint payload has no state")?;
    let snap =
        ClusterSnap::from_value(&state).map_err(|e| format!("decode checkpoint: {}", e.0))?;
    Ok((snap, extras, text.len() as u64))
}

impl ClusterSim {
    /// Build the cluster: one kernel per node with per-node RNG streams
    /// and boot-time clock offsets drawn from `seeds`.
    pub fn build(spec: &ClusterSpec, seeds: &SeedSpace) -> ClusterSim {
        spec.fabric.validate().expect("invalid fabric model");
        assert!(spec.nodes > 0, "cluster needs at least one node");
        let shards = (0..spec.nodes)
            .map(|n| {
                let mut clock_rng = seeds.stream_at("cluster/clock", u64::from(n), 0);
                let offset = if spec.skew_max.is_zero() {
                    SimDur::ZERO
                } else {
                    SimDur::from_nanos(clock_rng.range(0, spec.skew_max.nanos()))
                };
                Shard {
                    node: n,
                    nnodes: spec.nodes,
                    kernel: Kernel::new(
                        n,
                        spec.cpus_per_node,
                        spec.options,
                        ClockModel::with_offset(offset),
                        seeds.stream_at("cluster/kernel", u64::from(n), 0),
                        spec.trace_capacity,
                    ),
                    queue: EventQueue::new(),
                    fx: Effects::new(),
                    events_processed: 0,
                    messages_routed: 0,
                    bytes_routed: 0,
                    fifo_clamps: 0,
                    msg_seq: 0,
                    last_delivery: HashMap::new(),
                    outbox: Vec::new(),
                    seg_events: vec![EventId::NONE; spec.cpus_per_node as usize],
                    egress_free_at: SimTime::ZERO,
                    ingress_free_at: SimTime::ZERO,
                    link_waits: 0,
                    link_wait_ns: 0,
                    link_wait_hist: [0; LINK_WAIT_BUCKETS],
                }
            })
            .collect();
        ClusterSim {
            shards,
            fabric: spec.fabric,
            lookahead: spec.fabric.net_latency,
            booted: false,
            clock_resyncs: 0,
            sim_threads: 1,
            now: SimTime::ZERO,
            checkpoint_every: None,
            checkpoint_path: None,
            next_checkpoint_at: None,
            checkpoints_written: 0,
            checkpoint_restores: 0,
            last_checkpoint_bytes: 0,
            extras_provider: None,
            staged_buf: Vec::new(),
            windows_run: 0,
            widened_windows: 0,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Worker threads used to advance shards (1 = serial). The event
    /// history is identical at any setting; this only trades wall-clock
    /// time. Clamped to the node count at run time.
    pub fn set_sim_threads(&mut self, threads: usize) {
        self.sim_threads = threads.max(1);
    }

    /// Configured worker thread count.
    pub fn sim_threads(&self) -> usize {
        self.sim_threads
    }

    /// Access a node's kernel (setup: spawning threads, enabling traces).
    pub fn kernel_mut(&mut self, node: u32) -> &mut Kernel {
        &mut self.shards[node as usize].kernel
    }

    /// Access a node's kernel read-only (post-run analysis).
    pub fn kernel(&self, node: u32) -> &Kernel {
        &self.shards[node as usize].kernel
    }

    /// Current global time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Spawn a thread on `node` at the current barrier time — a mid-run
    /// arrival (the batch layer's job launch). Callable only between run
    /// calls, when every shard is quiescent at a window barrier, so the
    /// spawn lands at the same instant regardless of `--sim-threads`.
    /// The kernel schedules a dispatcher nudge so the thread starts
    /// without waiting for the next tick.
    pub fn spawn_thread(
        &mut self,
        node: u32,
        spec: pa_kernel::ThreadSpec,
        program: Box<dyn pa_kernel::Program>,
    ) -> pa_kernel::Tid {
        assert!(self.booted, "spawn_thread on an unbooted cluster");
        let sh = &mut self.shards[node as usize];
        // The shard clock may sit ahead of the global barrier time when a
        // prior `run_until` advanced it; never spawn into the past.
        let at = self.now.max(sh.queue.now());
        let tid = sh.kernel.spawn_at(at, spec, program, &mut sh.fx);
        sh.drain_effects(at, &self.fabric);
        tid
    }

    /// Inject a message at the current barrier time, as if sent by an
    /// external agent (the batch layer's control traffic to per-node
    /// daemons). Delivery is immediate — control decisions are taken at
    /// quiescent barriers, so no fabric transit is modeled. Callable only
    /// between run calls; injection order is the caller's iteration
    /// order, which must itself be canonical.
    pub fn inject_message(&mut self, msg: Message) {
        assert!(self.booted, "inject_message on an unbooted cluster");
        let sh = &mut self.shards[msg.dst.node as usize];
        let at = self.now.max(sh.queue.now());
        sh.queue.schedule(at, KernelEvent::Deliver { msg });
    }

    /// Total events processed across all shards.
    pub fn events_processed(&self) -> u64 {
        self.shards.iter().map(|s| s.events_processed).sum()
    }

    /// Messages routed over the fabric.
    pub fn messages_routed(&self) -> u64 {
        self.shards.iter().map(|s| s.messages_routed).sum()
    }

    /// Payload bytes routed over the fabric.
    pub fn bytes_routed(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes_routed).sum()
    }

    /// Deliveries delayed by the per-channel FIFO clamp (a later message
    /// would otherwise have overtaken an earlier one on the same channel).
    pub fn fifo_clamps(&self) -> u64 {
        self.shards.iter().map(|s| s.fifo_clamps).sum()
    }

    /// Messages delayed behind a busy ingress or egress link. Always zero
    /// in the unlimited (default) link mode.
    pub fn link_waits(&self) -> u64 {
        self.shards.iter().map(|s| s.link_waits).sum()
    }

    /// Total link queueing delay across all messages, nanoseconds.
    pub fn link_wait_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.link_wait_ns).sum()
    }

    /// One node's link contention: `(delayed messages, total queueing
    /// delay ns)` charged at that node's shard — its egress waits plus
    /// the ingress waits of messages arriving there. The per-node blame
    /// ranking reads this.
    pub fn link_wait_of(&self, node: u32) -> (u64, u64) {
        let sh = &self.shards[node as usize];
        (sh.link_waits, sh.link_wait_ns)
    }

    /// Link queueing-delay histogram, merged across shards; buckets are
    /// bounded by [`LINK_WAIT_EDGES_NS`] plus one overflow bucket.
    pub fn link_wait_hist(&self) -> [u64; LINK_WAIT_BUCKETS] {
        let mut total = [0u64; LINK_WAIT_BUCKETS];
        for sh in &self.shards {
            for (t, &c) in total.iter_mut().zip(sh.link_wait_hist.iter()) {
                *t += c;
            }
        }
        total
    }

    /// Node clocks re-synchronized via [`ClusterSim::sync_clocks`].
    pub fn clock_resyncs(&self) -> u64 {
        self.clock_resyncs
    }

    /// Engine self-profile, merged across all shard calendars.
    pub fn queue_stats(&self) -> QueueStats {
        let mut total = QueueStats::default();
        for sh in &self.shards {
            total.absorb(sh.queue.stats());
        }
        total
    }

    /// Synchronize every node's clock to the switch clock, leaving at most
    /// `residual_max` of error per node (the co-scheduler's startup
    /// procedure, §4). Must be called before [`ClusterSim::boot`] so tick
    /// boundaries are planned on the synced clocks.
    pub fn sync_clocks(&mut self, seeds: &SeedSpace, residual_max: SimDur) {
        for (n, sh) in self.shards.iter_mut().enumerate() {
            let mut rng = seeds.stream_at("cluster/clocksync", n as u64, 0);
            let residual = if residual_max.is_zero() {
                SimDur::ZERO
            } else {
                SimDur::from_nanos(rng.range(0, residual_max.nanos()))
            };
            sh.kernel.clock_mut().sync_to_switch(residual);
            self.clock_resyncs += 1;
        }
    }

    /// Arm periodic checkpointing: at the first window barrier at or past
    /// each multiple of `every`, the engine overwrites `path` with a full
    /// snapshot. Checkpoints are taken only at barriers, so the restored
    /// run replays the identical window sequence — and therefore the
    /// identical event history — at any `sim_threads` setting.
    ///
    /// If a schedule was already restored from a checkpoint, that
    /// schedule is kept (both call orders around [`ClusterSim::restore`]
    /// behave identically).
    pub fn set_checkpoint_every(&mut self, every: SimDur, path: impl Into<PathBuf>) {
        assert!(!every.is_zero(), "checkpoint interval must be positive");
        self.checkpoint_every = Some(every);
        self.checkpoint_path = Some(path.into());
        if self.next_checkpoint_at.is_none() {
            self.next_checkpoint_at = Some(SimTime::from_nanos(every.nanos()));
        }
    }

    /// Install a callback that contributes engine-external state (e.g. the
    /// MPI run recorder) to every checkpoint's `extras` section; restore
    /// hands the section back via [`ClusterSim::restore_with_extras`].
    pub fn set_checkpoint_extras(&mut self, provider: ExtrasProvider) {
        self.extras_provider = Some(provider);
    }

    /// Checkpoints written (manual and periodic) — carried across restore
    /// so totals match an uninterrupted run's.
    pub fn checkpoints_written(&self) -> u64 {
        self.checkpoints_written
    }

    /// Successful [`ClusterSim::restore`] calls on this instance.
    pub fn checkpoint_restores(&self) -> u64 {
        self.checkpoint_restores
    }

    /// Size in bytes of the most recent checkpoint file written or
    /// restored (0 if neither has happened).
    pub fn last_checkpoint_bytes(&self) -> u64 {
        self.last_checkpoint_bytes
    }

    /// Write a checkpoint to `path` now. Valid at any point where the
    /// engine is quiescent (before or after a `run_*` call — which is
    /// always a window barrier). Returns the file size in bytes.
    pub fn checkpoint(&mut self, path: impl AsRef<Path>) -> Result<u64, String> {
        if !self.booted {
            return Err("checkpoint requires a booted cluster".to_string());
        }
        // Increment before capture: the snapshot's counter then includes
        // this write, so a restored run's total matches an uninterrupted
        // run's.
        self.checkpoints_written += 1;
        let snap = self.capture();
        let extras = self
            .extras_provider
            .as_ref()
            .map(|f| f())
            .unwrap_or_default();
        let bytes = write_checkpoint_file(path.as_ref(), &snap, extras)?;
        self.last_checkpoint_bytes = bytes;
        Ok(bytes)
    }

    /// Overlay state from a checkpoint file onto this cluster. The cluster
    /// must have been rebuilt from the *same* spec (same node/CPU/thread
    /// layout, same programs in the same spawn order) and booted; restore
    /// then rewinds every mutable piece of engine state to the barrier the
    /// checkpoint captured. Returns nothing; see
    /// [`ClusterSim::restore_with_extras`] for the extras section.
    pub fn restore(&mut self, path: impl AsRef<Path>) -> Result<(), String> {
        self.restore_with_extras(path).map(|_| ())
    }

    /// [`ClusterSim::restore`], additionally returning the checkpoint's
    /// `extras` section for the caller to apply (e.g. run-recorder state).
    pub fn restore_with_extras(
        &mut self,
        path: impl AsRef<Path>,
    ) -> Result<Vec<(String, Value)>, String> {
        if !self.booted {
            return Err(
                "restore requires a booted cluster (rebuild the experiment, boot, then restore)"
                    .to_string(),
            );
        }
        let (snap, extras, bytes) = read_checkpoint_file(path.as_ref())?;
        if snap.shards.len() != self.shards.len() {
            return Err(format!(
                "checkpoint has {} nodes, cluster has {}",
                snap.shards.len(),
                self.shards.len()
            ));
        }
        for (sh, ss) in self.shards.iter_mut().zip(snap.shards.iter()) {
            sh.restore(ss)?;
        }
        self.now = snap.now;
        self.clock_resyncs = snap.clock_resyncs;
        self.checkpoints_written = snap.checkpoints_written;
        self.next_checkpoint_at = snap.checkpoint_next_ns.map(SimTime::from_nanos);
        self.checkpoint_restores += 1;
        self.last_checkpoint_bytes = bytes;
        Ok(extras)
    }

    /// Whole-cluster snapshot (serial path — shards owned by `self`).
    fn capture(&self) -> ClusterSnap {
        ClusterSnap {
            now: self.now,
            clock_resyncs: self.clock_resyncs,
            checkpoints_written: self.checkpoints_written,
            checkpoint_next_ns: self.next_checkpoint_at.map(|t| t.nanos()),
            shards: self.shards.iter().map(Shard::snapshot).collect(),
        }
    }

    /// Is a periodic checkpoint due at the barrier ending at `we`?
    fn checkpoint_due(&self, we: SimTime) -> bool {
        matches!(self.next_checkpoint_at, Some(at) if we >= at)
    }

    /// Advance the periodic schedule strictly past `we`. Done *before*
    /// capturing the snapshot so the restored run continues the schedule
    /// exactly where the interrupted run would have (no repeated write at
    /// the restore barrier).
    fn advance_schedule(next: &mut Option<SimTime>, every: SimDur, we: SimTime) {
        let Some(at) = *next else { return };
        let step = u128::from(every.nanos()).max(1);
        let mut at = u128::from(at.nanos());
        let we = u128::from(we.nanos());
        while at <= we {
            at += step;
        }
        *next = if at > u128::from(u64::MAX) {
            None
        } else {
            Some(SimTime::from_nanos(at as u64))
        };
    }

    /// Periodic-checkpoint hook for the serial engine, called at each
    /// window barrier (after the merge, matching the parallel path).
    fn maybe_autocheckpoint(&mut self, we: SimTime) -> Result<(), String> {
        if !self.checkpoint_due(we) {
            return Ok(());
        }
        let path = self
            .checkpoint_path
            .clone()
            .ok_or("checkpoint interval armed without a path")?;
        let every = self
            .checkpoint_every
            .ok_or("checkpoint due without an interval")?;
        Self::advance_schedule(&mut self.next_checkpoint_at, every, we);
        self.checkpoints_written += 1;
        let snap = self.capture();
        let extras = self
            .extras_provider
            .as_ref()
            .map(|f| f())
            .unwrap_or_default();
        let bytes = write_checkpoint_file(&path, &snap, extras)?;
        self.last_checkpoint_bytes = bytes;
        Ok(())
    }

    /// Boot every node at the current time.
    pub fn boot(&mut self) {
        assert!(!self.booted, "boot called twice");
        self.booted = true;
        let now = self.now;
        for sh in &mut self.shards {
            sh.kernel.boot(now, &mut sh.fx);
            sh.drain_effects(now, &self.fabric);
        }
        Self::merge_outboxes(&mut self.shards, &self.fabric, &mut self.staged_buf);
    }

    /// Live application threads across the cluster.
    pub fn apps_alive(&self) -> usize {
        self.shards.iter().map(|s| s.kernel.app_alive()).sum()
    }

    /// Run until every application thread has exited or `horizon` passes.
    /// Returns the stop time: the latest event processed. Termination is
    /// checked at window barriers, so trailing events inside the final
    /// lookahead window are processed on every shard before stopping —
    /// identically at any thread count.
    pub fn run_until_apps_done(&mut self, horizon: SimTime) -> SimTime {
        self.run_windows(horizon, true);
        let end = self
            .shards
            .iter()
            .map(|s| s.queue.now())
            .max()
            .unwrap_or(self.now)
            .max(self.now);
        self.now = end;
        end
    }

    /// Run until `horizon` regardless of application state. Afterwards the
    /// global clock reads exactly `horizon` (every event at or before it
    /// has been processed), and that time is returned.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        self.run_windows(horizon, false);
        for sh in &mut self.shards {
            let target = horizon.max(sh.queue.now());
            sh.queue.advance_to(target);
        }
        self.now = self.now.max(horizon);
        self.now
    }

    /// Deliver staged cross-shard messages in the canonical merge order,
    /// applying ingress-link queueing per destination as they land.
    /// `staged` is a pooled scratch buffer — cleared here, drained before
    /// returning — so the per-barrier merge allocates nothing in steady
    /// state.
    fn merge_outboxes(shards: &mut [Shard], fabric: &FabricModel, staged: &mut Vec<StagedMsg>) {
        staged.clear();
        for sh in shards.iter_mut() {
            staged.append(&mut sh.outbox);
        }
        if staged.is_empty() {
            return;
        }
        staged.sort_by_key(|m| (m.deliver_at, m.src_node, m.seq));
        for m in staged.drain(..) {
            let dst = m.dst_node as usize;
            shards[dst].accept_staged(m, fabric);
        }
    }

    /// Earliest pending event across all shards.
    fn next_event_time(&self) -> Option<SimTime> {
        self.shards.iter().filter_map(|s| s.queue.peek_time()).min()
    }

    /// Windows opened so far (a function of simulation state alone, so
    /// identical at any `sim_threads`).
    pub fn windows_run(&self) -> u64 {
        self.windows_run
    }

    /// Windows widened past the lookahead because every application
    /// thread had exited (daemon-idle fast-forward).
    pub fn widened_windows(&self) -> u64 {
        self.widened_windows
    }

    /// Bounds of the window opening at `t_start`, widened when the whole
    /// cluster is daemon-idle. Returns `(end, inclusive, widened)`.
    ///
    /// Widening is sound because only application threads send cross-node
    /// messages: with `apps == 0` everywhere, no event processed anywhere
    /// can stage a cross-shard delivery, so the conservative-lookahead
    /// bound is vacuous and the window may run to the horizon. New
    /// application threads enter only via `spawn_thread`, between run
    /// calls, never inside one. The widened window is capped at the next
    /// periodic-checkpoint barrier so the checkpoint cadence survives
    /// daemon-idle stretches, and the merge path asserts that a widened
    /// window staged nothing (`daemon-idle window staged a cross-shard
    /// message` means the invariant — daemons never send cross-node — was
    /// broken by a new workload).
    fn plan_window(
        &mut self,
        t_start: SimTime,
        horizon: SimTime,
        daemon_idle: bool,
    ) -> (SimTime, bool, bool) {
        self.windows_run += 1;
        let normal = window_end_u128(t_start, horizon, self.lookahead);
        if daemon_idle {
            let mut wide = u128::from(horizon.nanos()) + 1;
            if let Some(at) = self.next_checkpoint_at {
                wide = wide.min(u128::from(at.nanos()).max(u128::from(t_start.nanos()) + 1));
            }
            if wide > normal {
                self.widened_windows += 1;
                let (we, inclusive) = bounds_from_end(wide);
                return (we, inclusive, true);
            }
        }
        let (we, inclusive) = window_bounds(t_start, horizon, self.lookahead);
        (we, inclusive, false)
    }

    fn run_windows(&mut self, horizon: SimTime, until_apps_done: bool) {
        assert!(self.booted, "boot the cluster first");
        let nthreads = self.sim_threads.min(self.shards.len()).max(1);
        if nthreads <= 1 {
            self.run_windows_serial(horizon, until_apps_done);
        } else {
            self.run_windows_parallel(horizon, until_apps_done, nthreads);
        }
    }

    /// The serial engine: the reference window sequence.
    fn run_windows_serial(&mut self, horizon: SimTime, until_apps_done: bool) {
        loop {
            let apps = self.apps_alive();
            if until_apps_done && apps == 0 {
                break;
            }
            let Some(t_start) = self.next_event_time() else {
                break;
            };
            if t_start > horizon {
                break;
            }
            let (we, inclusive, widened) = self.plan_window(t_start, horizon, apps == 0);
            for sh in &mut self.shards {
                sh.process_window(we, inclusive, &self.fabric);
            }
            if widened {
                assert!(
                    self.shards.iter().all(|sh| sh.outbox.is_empty()),
                    "daemon-idle window staged a cross-shard message"
                );
            }
            Self::merge_outboxes(&mut self.shards, &self.fabric, &mut self.staged_buf);
            if let Err(e) = self.maybe_autocheckpoint(we) {
                panic!("periodic checkpoint failed: {e}");
            }
        }
    }

    /// The parallel engine: persistent workers advance disjoint shard
    /// stripes window by window; a coordinator derives the *same* window
    /// sequence the serial path would and performs the deterministic
    /// barrier merge. Stop conditions, window bounds, per-shard event
    /// order, and merge order are all functions of simulation state alone,
    /// so the history is identical to the serial engine's.
    fn run_windows_parallel(&mut self, horizon: SimTime, until_apps_done: bool, nthreads: usize) {
        let fabric = self.fabric;
        let shards: Vec<Mutex<Shard>> = std::mem::take(&mut self.shards)
            .into_iter()
            .map(Mutex::new)
            .collect();
        let barrier = Barrier::new(nthreads + 1);
        let window_end_ns = AtomicU64::new(0);
        let window_inclusive = AtomicBool::new(false);
        let done = AtomicBool::new(false);
        // Worker-panic hardening: the first panic is parked here (with the
        // node it struck) and re-raised once the engine has shut down
        // cleanly, instead of poisoning shard mutexes and surfacing as an
        // unrelated `PoisonError` on the next lock.
        let abort = AtomicBool::new(false);
        let panicked: Mutex<Option<(u32, Box<dyn Any + Send>)>> = Mutex::new(None);
        // A panic inside `process_window` unwinds across a held shard
        // guard and poisons that mutex. The payload is re-raised below, so
        // the poison flag carries no information — strip it everywhere.
        fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
            m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
        }
        let slots: Vec<Mutex<WindowReport>> = (0..nthreads)
            .map(|_| Mutex::new(WindowReport::default()))
            .collect();
        let mut ckpt_err: Option<String> = None;
        std::thread::scope(|scope| {
            for t in 0..nthreads {
                let shards = &shards;
                let barrier = &barrier;
                let window_end_ns = &window_end_ns;
                let window_inclusive = &window_inclusive;
                let done = &done;
                let abort = &abort;
                let panicked = &panicked;
                let slots = &slots;
                let fabric = &fabric;
                scope.spawn(move || loop {
                    barrier.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    let we = SimTime::from_nanos(window_end_ns.load(Ordering::Acquire));
                    let inclusive = window_inclusive.load(Ordering::Acquire);
                    // Reclaim the slot's report (the coordinator drained
                    // its staged list but left the capacity), so steady
                    // state reallocates nothing per window.
                    let mut report = std::mem::take(&mut *lock(&slots[t]));
                    report.min_next_ns = u64::MAX;
                    report.apps = 0;
                    report.staged.clear();
                    let mut i = t;
                    while i < shards.len() && !abort.load(Ordering::Acquire) {
                        let mut sh = lock(&shards[i]);
                        let node = sh.node;
                        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                            sh.process_window(we, inclusive, fabric);
                        }));
                        let ok = match outcome {
                            Ok(()) => {
                                if let Some(next) = sh.queue.peek_time() {
                                    report.min_next_ns = report.min_next_ns.min(next.nanos());
                                }
                                report.apps += sh.kernel.app_alive();
                                report.staged.append(&mut sh.outbox);
                                true
                            }
                            Err(payload) => {
                                // First panic wins; tell everyone to stop
                                // at the next safe point. This worker still
                                // files its report and reaches the barrier
                                // so nobody deadlocks.
                                abort.store(true, Ordering::Release);
                                let mut first = lock(panicked);
                                if first.is_none() {
                                    *first = Some((node, payload));
                                }
                                false
                            }
                        };
                        drop(sh);
                        if !ok {
                            break;
                        }
                        i += nthreads;
                    }
                    *lock(&slots[t]) = report;
                    barrier.wait();
                });
            }
            // Coordinator. Initial scan mirrors the serial loop's first
            // apps/next-event check; afterwards both are maintained from
            // the worker reports plus the merged deliveries.
            let mut next_ns = u64::MAX;
            let mut apps = 0usize;
            for m in shards.iter() {
                let sh = lock(m);
                if let Some(t0) = sh.queue.peek_time() {
                    next_ns = next_ns.min(t0.nanos());
                }
                apps += sh.kernel.app_alive();
            }
            // Pooled merge buffer: refilled from the report slots and
            // drained into destination shards every barrier.
            let mut staged: Vec<StagedMsg> = Vec::new();
            loop {
                if until_apps_done && apps == 0 {
                    break;
                }
                if next_ns == u64::MAX || next_ns > horizon.nanos() {
                    break;
                }
                let (we, inclusive, widened) =
                    self.plan_window(SimTime::from_nanos(next_ns), horizon, apps == 0);
                window_end_ns.store(we.nanos(), Ordering::Release);
                window_inclusive.store(inclusive, Ordering::Release);
                barrier.wait(); // open the window
                barrier.wait(); // all shards processed it
                if abort.load(Ordering::Acquire) {
                    // A worker panicked mid-window: the window is
                    // incomplete, so merging would corrupt state. Shut
                    // down and re-raise below.
                    break;
                }
                staged.clear();
                next_ns = u64::MAX;
                apps = 0;
                for slot in slots.iter() {
                    let mut s = lock(slot);
                    next_ns = next_ns.min(s.min_next_ns);
                    apps += s.apps;
                    staged.append(&mut s.staged);
                }
                assert!(
                    !widened || staged.is_empty(),
                    "daemon-idle window staged a cross-shard message"
                );
                staged.sort_by_key(|m| (m.deliver_at, m.src_node, m.seq));
                for m in staged.drain(..) {
                    let dst = m.dst_node as usize;
                    // Ingress queueing may move the delivery later; track
                    // the *final* time so the next window opens exactly
                    // where the serial engine's queue scan would put it.
                    let final_at = lock(&shards[dst]).accept_staged(m, &fabric);
                    next_ns = next_ns.min(final_at.nanos());
                }
                // Periodic checkpoint, at the same post-merge barrier as
                // the serial engine. Workers are parked at the top-of-loop
                // barrier here, so the coordinator has exclusive access to
                // every shard. A write failure must NOT panic inside the
                // scope (workers would wait forever) — record it, shut
                // down, and re-raise after the scope exits.
                if self.checkpoint_due(we) {
                    let every = self
                        .checkpoint_every
                        .expect("checkpoint due without an interval");
                    let Some(path) = self.checkpoint_path.clone() else {
                        ckpt_err = Some("checkpoint interval armed without a path".to_string());
                        break;
                    };
                    Self::advance_schedule(&mut self.next_checkpoint_at, every, we);
                    self.checkpoints_written += 1;
                    let snap = ClusterSnap {
                        now: self.now,
                        clock_resyncs: self.clock_resyncs,
                        checkpoints_written: self.checkpoints_written,
                        checkpoint_next_ns: self.next_checkpoint_at.map(|t| t.nanos()),
                        shards: shards.iter().map(|m| lock(m).snapshot()).collect(),
                    };
                    let extras = self
                        .extras_provider
                        .as_ref()
                        .map(|f| f())
                        .unwrap_or_default();
                    match write_checkpoint_file(&path, &snap, extras) {
                        Ok(bytes) => self.last_checkpoint_bytes = bytes,
                        Err(e) => {
                            ckpt_err = Some(e);
                            break;
                        }
                    }
                }
            }
            done.store(true, Ordering::Release);
            barrier.wait();
        });
        self.shards = shards
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
            })
            .collect();
        if let Some((node, payload)) = panicked
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned());
            match msg {
                Some(m) => panic!("shard worker panicked while advancing node {node}: {m}"),
                None => std::panic::resume_unwind(payload),
            }
        }
        if let Some(e) = ckpt_err {
            panic!("periodic checkpoint failed: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::{
        Action, CpuId, Endpoint, Message, Prio, Script, SrcSel, TagSel, ThreadSpec, ThreadState,
        Tid, WaitMode,
    };
    use pa_trace::{HookMask, ThreadClass};

    fn two_node_cluster() -> ClusterSim {
        let spec = ClusterSpec {
            nodes: 2,
            cpus_per_node: 2,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::ZERO,
            trace_capacity: 1 << 14,
            fabric: FabricModel::default(),
        };
        ClusterSim::build(&spec, &SeedSpace::new(1))
    }

    fn ep(node: u32, tid: u32) -> Endpoint {
        Endpoint {
            node,
            tid: Tid(tid),
        }
    }

    fn msg(src: Endpoint, dst: Endpoint, tag: u64, bytes: u32) -> Message {
        Message {
            src,
            dst,
            tag,
            bytes,
            sent_at: SimTime::ZERO,
            payload: 0,
        }
    }

    #[test]
    fn cross_node_ping_pong() {
        let mut sim = two_node_cluster();
        // Node 0 rank sends to node 1 rank, which replies; both then exit.
        sim.kernel_mut(0).trace_mut().set_mask(HookMask::ALL);
        sim.kernel_mut(0).spawn(
            ThreadSpec::new("rank0", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Send(msg(ep(0, 0), ep(1, 0), 1, 8)),
                Action::Recv {
                    tag: TagSel::Exact(2),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
            ])),
        );
        sim.kernel_mut(1).spawn(
            ThreadSpec::new("rank1", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Recv {
                    tag: TagSel::Exact(1),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
                Action::Send(msg(ep(1, 0), ep(0, 0), 2, 8)),
            ])),
        );
        sim.boot();
        let end = sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        // Two network hops plus overheads: tens of microseconds.
        assert!(end >= SimTime::from_micros(26), "too fast: {end}");
        assert!(end < SimTime::from_millis(1), "too slow: {end}");
        assert_eq!(sim.kernel(0).thread_state(Tid(0)), ThreadState::Exited);
        assert_eq!(sim.now(), end);
    }

    #[test]
    fn fifo_clamp_prevents_overtaking() {
        // A 1 MB message followed by an 8-byte message on the same
        // channel: serialization makes the large one ~2.9 ms slower, so
        // without the clamp the small one would overtake it. The receiver
        // waits only for the *small* message; in-order delivery forces its
        // completion past the large message's serialization time.
        let mut sim = two_node_cluster();
        sim.kernel_mut(0).spawn(
            ThreadSpec::new("sender", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Send(msg(ep(0, 0), ep(1, 0), 1, 1_000_000)),
                Action::Send(msg(ep(0, 0), ep(1, 0), 2, 8)),
            ])),
        );
        sim.kernel_mut(1).spawn(
            ThreadSpec::new("receiver", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![Action::Recv {
                tag: TagSel::Exact(2),
                src: SrcSel::Any,
                wait: WaitMode::Poll,
            }])),
        );
        sim.boot();
        let end = sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        assert_eq!(sim.fifo_clamps(), 1, "small message should be clamped");
        // 1 MB at 350 MB/s is ~2.86 ms of serialization.
        assert!(
            end >= SimTime::from_millis(2),
            "overtook the large message: {end}"
        );
    }

    fn two_node_cluster_with_link(link_bandwidth: f64) -> ClusterSim {
        let spec = ClusterSpec {
            nodes: 2,
            cpus_per_node: 2,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::ZERO,
            trace_capacity: 1 << 14,
            fabric: FabricModel {
                link_bandwidth: Some(link_bandwidth),
                ..FabricModel::default()
            },
        };
        ClusterSim::build(&spec, &SeedSpace::new(1))
    }

    #[test]
    fn egress_link_queues_concurrent_sends() {
        // Two 100 KB messages sent back-to-back over a 100 MB/s link:
        // each occupies the egress link for 1 ms, so the second must queue
        // behind the first instead of overlapping for free.
        let mut sim = two_node_cluster_with_link(100e6);
        sim.kernel_mut(0).spawn(
            ThreadSpec::new("sender", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Send(msg(ep(0, 0), ep(1, 0), 1, 100_000)),
                Action::Send(msg(ep(0, 0), ep(1, 0), 2, 100_000)),
            ])),
        );
        sim.kernel_mut(1).spawn(
            ThreadSpec::new("receiver", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Recv {
                    tag: TagSel::Exact(1),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
                Action::Recv {
                    tag: TagSel::Exact(2),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
            ])),
        );
        sim.boot();
        let end = sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        assert!(sim.link_waits() >= 1, "second send should queue");
        assert!(sim.link_wait_ns() > 0);
        // The second send waits ~1 ms for the link; without contention the
        // run finishes in ~0.6 ms (latency + serialization only).
        assert!(
            end >= SimTime::from_micros(1200),
            "link never queued: {end}"
        );
        let hist = sim.link_wait_hist();
        assert_eq!(hist.iter().sum::<u64>(), sim.link_waits());
    }

    #[test]
    fn ingress_link_queues_simultaneous_senders() {
        // Two nodes fire 100 KB at node 2 at the same instant: the
        // messages arrive together, and the destination's 100 MB/s ingress
        // link forces the merge-ordered second one to wait ~1 ms.
        let spec = ClusterSpec {
            nodes: 3,
            cpus_per_node: 2,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::ZERO,
            trace_capacity: 1 << 14,
            fabric: FabricModel {
                link_bandwidth: Some(100e6),
                ..FabricModel::default()
            },
        };
        let mut sim = ClusterSim::build(&spec, &SeedSpace::new(1));
        for n in 0..2u32 {
            sim.kernel_mut(n).spawn(
                ThreadSpec::new("sender", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                Box::new(Script::new(vec![Action::Send(msg(
                    ep(n, 0),
                    ep(2, 0),
                    u64::from(n) + 1,
                    100_000,
                ))])),
            );
        }
        sim.kernel_mut(2).spawn(
            ThreadSpec::new("receiver", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Recv {
                    tag: TagSel::Exact(1),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
                Action::Recv {
                    tag: TagSel::Exact(2),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
            ])),
        );
        sim.boot();
        sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        assert!(sim.link_waits() >= 1, "ingress should serialize arrivals");
    }

    #[test]
    fn unlimited_link_mode_records_no_waits() {
        let mut sim = two_node_cluster();
        sim.kernel_mut(0).spawn(
            ThreadSpec::new("sender", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Send(msg(ep(0, 0), ep(1, 0), 1, 100_000)),
                Action::Send(msg(ep(0, 0), ep(1, 0), 2, 100_000)),
            ])),
        );
        sim.boot();
        sim.run_until_apps_done(SimTime::from_millis(50));
        assert_eq!(sim.link_waits(), 0);
        assert_eq!(sim.link_wait_ns(), 0);
        assert_eq!(sim.link_wait_hist(), [0; LINK_WAIT_BUCKETS]);
    }

    #[test]
    fn identical_history_with_link_contention() {
        // The contention registers must not perturb determinism: an
        // all-to-all burst over a tight 10 MB/s link replays identically
        // at 1/2/4 threads, waits included.
        let fingerprint = |threads: usize| {
            let spec = ClusterSpec {
                nodes: 4,
                cpus_per_node: 2,
                options: SchedOptions::vanilla(),
                skew_max: SimDur::from_millis(1),
                trace_capacity: 1 << 14,
                fabric: FabricModel {
                    link_bandwidth: Some(10e6),
                    ..FabricModel::default()
                },
            };
            let mut sim = ClusterSim::build(&spec, &SeedSpace::new(7));
            sim.set_sim_threads(threads);
            for n in 0..4u32 {
                let mut acts = Vec::new();
                for peer in 0..4u32 {
                    if peer != n {
                        acts.push(Action::Send(msg(
                            ep(n, 0),
                            ep(peer, 0),
                            u64::from(n * 4 + peer),
                            200_000,
                        )));
                    }
                }
                for peer in 0..4u32 {
                    if peer != n {
                        acts.push(Action::Recv {
                            tag: TagSel::Exact(u64::from(peer * 4 + n)),
                            src: SrcSel::Any,
                            wait: WaitMode::Poll,
                        });
                    }
                }
                sim.kernel_mut(n).spawn(
                    ThreadSpec::new("rank", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                    Box::new(Script::new(acts)),
                );
            }
            sim.boot();
            let end = sim.run_until_apps_done(SimTime::from_secs(5));
            (
                end,
                sim.events_processed(),
                sim.fifo_clamps(),
                sim.link_waits(),
                sim.link_wait_ns(),
                sim.link_wait_hist(),
                sim.queue_stats(),
            )
        };
        let serial = fingerprint(1);
        assert!(serial.3 > 0, "burst over a 10 MB/s link must queue");
        assert_eq!(serial, fingerprint(2));
        assert_eq!(serial, fingerprint(4));
    }

    #[test]
    fn run_until_advances_clock_to_horizon() {
        let mut sim = two_node_cluster();
        sim.boot();
        let horizon = SimTime::from_millis(50);
        let end = sim.run_until(horizon);
        assert_eq!(end, horizon);
        assert_eq!(sim.now(), horizon, "clock must land on the horizon");
    }

    #[test]
    fn daemon_idle_windows_widen_without_changing_history() {
        // Short app phase with real cross-node traffic, then a long
        // daemon-only tail: periodic sleepers ticking every 500 µs with
        // nothing to say to other nodes. Once the apps exit, every
        // window may widen past the lookahead — and must do so without
        // perturbing anything observable at any thread count. The merge
        // path hard-asserts the soundness condition (a widened window
        // staging a cross-shard message panics), so running this at all
        // proves every widened window preceded the earliest cross-shard
        // delivery: after the apps exit there is none.
        let fingerprint = |threads: usize| {
            let spec = ClusterSpec {
                nodes: 4,
                cpus_per_node: 2,
                options: SchedOptions::vanilla(),
                skew_max: SimDur::from_millis(1),
                trace_capacity: 1 << 14,
                fabric: FabricModel::default(),
            };
            let mut sim = ClusterSim::build(&spec, &SeedSpace::new(11));
            sim.set_sim_threads(threads);
            for n in 0..4u32 {
                let next = (n + 1) % 4;
                sim.kernel_mut(n).spawn(
                    ThreadSpec::new("rank", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                    Box::new(Script::new(vec![
                        Action::Send(msg(ep(n, 0), ep(next, 0), u64::from(n), 4096)),
                        Action::Recv {
                            tag: TagSel::Exact(u64::from((n + 3) % 4)),
                            src: SrcSel::Any,
                            wait: WaitMode::Poll,
                        },
                    ])),
                );
                let mut acts = Vec::new();
                for k in 1..=40u64 {
                    acts.push(Action::SleepUntil(SimTime::from_micros(500 * k)));
                    acts.push(Action::Compute(SimDur::from_micros(5)));
                }
                sim.kernel_mut(n).spawn(
                    ThreadSpec::new("syncd", ThreadClass::Daemon, Prio::USER).on_cpu(CpuId(1)),
                    Box::new(Script::new(acts)),
                );
            }
            sim.boot();
            let end = sim.run_until(SimTime::from_millis(20));
            assert_eq!(sim.apps_alive(), 0, "app phase must finish first");
            (
                end,
                sim.events_processed(),
                sim.messages_routed(),
                sim.queue_stats(),
                sim.windows_run(),
                sim.widened_windows(),
            )
        };
        let serial = fingerprint(1);
        assert!(
            serial.5 > 0,
            "daemon-only tail widened no windows: {serial:?}"
        );
        assert!(serial.2 > 0, "app phase routed no cross-node messages");
        assert_eq!(serial, fingerprint(2));
        assert_eq!(serial, fingerprint(4));
    }

    #[test]
    fn identical_history_across_thread_counts() {
        // A 4-node ring of send/recv pairs; fingerprints of the run must
        // match exactly no matter how shards are spread over threads.
        let fingerprint = |threads: usize| {
            let spec = ClusterSpec {
                nodes: 4,
                cpus_per_node: 2,
                options: SchedOptions::vanilla(),
                skew_max: SimDur::from_millis(1),
                trace_capacity: 1 << 14,
                fabric: FabricModel::default(),
            };
            let mut sim = ClusterSim::build(&spec, &SeedSpace::new(7));
            sim.set_sim_threads(threads);
            for n in 0..4u32 {
                let next = (n + 1) % 4;
                sim.kernel_mut(n).spawn(
                    ThreadSpec::new("rank", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                    Box::new(Script::new(vec![
                        Action::Send(msg(ep(n, 0), ep(next, 0), u64::from(n), 4096)),
                        Action::Recv {
                            tag: TagSel::Exact(u64::from((n + 3) % 4)),
                            src: SrcSel::Any,
                            wait: WaitMode::Poll,
                        },
                        Action::Compute(SimDur::from_micros(200)),
                        Action::Send(msg(ep(n, 0), ep(next, 0), 10 + u64::from(n), 64)),
                        Action::Recv {
                            tag: TagSel::Exact(10 + u64::from((n + 3) % 4)),
                            src: SrcSel::Any,
                            wait: WaitMode::Poll,
                        },
                    ])),
                );
            }
            sim.boot();
            let end = sim.run_until_apps_done(SimTime::from_secs(1));
            (
                end,
                sim.events_processed(),
                sim.messages_routed(),
                sim.bytes_routed(),
                sim.fifo_clamps(),
                sim.queue_stats(),
            )
        };
        let serial = fingerprint(1);
        assert_eq!(serial, fingerprint(2));
        assert_eq!(serial, fingerprint(4));
        assert_eq!(serial, fingerprint(16)); // clamped to node count
    }

    #[test]
    fn skew_draws_distinct_offsets() {
        let spec = ClusterSpec {
            skew_max: SimDur::from_millis(10),
            ..ClusterSpec::sp_system(4)
        };
        let sim = ClusterSim::build(&spec, &SeedSpace::new(1));
        let offsets: Vec<SimDur> = (0..4).map(|n| sim.kernel(n).clock().offset()).collect();
        let distinct: std::collections::HashSet<u64> = offsets.iter().map(|o| o.nanos()).collect();
        assert!(distinct.len() >= 3, "offsets look degenerate: {offsets:?}");
    }

    #[test]
    fn sync_clocks_collapses_offsets() {
        let spec = ClusterSpec {
            skew_max: SimDur::from_millis(10),
            ..ClusterSpec::sp_system(4)
        };
        let seeds = SeedSpace::new(1);
        let mut sim = ClusterSim::build(&spec, &seeds);
        sim.sync_clocks(&seeds, SimDur::from_micros(20));
        for n in 0..4 {
            assert!(sim.kernel(n).clock().offset() < SimDur::from_micros(20));
        }
    }

    #[test]
    fn same_seed_same_history() {
        let run = || {
            let mut sim = two_node_cluster();
            sim.kernel_mut(0).spawn(
                ThreadSpec::new("a", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(5))])),
            );
            sim.boot();
            let t = sim.run_until_apps_done(SimTime::from_secs(1));
            (t, sim.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spec_presets() {
        let v = ClusterSpec::sp_system(59);
        assert_eq!(v.total_cpus(), 944);
        let p = ClusterSpec::sp_system_prototype(59);
        assert_eq!(p.options.big_tick, 25);
        assert_eq!(v.options.big_tick, 1);
    }

    #[test]
    fn window_bounds_handles_max_horizon() {
        let la = SimDur::from_micros(10);
        // Ordinary window: end = start + lookahead, exclusive.
        let (we, inc) = window_bounds(SimTime::from_micros(100), SimTime::from_secs(1), la);
        assert_eq!(we, SimTime::from_micros(110));
        assert!(!inc);
        // Clamped to horizon + 1 ns near the horizon (still exclusive:
        // events *at* the horizon are inside the window).
        let (we, inc) = window_bounds(SimTime::from_nanos(999_999_995), SimTime::from_secs(1), la);
        assert_eq!(we, SimTime::from_nanos(1_000_000_001));
        assert!(!inc);
        // At the maximum representable horizon the old arithmetic
        // saturated at u64::MAX and silently dropped events in the final
        // nanosecond; the bound must become *inclusive* instead.
        let (we, inc) = window_bounds(SimTime::from_nanos(u64::MAX - 5), SimTime::FAR_FUTURE, la);
        assert_eq!(we, SimTime::FAR_FUTURE);
        assert!(inc, "final window at the max horizon must be inclusive");
        // A start far from the max horizon is unaffected.
        let (we, inc) = window_bounds(SimTime::from_micros(100), SimTime::FAR_FUTURE, la);
        assert_eq!(we, SimTime::from_micros(110));
        assert!(!inc);
    }

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "pa-cluster-test-{}-{name}.ckpt",
            std::process::id()
        ));
        p
    }

    /// 4-node ring workload used by the checkpoint tests: enough cross-
    /// node traffic, compute, and skew to exercise every snapshotted
    /// register.
    fn ring_sim(threads: usize) -> ClusterSim {
        let spec = ClusterSpec {
            nodes: 4,
            cpus_per_node: 2,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::from_millis(1),
            trace_capacity: 1 << 14,
            fabric: FabricModel {
                link_bandwidth: Some(10e6),
                ..FabricModel::default()
            },
        };
        let mut sim = ClusterSim::build(&spec, &SeedSpace::new(7));
        sim.set_sim_threads(threads);
        for n in 0..4u32 {
            let next = (n + 1) % 4;
            sim.kernel_mut(n).spawn(
                ThreadSpec::new("rank", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                Box::new(Script::new(vec![
                    Action::Send(msg(ep(n, 0), ep(next, 0), u64::from(n), 200_000)),
                    Action::Recv {
                        tag: TagSel::Exact(u64::from((n + 3) % 4)),
                        src: SrcSel::Any,
                        wait: WaitMode::Poll,
                    },
                    Action::Compute(SimDur::from_micros(200)),
                    Action::Send(msg(ep(n, 0), ep(next, 0), 10 + u64::from(n), 64)),
                    Action::Recv {
                        tag: TagSel::Exact(10 + u64::from((n + 3) % 4)),
                        src: SrcSel::Any,
                        wait: WaitMode::Poll,
                    },
                ])),
            );
        }
        sim
    }

    type Fingerprint = (SimTime, u64, u64, u64, u64, u64, u64, QueueStats, u64);

    fn fingerprint(sim: &ClusterSim, end: SimTime) -> Fingerprint {
        (
            end,
            sim.events_processed(),
            sim.messages_routed(),
            sim.bytes_routed(),
            sim.fifo_clamps(),
            sim.link_waits(),
            sim.link_wait_ns(),
            sim.queue_stats(),
            sim.checkpoints_written(),
        )
    }

    #[test]
    fn manual_checkpoint_restore_is_bit_identical() {
        // Uninterrupted reference run.
        let mut base = ring_sim(1);
        base.boot();
        let end = base.run_until_apps_done(SimTime::from_secs(5));
        let want = fingerprint(&base, end);

        // Interrupted run: advance partway, checkpoint, throw it away.
        let path = tmp_path("manual");
        let mut first = ring_sim(1);
        first.boot();
        first.run_until(SimTime::from_micros(400));
        let bytes = first.checkpoint(&path).expect("checkpoint");
        assert!(bytes > 0);
        assert_eq!(first.last_checkpoint_bytes(), bytes);
        drop(first);

        // Resume in a rebuilt cluster at several thread counts: the tail
        // must replay to the identical final state (modulo the write
        // counter carried by the snapshot).
        for threads in [1usize, 2, 4] {
            let mut resumed = ring_sim(threads);
            resumed.boot();
            resumed.restore(&path).expect("restore");
            assert_eq!(resumed.checkpoint_restores(), 1);
            let end2 = resumed.run_until_apps_done(SimTime::from_secs(5));
            let mut got = fingerprint(&resumed, end2);
            // The reference never checkpointed; the resumed run carries
            // the interrupted run's single write.
            assert_eq!(got.8, 1);
            got.8 = want.8;
            assert_eq!(got, want, "threads={threads}");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn periodic_checkpoints_match_uninterrupted_counters() {
        // Reference: periodic checkpointing on, run to completion.
        let every = SimDur::from_micros(300);
        let base_path = tmp_path("periodic-base");
        let mut base = ring_sim(1);
        base.set_checkpoint_every(every, &base_path);
        base.boot();
        let end = base.run_until_apps_done(SimTime::from_secs(5));
        let want = fingerprint(&base, end);
        assert!(
            base.checkpoints_written() >= 2,
            "workload too short to exercise periodic checkpoints: {}",
            base.checkpoints_written()
        );

        // The file on disk is the *last* periodic checkpoint. Resume from
        // it at each thread count; the restored schedule must not repeat
        // the write that produced it, so the final counter matches.
        for threads in [1usize, 2, 4] {
            let resumed_path = tmp_path(&format!("periodic-resume-{threads}"));
            let mut resumed = ring_sim(threads);
            resumed.set_checkpoint_every(every, &resumed_path);
            resumed.boot();
            resumed.restore(&base_path).expect("restore");
            let end2 = resumed.run_until_apps_done(SimTime::from_secs(5));
            assert_eq!(fingerprint(&resumed, end2), want, "threads={threads}");
            let _ = std::fs::remove_file(&resumed_path);
        }
        let _ = std::fs::remove_file(&base_path);
    }

    #[test]
    fn restore_rejects_corrupt_checkpoint() {
        let path = tmp_path("corrupt");
        let mut sim = ring_sim(1);
        sim.boot();
        sim.run_until(SimTime::from_micros(200));
        sim.checkpoint(&path).expect("checkpoint");
        // Flip one character inside the hashed payload.
        let text = std::fs::read_to_string(&path).unwrap();
        let idx = text.find("\\\"now\\\"").expect("payload field");
        let mut bytes = text.into_bytes();
        bytes[idx + 2] = b'x';
        std::fs::write(&path, bytes).unwrap();
        let mut fresh = ring_sim(1);
        fresh.boot();
        let err = fresh.restore(&path).unwrap_err();
        assert!(err.contains("corrupt"), "unexpected error: {err}");
        assert_eq!(fresh.checkpoint_restores(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_rejects_node_count_mismatch() {
        let path = tmp_path("shape");
        let mut sim = ring_sim(1);
        sim.boot();
        sim.checkpoint(&path).expect("checkpoint");
        let mut small = two_node_cluster();
        small.boot();
        let err = small.restore(&path).unwrap_err();
        assert!(err.contains("nodes"), "unexpected error: {err}");
        let _ = std::fs::remove_file(&path);
    }

    /// A program that computes briefly, then panics — stands in for any
    /// bug in kernel or workload code reached from a shard worker. (The
    /// delay matters: the first dispatch happens during `boot`, which is
    /// serial; the panic must land inside the windowed run.)
    struct PanicBomb {
        armed: bool,
    }
    impl pa_kernel::Program for PanicBomb {
        fn step(&mut self, _ctx: &mut pa_kernel::StepCtx<'_>) -> Action {
            if !self.armed {
                self.armed = true;
                return Action::Compute(SimDur::from_micros(50));
            }
            panic!("deliberate test panic");
        }
        fn kind(&self) -> &'static str {
            "panic-bomb"
        }
    }

    #[test]
    fn worker_panic_reports_node_not_poison() {
        // Before the hardening, a panic inside a shard worker poisoned
        // that shard's mutex and the run died with an opaque
        // `PoisonError` (or hung at the barrier). It must now surface the
        // original payload tagged with the node it struck.
        let mut sim = ring_sim(2);
        sim.kernel_mut(2).spawn(
            ThreadSpec::new("bomb", ThreadClass::App, Prio::USER).on_cpu(CpuId(1)),
            Box::new(PanicBomb { armed: false }),
        );
        sim.boot();
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            sim.run_until_apps_done(SimTime::from_secs(1));
        }));
        let payload = outcome.expect_err("run must propagate the worker panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .expect("panic payload should be a string");
        assert!(
            msg.contains("node 2") && msg.contains("deliberate test panic"),
            "panic message should name the node and original payload: {msg}"
        );
        assert!(
            !msg.contains("PoisonError"),
            "poison must not leak into the panic message: {msg}"
        );
    }
}
