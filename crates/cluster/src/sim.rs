//! The multi-node simulation driver.
//!
//! [`ClusterSim`] owns one [`Kernel`] per node, the global event calendar,
//! and the switch [`FabricModel`]. It routes outbound messages between
//! node kernels and runs the whole cluster to a predicate or horizon.
//! The global calendar *is* the switch's globally synchronized timebase;
//! each node's kernel sees it only through its own
//! `ClockModel` — exactly as real nodes see real
//! time only through their (possibly skewed) time-of-day clocks.

use crate::fabric::FabricModel;
use pa_kernel::{ClockModel, Effects, Kernel, KernelEvent, SchedOptions};
use pa_simkit::{EventQueue, SeedSpace, SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// Cluster-wide event: a kernel event addressed to one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterEvent {
    /// Destination node.
    pub node: u32,
    /// The node-level event.
    pub ev: KernelEvent,
}

/// Static description of a cluster to build.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of SMP nodes.
    pub nodes: u32,
    /// CPUs per node (the study's machines: 16-way Nighthawk/Power3).
    pub cpus_per_node: u8,
    /// Kernel options (identical on every node, like a site-wide kernel).
    pub options: SchedOptions,
    /// Maximum boot-time clock offset; each node draws uniformly from
    /// `[0, skew_max)`. Zero models pre-synchronized clocks.
    pub skew_max: SimDur,
    /// Trace-ring capacity per node.
    pub trace_capacity: usize,
    /// Fabric constants.
    pub fabric: FabricModel,
}

impl ClusterSpec {
    /// A cluster in the study's shape: `nodes` × 16-way, vanilla kernel,
    /// unsynchronized clocks (up to 10 ms skew).
    pub fn sp_system(nodes: u32) -> ClusterSpec {
        ClusterSpec {
            nodes,
            cpus_per_node: 16,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::from_millis(10),
            trace_capacity: 1 << 18,
            fabric: FabricModel::default(),
        }
    }

    /// Same, with the prototype kernel options.
    pub fn sp_system_prototype(nodes: u32) -> ClusterSpec {
        ClusterSpec {
            options: SchedOptions::prototype(),
            ..ClusterSpec::sp_system(nodes)
        }
    }

    /// Total CPU count.
    pub fn total_cpus(&self) -> u32 {
        self.nodes * u32::from(self.cpus_per_node)
    }
}

/// The running cluster.
pub struct ClusterSim {
    kernels: Vec<Kernel>,
    queue: EventQueue<ClusterEvent>,
    fabric: FabricModel,
    fx: Effects,
    events_processed: u64,
    booted: bool,
    messages_routed: u64,
    bytes_routed: u64,
    clock_resyncs: u64,
}

impl ClusterSim {
    /// Build the cluster: one kernel per node with per-node RNG streams
    /// and boot-time clock offsets drawn from `seeds`.
    pub fn build(spec: &ClusterSpec, seeds: &SeedSpace) -> ClusterSim {
        spec.fabric.validate().expect("invalid fabric model");
        assert!(spec.nodes > 0, "cluster needs at least one node");
        let kernels = (0..spec.nodes)
            .map(|n| {
                let mut clock_rng = seeds.stream_at("cluster/clock", u64::from(n), 0);
                let offset = if spec.skew_max.is_zero() {
                    SimDur::ZERO
                } else {
                    SimDur::from_nanos(clock_rng.range(0, spec.skew_max.nanos()))
                };
                Kernel::new(
                    n,
                    spec.cpus_per_node,
                    spec.options,
                    ClockModel::with_offset(offset),
                    seeds.stream_at("cluster/kernel", u64::from(n), 0),
                    spec.trace_capacity,
                )
            })
            .collect();
        ClusterSim {
            kernels,
            queue: EventQueue::new(),
            fabric: spec.fabric,
            fx: Effects::new(),
            events_processed: 0,
            booted: false,
            messages_routed: 0,
            bytes_routed: 0,
            clock_resyncs: 0,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> u32 {
        self.kernels.len() as u32
    }

    /// Access a node's kernel (setup: spawning threads, enabling traces).
    pub fn kernel_mut(&mut self, node: u32) -> &mut Kernel {
        &mut self.kernels[node as usize]
    }

    /// Access a node's kernel read-only (post-run analysis).
    pub fn kernel(&self, node: u32) -> &Kernel {
        &self.kernels[node as usize]
    }

    /// Current global time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Messages routed over the fabric.
    pub fn messages_routed(&self) -> u64 {
        self.messages_routed
    }

    /// Payload bytes routed over the fabric.
    pub fn bytes_routed(&self) -> u64 {
        self.bytes_routed
    }

    /// Node clocks re-synchronized via [`ClusterSim::sync_clocks`].
    pub fn clock_resyncs(&self) -> u64 {
        self.clock_resyncs
    }

    /// Engine self-profile of the cluster event queue.
    pub fn queue_stats(&self) -> pa_simkit::QueueStats {
        self.queue.stats()
    }

    /// Synchronize every node's clock to the switch clock, leaving at most
    /// `residual_max` of error per node (the co-scheduler's startup
    /// procedure, §4). Must be called before [`ClusterSim::boot`] so tick
    /// boundaries are planned on the synced clocks.
    pub fn sync_clocks(&mut self, seeds: &SeedSpace, residual_max: SimDur) {
        for (n, k) in self.kernels.iter_mut().enumerate() {
            let mut rng = seeds.stream_at("cluster/clocksync", n as u64, 0);
            let residual = if residual_max.is_zero() {
                SimDur::ZERO
            } else {
                SimDur::from_nanos(rng.range(0, residual_max.nanos()))
            };
            k.clock_mut().sync_to_switch(residual);
            self.clock_resyncs += 1;
        }
    }

    /// Boot every node at the current time.
    pub fn boot(&mut self) {
        assert!(!self.booted, "boot called twice");
        self.booted = true;
        let now = self.queue.now();
        for n in 0..self.kernels.len() {
            self.kernels[n].boot(now, &mut self.fx);
            self.drain_effects(n as u32);
        }
    }

    fn drain_effects(&mut self, node: u32) {
        let now = self.queue.now();
        for (t, ev) in self.fx.schedule.drain(..) {
            self.queue.schedule(t, ClusterEvent { node, ev });
        }
        for msg in self.fx.outbound.drain(..) {
            let delay = self.fabric.delay(&msg);
            let dst = msg.dst.node;
            self.messages_routed += 1;
            self.bytes_routed += u64::from(msg.bytes);
            assert!(
                (dst as usize) < self.kernels.len(),
                "message to nonexistent node {dst}"
            );
            self.queue.schedule(
                now + delay,
                ClusterEvent {
                    node: dst,
                    ev: KernelEvent::Deliver { msg },
                },
            );
        }
    }

    /// Live application threads across the cluster.
    pub fn apps_alive(&self) -> usize {
        self.kernels.iter().map(|k| k.app_alive()).sum()
    }

    /// Run until every application thread has exited or `horizon` passes.
    /// Returns the stop time.
    pub fn run_until_apps_done(&mut self, horizon: SimTime) -> SimTime {
        assert!(self.booted, "boot the cluster first");
        loop {
            if self.apps_alive() == 0 {
                return self.queue.now();
            }
            let Some(t) = self.queue.peek_time() else {
                return self.queue.now();
            };
            if t > horizon {
                return self.queue.now();
            }
            self.step();
        }
    }

    /// Run until `horizon` regardless of application state.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        assert!(self.booted, "boot the cluster first");
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            self.step();
        }
        horizon
    }

    fn step(&mut self) {
        let (now, ev) = self.queue.pop().expect("step on empty queue");
        self.events_processed += 1;
        let node = ev.node as usize;
        self.kernels[node].handle(now, ev.ev, &mut self.fx);
        self.drain_effects(ev.node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::{
        Action, CpuId, Endpoint, Message, Prio, Script, SrcSel, TagSel, ThreadSpec, ThreadState,
        Tid, WaitMode,
    };
    use pa_trace::{HookMask, ThreadClass};

    fn two_node_cluster() -> ClusterSim {
        let spec = ClusterSpec {
            nodes: 2,
            cpus_per_node: 2,
            options: SchedOptions::vanilla(),
            skew_max: SimDur::ZERO,
            trace_capacity: 1 << 14,
            fabric: FabricModel::default(),
        };
        ClusterSim::build(&spec, &SeedSpace::new(1))
    }

    #[test]
    fn cross_node_ping_pong() {
        let mut sim = two_node_cluster();
        // Node 0 rank sends to node 1 rank, which replies; both then exit.
        let ep = |node: u32, tid: u32| Endpoint {
            node,
            tid: Tid(tid),
        };
        let msg = |src: Endpoint, dst: Endpoint, tag: u64| Message {
            src,
            dst,
            tag,
            bytes: 8,
            sent_at: SimTime::ZERO,
            payload: 0,
        };
        sim.kernel_mut(0).trace_mut().set_mask(HookMask::ALL);
        sim.kernel_mut(0).spawn(
            ThreadSpec::new("rank0", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Send(msg(ep(0, 0), ep(1, 0), 1)),
                Action::Recv {
                    tag: TagSel::Exact(2),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
            ])),
        );
        sim.kernel_mut(1).spawn(
            ThreadSpec::new("rank1", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                Action::Recv {
                    tag: TagSel::Exact(1),
                    src: SrcSel::Any,
                    wait: WaitMode::Poll,
                },
                Action::Send(msg(ep(1, 0), ep(0, 0), 2)),
            ])),
        );
        sim.boot();
        let end = sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        // Two network hops plus overheads: tens of microseconds.
        assert!(end >= SimTime::from_micros(26), "too fast: {end}");
        assert!(end < SimTime::from_millis(1), "too slow: {end}");
        assert_eq!(sim.kernel(0).thread_state(Tid(0)), ThreadState::Exited);
    }

    #[test]
    fn skew_draws_distinct_offsets() {
        let spec = ClusterSpec {
            skew_max: SimDur::from_millis(10),
            ..ClusterSpec::sp_system(4)
        };
        let sim = ClusterSim::build(&spec, &SeedSpace::new(1));
        let offsets: Vec<SimDur> = (0..4).map(|n| sim.kernel(n).clock().offset()).collect();
        let distinct: std::collections::HashSet<u64> = offsets.iter().map(|o| o.nanos()).collect();
        assert!(distinct.len() >= 3, "offsets look degenerate: {offsets:?}");
    }

    #[test]
    fn sync_clocks_collapses_offsets() {
        let spec = ClusterSpec {
            skew_max: SimDur::from_millis(10),
            ..ClusterSpec::sp_system(4)
        };
        let seeds = SeedSpace::new(1);
        let mut sim = ClusterSim::build(&spec, &seeds);
        sim.sync_clocks(&seeds, SimDur::from_micros(20));
        for n in 0..4 {
            assert!(sim.kernel(n).clock().offset() < SimDur::from_micros(20));
        }
    }

    #[test]
    fn same_seed_same_history() {
        let run = || {
            let mut sim = two_node_cluster();
            sim.kernel_mut(0).spawn(
                ThreadSpec::new("a", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                Box::new(Script::new(vec![Action::Compute(SimDur::from_millis(5))])),
            );
            sim.boot();
            let t = sim.run_until_apps_done(SimTime::from_secs(1));
            (t, sim.events_processed())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn spec_presets() {
        let v = ClusterSpec::sp_system(59);
        assert_eq!(v.total_cpus(), 944);
        let p = ClusterSpec::sp_system_prototype(59);
        assert_eq!(p.options.big_tick, 25);
        assert_eq!(v.options.big_tick, 1);
    }
}
