//! The switch fabric model.
//!
//! The SP switch of the study's machines provides (a) low-latency
//! user-space messaging between nodes and (b) a globally synchronized
//! clock register (§4). This module models (a): message delivery delay as
//! a LogGP-style latency + serialization term, with distinct constants for
//! on-node (shared memory) and cross-node paths.

use pa_kernel::Message;
use pa_simkit::SimDur;
use serde::{Deserialize, Serialize};

/// Delivery-delay model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricModel {
    /// Wire latency for a cross-node message (switch traversal).
    pub net_latency: SimDur,
    /// Cross-node bandwidth, bytes per second.
    pub net_bandwidth: f64,
    /// Latency for an on-node (shared memory) message.
    pub shm_latency: SimDur,
    /// On-node bandwidth, bytes per second.
    pub shm_bandwidth: f64,
    /// Per-node link capacity, bytes per second, shared by all concurrent
    /// cross-node traffic entering (ingress) or leaving (egress) a node.
    /// `None` is the legacy unlimited mode: messages overlap for free and
    /// only the per-message latency + serialization delay applies.
    pub link_bandwidth: Option<f64>,
}

/// Inclusive bucket upper bounds (ns) of the link queueing-delay
/// histogram surfaced through `pa-obs`: 1µs .. 100ms, decade-spaced.
pub const LINK_WAIT_EDGES_NS: [u64; 6] =
    [1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// Bucket count of the link-wait histogram (the last is overflow).
pub const LINK_WAIT_BUCKETS: usize = LINK_WAIT_EDGES_NS.len() + 1;

impl Default for FabricModel {
    fn default() -> Self {
        // Calibrated to the study's context: user-space MPI over the SP
        // switch had ~17µs one-way small-message latency on Power3 SPs,
        // ~350 MB/s sustained; shared memory ~3µs, ~1 GB/s.
        FabricModel {
            net_latency: SimDur::from_micros(17),
            net_bandwidth: 350e6,
            shm_latency: SimDur::from_micros(3),
            shm_bandwidth: 1e9,
            link_bandwidth: None,
        }
    }
}

impl FabricModel {
    /// Delivery delay for `msg` (sender overhead is charged by the sending
    /// kernel; this is fabric time only).
    pub fn delay(&self, msg: &Message) -> SimDur {
        let same_node = msg.src.node == msg.dst.node;
        let (lat, bw) = if same_node {
            (self.shm_latency, self.shm_bandwidth)
        } else {
            (self.net_latency, self.net_bandwidth)
        };
        let ser_ns = f64::from(msg.bytes) / bw * 1e9;
        assert!(
            ser_ns.is_finite(),
            "non-finite serialization delay for {} bytes at {bw} B/s",
            msg.bytes
        );
        lat + SimDur::from_nanos(ser_ns.round() as u64)
    }

    /// Time `bytes` of payload occupies a node's ingress or egress link,
    /// or `None` in the unlimited default-compat mode.
    pub fn link_occupancy(&self, bytes: u32) -> Option<SimDur> {
        self.link_bandwidth.map(|bw| {
            let ns = f64::from(bytes) / bw * 1e9;
            debug_assert!(ns.is_finite(), "non-finite link occupancy at {bw} B/s");
            SimDur::from_nanos(ns.round() as u64)
        })
    }

    /// Validate sanity.
    pub fn validate(&self) -> Result<(), String> {
        fn positive_finite(name: &str, v: f64) -> Result<(), String> {
            // `v > 0.0` is false for NaN, so non-finite values land here
            // too; the old `<= 0.0` rejection let NaN slip through.
            if v.is_finite() && v > 0.0 {
                Ok(())
            } else {
                Err(format!("{name} must be positive and finite, got {v}"))
            }
        }
        positive_finite("net_bandwidth", self.net_bandwidth)?;
        positive_finite("shm_bandwidth", self.shm_bandwidth)?;
        if let Some(bw) = self.link_bandwidth {
            positive_finite("link_bandwidth", bw)?;
        }
        if self.shm_latency > self.net_latency {
            return Err("shared memory should not be slower than the switch".into());
        }
        if self.net_latency.is_zero() {
            return Err(
                "net_latency must be positive: it is the parallel engine's lookahead".into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::{Endpoint, Tid};
    use pa_simkit::SimTime;

    fn msg(src_node: u32, dst_node: u32, bytes: u32) -> Message {
        Message {
            src: Endpoint {
                node: src_node,
                tid: Tid(0),
            },
            dst: Endpoint {
                node: dst_node,
                tid: Tid(1),
            },
            tag: 0,
            bytes,
            sent_at: SimTime::ZERO,
            payload: 0,
        }
    }

    #[test]
    fn cross_node_slower_than_shm() {
        let f = FabricModel::default();
        assert!(f.delay(&msg(0, 1, 8)) > f.delay(&msg(0, 0, 8)));
    }

    #[test]
    fn small_message_is_latency_bound() {
        let f = FabricModel::default();
        let d = f.delay(&msg(0, 1, 8));
        // 8 bytes at 350MB/s is ~23ns: delay ≈ net_latency.
        assert!(d >= f.net_latency);
        assert!(d <= f.net_latency + SimDur::from_nanos(100));
    }

    #[test]
    fn large_message_is_bandwidth_bound() {
        let f = FabricModel::default();
        let d = f.delay(&msg(0, 1, 35_000_000)); // 35 MB at 350MB/s = 100ms
        assert!(d >= SimDur::from_millis(100));
        assert!(d <= SimDur::from_millis(101));
    }

    #[test]
    fn serialization_rounds_to_nearest_ns() {
        let f = FabricModel::default();
        // 8 bytes at 350 MB/s is 22.857 ns: must round up to 23, not
        // truncate to 22.
        assert_eq!(
            f.delay(&msg(0, 1, 8)) - f.net_latency,
            SimDur::from_nanos(23)
        );
        // 7 bytes at 1 GB/s is exactly 7 ns on the shm path.
        assert_eq!(
            f.delay(&msg(0, 0, 7)) - f.shm_latency,
            SimDur::from_nanos(7)
        );
    }

    #[test]
    fn link_occupancy_unlimited_by_default() {
        let f = FabricModel::default();
        assert_eq!(f.link_occupancy(1_000_000), None);
    }

    #[test]
    fn link_occupancy_rounds_to_nearest_ns() {
        let f = FabricModel {
            link_bandwidth: Some(350e6),
            ..FabricModel::default()
        };
        // 8 bytes at 350 MB/s: 22.857 ns, rounded to 23.
        assert_eq!(f.link_occupancy(8), Some(SimDur::from_nanos(23)));
        assert_eq!(f.link_occupancy(0), Some(SimDur::ZERO));
    }

    #[test]
    fn validation_rejects_non_finite_bandwidths() {
        for bad_bw in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, -1.0] {
            let bad = FabricModel {
                net_bandwidth: bad_bw,
                ..FabricModel::default()
            };
            let err = bad.validate().expect_err("net_bandwidth must be rejected");
            assert!(err.contains("net_bandwidth"), "unnamed error: {err}");
            let bad = FabricModel {
                shm_bandwidth: bad_bw,
                ..FabricModel::default()
            };
            let err = bad.validate().expect_err("shm_bandwidth must be rejected");
            assert!(err.contains("shm_bandwidth"), "unnamed error: {err}");
            let bad = FabricModel {
                link_bandwidth: Some(bad_bw),
                ..FabricModel::default()
            };
            let err = bad.validate().expect_err("link_bandwidth must be rejected");
            assert!(err.contains("link_bandwidth"), "unnamed error: {err}");
        }
        let ok = FabricModel {
            link_bandwidth: Some(350e6),
            ..FabricModel::default()
        };
        assert!(ok.validate().is_ok());
    }

    #[test]
    fn validation() {
        assert!(FabricModel::default().validate().is_ok());
        let bad = FabricModel {
            net_bandwidth: 0.0,
            ..FabricModel::default()
        };
        assert!(bad.validate().is_err());
        let bad = FabricModel {
            shm_latency: SimDur::from_millis(1),
            ..FabricModel::default()
        };
        assert!(bad.validate().is_err());
        let bad = FabricModel {
            net_latency: SimDur::ZERO,
            shm_latency: SimDur::ZERO,
            ..FabricModel::default()
        };
        assert!(bad.validate().is_err(), "zero lookahead must be rejected");
    }
}
