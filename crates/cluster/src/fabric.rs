//! The switch fabric model.
//!
//! The SP switch of the study's machines provides (a) low-latency
//! user-space messaging between nodes and (b) a globally synchronized
//! clock register (§4). This module models (a): message delivery delay as
//! a LogGP-style latency + serialization term, with distinct constants for
//! on-node (shared memory) and cross-node paths.

use pa_kernel::Message;
use pa_simkit::SimDur;
use serde::{Deserialize, Serialize};

/// Delivery-delay model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricModel {
    /// Wire latency for a cross-node message (switch traversal).
    pub net_latency: SimDur,
    /// Cross-node bandwidth, bytes per second.
    pub net_bandwidth: f64,
    /// Latency for an on-node (shared memory) message.
    pub shm_latency: SimDur,
    /// On-node bandwidth, bytes per second.
    pub shm_bandwidth: f64,
}

impl Default for FabricModel {
    fn default() -> Self {
        // Calibrated to the study's context: user-space MPI over the SP
        // switch had ~17µs one-way small-message latency on Power3 SPs,
        // ~350 MB/s sustained; shared memory ~3µs, ~1 GB/s.
        FabricModel {
            net_latency: SimDur::from_micros(17),
            net_bandwidth: 350e6,
            shm_latency: SimDur::from_micros(3),
            shm_bandwidth: 1e9,
        }
    }
}

impl FabricModel {
    /// Delivery delay for `msg` (sender overhead is charged by the sending
    /// kernel; this is fabric time only).
    pub fn delay(&self, msg: &Message) -> SimDur {
        let same_node = msg.src.node == msg.dst.node;
        let (lat, bw) = if same_node {
            (self.shm_latency, self.shm_bandwidth)
        } else {
            (self.net_latency, self.net_bandwidth)
        };
        let ser = SimDur::from_nanos((f64::from(msg.bytes) / bw * 1e9) as u64);
        lat + ser
    }

    /// Validate sanity.
    pub fn validate(&self) -> Result<(), String> {
        if self.net_bandwidth <= 0.0 || self.shm_bandwidth <= 0.0 {
            return Err("bandwidth must be positive".into());
        }
        if self.shm_latency > self.net_latency {
            return Err("shared memory should not be slower than the switch".into());
        }
        if self.net_latency.is_zero() {
            return Err(
                "net_latency must be positive: it is the parallel engine's lookahead".into(),
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::{Endpoint, Tid};
    use pa_simkit::SimTime;

    fn msg(src_node: u32, dst_node: u32, bytes: u32) -> Message {
        Message {
            src: Endpoint {
                node: src_node,
                tid: Tid(0),
            },
            dst: Endpoint {
                node: dst_node,
                tid: Tid(1),
            },
            tag: 0,
            bytes,
            sent_at: SimTime::ZERO,
            payload: 0,
        }
    }

    #[test]
    fn cross_node_slower_than_shm() {
        let f = FabricModel::default();
        assert!(f.delay(&msg(0, 1, 8)) > f.delay(&msg(0, 0, 8)));
    }

    #[test]
    fn small_message_is_latency_bound() {
        let f = FabricModel::default();
        let d = f.delay(&msg(0, 1, 8));
        // 8 bytes at 350MB/s is ~23ns: delay ≈ net_latency.
        assert!(d >= f.net_latency);
        assert!(d <= f.net_latency + SimDur::from_nanos(100));
    }

    #[test]
    fn large_message_is_bandwidth_bound() {
        let f = FabricModel::default();
        let d = f.delay(&msg(0, 1, 35_000_000)); // 35 MB at 350MB/s = 100ms
        assert!(d >= SimDur::from_millis(100));
        assert!(d <= SimDur::from_millis(101));
    }

    #[test]
    fn validation() {
        assert!(FabricModel::default().validate().is_ok());
        let bad = FabricModel {
            net_bandwidth: 0.0,
            ..FabricModel::default()
        };
        assert!(bad.validate().is_err());
        let bad = FabricModel {
            shm_latency: SimDur::from_millis(1),
            ..FabricModel::default()
        };
        assert!(bad.validate().is_err());
        let bad = FabricModel {
            net_latency: SimDur::ZERO,
            shm_latency: SimDur::ZERO,
            ..FabricModel::default()
        };
        assert!(bad.validate().is_err(), "zero lookahead must be rejected");
    }
}
