//! Space-sharing placement and queueing policies.
//!
//! A policy is a pure function from a [`SchedView`] — the queue in
//! canonical order plus per-node occupancy — to a set of launch
//! decisions, and (for malleable jobs) a target width at reconfiguration
//! points. Keeping policies free of engine state makes them unit-testable
//! and trivially deterministic: the engine always presents the view in
//! the same canonical order, so identical views yield identical
//! decisions at any `--sim-threads`.

use pa_simkit::{SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// The shipped placement/queueing policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Strict arrival order with head-of-line blocking; lowest-numbered
    /// free nodes first. The LoadLeveler-style baseline.
    FcfsFirstFit,
    /// EASY backfill: FCFS head reservation, later jobs may jump the
    /// queue if they fit in the spare nodes or finish (per their own
    /// estimate) before the head's shadow time.
    Backfill,
    /// Greedy fit in queue order (no head-of-line blocking), placing each
    /// job on the nodes with the least accumulated busy time — spreading
    /// cache and scheduler pressure instead of packing low node ids.
    PackByPressure,
    /// Like `PackByPressure` for placement, but drives malleable jobs
    /// toward an equal share of the cluster (`nodes / active jobs`) at
    /// every reconfiguration point — the policy that exercises both grow
    /// and shrink.
    EquiPartition,
}

impl PolicyKind {
    /// All shipped policies, in comparison-table order.
    pub const ALL: [PolicyKind; 4] = [
        PolicyKind::FcfsFirstFit,
        PolicyKind::Backfill,
        PolicyKind::PackByPressure,
        PolicyKind::EquiPartition,
    ];

    /// Stable CLI / metrics name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::FcfsFirstFit => "fcfs",
            PolicyKind::Backfill => "backfill",
            PolicyKind::PackByPressure => "pack",
            PolicyKind::EquiPartition => "equi",
        }
    }

    /// Parse a CLI name, naming the offending value on failure.
    pub fn parse(s: &str) -> Result<PolicyKind, String> {
        PolicyKind::ALL
            .into_iter()
            .find(|p| p.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = PolicyKind::ALL.iter().map(|p| p.name()).collect();
                format!("unknown policy {s:?}, expected one of {}", names.join(", "))
            })
    }
}

/// A queued (not yet running) job, as the policy sees it.
#[derive(Debug, Clone)]
pub struct QueuedJob {
    /// Engine job id (submission index).
    pub id: u32,
    /// Width the job wants at launch.
    pub nodes: u32,
    /// Malleable lower bound.
    pub min_nodes: u32,
    /// Malleable upper bound.
    pub max_nodes: u32,
    /// User runtime estimate (backfill shadow input).
    pub estimate: SimDur,
}

/// A running job, as the policy sees it.
#[derive(Debug, Clone)]
pub struct RunningJob {
    /// Engine job id.
    pub id: u32,
    /// Nodes currently occupied.
    pub width: u32,
    /// Launch time plus the user estimate — when backfill may assume the
    /// nodes come back. Estimates are advisory; the engine never kills an
    /// overrunning job.
    pub est_end: SimTime,
    /// Whether this job can be resized at its next chunk boundary.
    pub malleable: bool,
}

/// Scheduler-visible cluster state at one decision instant.
///
/// `queue` is already in canonical order (priority desc, submit asc, id
/// asc) and `free`/`busy_time` are indexed by physical node id, so every
/// policy decision is a deterministic fold over this struct.
#[derive(Debug)]
pub struct SchedView {
    /// Decision instant.
    pub now: SimTime,
    /// Per-node: is the node unoccupied?
    pub free: Vec<bool>,
    /// Per-node accumulated occupied time (pressure proxy).
    pub busy_time: Vec<SimDur>,
    /// Waiting jobs in canonical order.
    pub queue: Vec<QueuedJob>,
    /// Running jobs in launch order.
    pub running: Vec<RunningJob>,
}

impl SchedView {
    fn free_count(&self) -> u32 {
        self.free.iter().filter(|f| **f).count() as u32
    }

    /// Lowest-numbered `n` free nodes.
    fn first_fit(&self, n: u32) -> Option<Vec<u32>> {
        let picked: Vec<u32> = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, f)| **f)
            .map(|(i, _)| i as u32)
            .take(n as usize)
            .collect();
        (picked.len() == n as usize).then_some(picked)
    }

    /// `n` free nodes with the least accumulated busy time (ties broken
    /// by node id — canonical).
    fn coolest_fit(&self, n: u32) -> Option<Vec<u32>> {
        let mut frees: Vec<u32> = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, f)| **f)
            .map(|(i, _)| i as u32)
            .collect();
        if frees.len() < n as usize {
            return None;
        }
        frees.sort_by_key(|&i| (self.busy_time[i as usize], i));
        frees.truncate(n as usize);
        frees.sort_unstable();
        Some(frees)
    }

    /// Earliest instant at which `need` nodes are simultaneously free,
    /// trusting the running jobs' estimates (EASY shadow time). Also
    /// returns the node surplus available *before* that instant.
    fn shadow(&self, need: u32) -> (SimTime, u32) {
        let mut avail = self.free_count();
        if avail >= need {
            return (self.now, avail - need);
        }
        let mut ends: Vec<&RunningJob> = self.running.iter().collect();
        ends.sort_by_key(|r| (r.est_end, r.id));
        for r in &ends {
            avail += r.width;
            if avail >= need {
                return (r.est_end.max(self.now), avail - need);
            }
        }
        // Queue head wider than the whole machine is rejected by
        // validation, so this is unreachable with a validated spec.
        (SimTime::ZERO + SimDur::from_nanos(u64::MAX), 0)
    }
}

/// One launch decision: start queue entry `job` on `nodes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Launch {
    /// Engine job id.
    pub job: u32,
    /// Width granted at launch.
    pub width: u32,
    /// Physical nodes granted (sorted ascending).
    pub nodes: Vec<u32>,
}

fn clamp_width(want: u32, min: u32, max: u32) -> u32 {
    want.clamp(min, max)
}

/// Fair share for `active` jobs on a `total`-node machine (at least 1).
fn fair_share(total: u32, active: u32) -> u32 {
    total.checked_div(active).map_or(total, |w| w.max(1))
}

impl PolicyKind {
    /// Launch decisions for one scheduling pass. The returned launches
    /// are disjoint and already accounted against `view`'s free set.
    pub fn place(self, view: &SchedView) -> Vec<Launch> {
        let mut free = view.free.clone();
        let mut launches = Vec::new();
        let claim = |nodes: &[u32], free: &mut Vec<bool>| {
            for &n in nodes {
                debug_assert!(free[n as usize]);
                free[n as usize] = false;
            }
        };
        match self {
            PolicyKind::FcfsFirstFit => {
                for q in &view.queue {
                    let v = SchedView {
                        free: free.clone(),
                        busy_time: view.busy_time.clone(),
                        queue: Vec::new(),
                        running: Vec::new(),
                        now: view.now,
                    };
                    match v.first_fit(q.nodes) {
                        Some(nodes) => {
                            claim(&nodes, &mut free);
                            launches.push(Launch {
                                job: q.id,
                                width: q.nodes,
                                nodes,
                            });
                        }
                        None => break, // head-of-line blocking
                    }
                }
            }
            PolicyKind::Backfill => {
                let mut queue = view.queue.iter();
                // Serve the head(s) strictly FCFS while they fit.
                let mut blocked: Option<&QueuedJob> = None;
                for q in queue.by_ref() {
                    let v = SchedView {
                        free: free.clone(),
                        busy_time: view.busy_time.clone(),
                        queue: Vec::new(),
                        running: Vec::new(),
                        now: view.now,
                    };
                    match v.first_fit(q.nodes) {
                        Some(nodes) => {
                            claim(&nodes, &mut free);
                            launches.push(Launch {
                                job: q.id,
                                width: q.nodes,
                                nodes,
                            });
                        }
                        None => {
                            blocked = Some(q);
                            break;
                        }
                    }
                }
                // EASY: reserve the head's shadow; backfill later jobs
                // that either fit in the surplus or finish before it.
                if let Some(head) = blocked {
                    let shadow_view = SchedView {
                        free: free.clone(),
                        busy_time: view.busy_time.clone(),
                        queue: Vec::new(),
                        running: view.running.clone(),
                        now: view.now,
                    };
                    let (shadow, spare) = shadow_view.shadow(head.nodes);
                    for q in queue {
                        let fits_now = SchedView {
                            free: free.clone(),
                            busy_time: view.busy_time.clone(),
                            queue: Vec::new(),
                            running: Vec::new(),
                            now: view.now,
                        }
                        .first_fit(q.nodes);
                        let Some(nodes) = fits_now else { continue };
                        let ends_in_time = view.now + q.estimate <= shadow;
                        let within_spare = q.nodes <= spare;
                        if ends_in_time || within_spare {
                            claim(&nodes, &mut free);
                            launches.push(Launch {
                                job: q.id,
                                width: q.nodes,
                                nodes,
                            });
                        }
                    }
                }
            }
            PolicyKind::PackByPressure | PolicyKind::EquiPartition => {
                let total = view.free.len() as u32;
                // Active = running + still-queued jobs ahead of this one.
                let active = (view.running.len() + view.queue.len()) as u32;
                for q in &view.queue {
                    let width = if self == PolicyKind::EquiPartition {
                        clamp_width(fair_share(total, active), q.min_nodes, q.max_nodes)
                    } else {
                        q.nodes
                    };
                    let v = SchedView {
                        free: free.clone(),
                        busy_time: view.busy_time.clone(),
                        queue: Vec::new(),
                        running: Vec::new(),
                        now: view.now,
                    };
                    if let Some(nodes) = v.coolest_fit(width) {
                        claim(&nodes, &mut free);
                        launches.push(Launch {
                            job: q.id,
                            width,
                            nodes,
                        });
                    }
                    // greedy fit: a blocked job does not block the rest
                }
            }
        }
        launches
    }

    /// Target width for a malleable `running` job at a chunk boundary.
    /// `queued_demand` is the number of jobs still waiting.
    pub fn resize(self, view: &SchedView, job: &RunningJob, min: u32, max: u32) -> u32 {
        match self {
            // Only equipartition reshapes running jobs; the others keep
            // the launch width for the job's whole lifetime.
            PolicyKind::FcfsFirstFit | PolicyKind::Backfill | PolicyKind::PackByPressure => {
                job.width
            }
            PolicyKind::EquiPartition => {
                let total = view.free.len() as u32;
                let active = (view.running.len() + view.queue.len()).max(1) as u32;
                clamp_width(fair_share(total, active), min, max)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u32, nodes: u32, est_ms: u64) -> QueuedJob {
        QueuedJob {
            id,
            nodes,
            min_nodes: nodes,
            max_nodes: nodes,
            estimate: SimDur::from_millis(est_ms),
        }
    }

    fn view(free: &[bool]) -> SchedView {
        SchedView {
            now: SimTime::ZERO + SimDur::from_millis(1),
            free: free.to_vec(),
            busy_time: vec![SimDur::ZERO; free.len()],
            queue: Vec::new(),
            running: Vec::new(),
        }
    }

    #[test]
    fn policy_names_roundtrip() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::parse(p.name()).unwrap(), p);
        }
        let err = PolicyKind::parse("sjf").unwrap_err();
        assert!(err.contains("\"sjf\"") && err.contains("fcfs"), "{err}");
    }

    #[test]
    fn fcfs_blocks_behind_wide_head() {
        let mut v = view(&[true, true, false, false]);
        v.queue = vec![q(0, 3, 10), q(1, 1, 10)];
        let launches = PolicyKind::FcfsFirstFit.place(&v);
        assert!(
            launches.is_empty(),
            "head needs 3 of 2 free nodes; FCFS must block everyone: {launches:?}"
        );
    }

    #[test]
    fn fcfs_takes_lowest_free_nodes() {
        let mut v = view(&[false, true, true, true]);
        v.queue = vec![q(0, 2, 10)];
        let launches = PolicyKind::FcfsFirstFit.place(&v);
        assert_eq!(launches.len(), 1);
        assert_eq!(launches[0].nodes, vec![1, 2]);
    }

    #[test]
    fn backfill_jumps_short_job_past_blocked_head() {
        // 2 free nodes; head wants 4, freed at t=20ms by the running job.
        // A 1-node job estimating 5ms ends before the shadow — backfill it.
        let mut v = view(&[true, true, false, false]);
        v.queue = vec![q(0, 4, 10), q(1, 1, 5)];
        v.running = vec![RunningJob {
            id: 9,
            width: 2,
            est_end: SimTime::ZERO + SimDur::from_millis(20),
            malleable: false,
        }];
        let launches = PolicyKind::Backfill.place(&v);
        assert_eq!(launches.len(), 1, "{launches:?}");
        assert_eq!(launches[0].job, 1);
    }

    #[test]
    fn backfill_respects_shadow_reservation() {
        // Same as above but the backfill candidate estimates 50ms: it
        // would overrun the head's shadow and is wider than the spare
        // (shadow leaves 0 spare) — must NOT start.
        let mut v = view(&[true, true, false, false]);
        v.queue = vec![q(0, 4, 10), q(1, 1, 50)];
        v.running = vec![RunningJob {
            id: 9,
            width: 2,
            est_end: SimTime::ZERO + SimDur::from_millis(20),
            malleable: false,
        }];
        let launches = PolicyKind::Backfill.place(&v);
        assert!(launches.is_empty(), "{launches:?}");
    }

    #[test]
    fn pack_prefers_cool_nodes_and_skips_blocked() {
        let mut v = view(&[true, true, true, false]);
        v.busy_time = vec![
            SimDur::from_millis(9),
            SimDur::from_millis(1),
            SimDur::from_millis(5),
            SimDur::ZERO,
        ];
        v.queue = vec![q(0, 2, 10), q(1, 4, 10), q(2, 1, 10)];
        let launches = PolicyKind::PackByPressure.place(&v);
        // Job 0 takes the two coolest free nodes (1, 2); job 1 cannot fit
        // and is skipped; job 2 takes the remaining node 0.
        assert_eq!(launches.len(), 2, "{launches:?}");
        assert_eq!(launches[0].nodes, vec![1, 2]);
        assert_eq!(launches[1].job, 2);
        assert_eq!(launches[1].nodes, vec![0]);
    }

    #[test]
    fn equipartition_launches_at_fair_share() {
        // 8 nodes, 2 active jobs -> fair share 4; the malleable job asked
        // for 2 but accepts [1, 8], so it launches at 4.
        let mut v = view(&[true; 8]);
        v.queue = vec![QueuedJob {
            id: 0,
            nodes: 2,
            min_nodes: 1,
            max_nodes: 8,
            estimate: SimDur::from_millis(10),
        }];
        v.running = vec![RunningJob {
            id: 9,
            width: 0, // width irrelevant here
            est_end: SimTime::ZERO,
            malleable: true,
        }];
        let launches = PolicyKind::EquiPartition.place(&v);
        assert_eq!(launches.len(), 1);
        assert_eq!(launches[0].width, 4);
    }

    #[test]
    fn equipartition_resize_tracks_active_jobs() {
        let running = RunningJob {
            id: 0,
            width: 2,
            est_end: SimTime::ZERO,
            malleable: true,
        };
        // Alone on 8 nodes: grow to max.
        let mut v = view(&[true; 8]);
        v.running = vec![running.clone()];
        assert_eq!(PolicyKind::EquiPartition.resize(&v, &running, 1, 6), 6);
        // Three other active jobs: shrink toward 8/4 = 2.
        v.queue = vec![q(1, 2, 10), q(2, 2, 10), q(3, 2, 10)];
        assert_eq!(PolicyKind::EquiPartition.resize(&v, &running, 1, 6), 2);
        // Rigid policies never resize.
        assert_eq!(PolicyKind::FcfsFirstFit.resize(&v, &running, 1, 6), 2);
    }
}
