//! The batch-scheduling engine.
//!
//! [`JobsEngine`] owns one [`ClusterSim`] and drives it in *segments*:
//! the simulation runs normally between decision instants, and at each
//! instant — a job arrival or a scheduler-quantum boundary — the engine
//! acts while every shard is quiescent at a window barrier. All batch
//! decisions (arrival intake, completion detection, placement, malleable
//! resize) therefore see identical state at any `--sim-threads`, and the
//! injected actions (thread spawns, daemon shutdown messages) land at
//! the barrier time in a canonical order, so the whole multi-job history
//! is bit-identical at any thread count.
//!
//! Completion detection is *polled*, like a real batch daemon: a chunk
//! whose ranks exit mid-quantum is noticed at the next decision instant,
//! never mid-window. That quantization is part of the model (LoadLeveler
//! does not trap job exit either) and is what keeps detection
//! deterministic.
//!
//! A *malleable* job is a sequence of chunks. Between chunks the engine
//! consults the policy for a new width, releases the old node set, and
//! re-installs the next chunk on the granted set with freshly numbered
//! ranks — the checkpoint-style "capture at a barrier, restart wider or
//! narrower" reconfiguration the paper's gang-scheduling discussion
//! anticipates.

use crate::policy::{Launch, PolicyKind, QueuedJob, RunningJob, SchedView};
use crate::spec::{JobRequest, MultiJobSpec};
use crate::workload::ChunkWorkload;
use pa_blame::{Categories, JobBlame};
use pa_cluster::{ClusterSim, ClusterSpec, FabricModel};
use pa_core::{CoschedDaemon, CoschedParams, SchedOptions};
use pa_kernel::{Endpoint, Message, Prio, ThreadSpec, ThreadState};
use pa_mpi::{fresh_layout, install_job_on, CtrlOp, Job, JobSpec, MpiConfig};
use pa_noise::NoiseProfile;
use pa_obs::{MetricsRegistry, SpanTimeline};
use pa_simkit::{SeedSpace, SimDur, SimTime};
use pa_trace::ThreadClass;
use serde::value::Value;
use serde::Serialize;

/// Queue-wait histogram bucket edges, microseconds.
const QUEUE_WAIT_EDGES_US: [u64; 8] = [100, 500, 1_000, 5_000, 10_000, 50_000, 100_000, 1_000_000];

/// Span-timeline process id used for the batch layer.
const BATCH_PID: u32 = 1;

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Not yet arrived.
    Pending,
    /// Arrived, waiting for nodes (fresh or between chunks).
    Queued,
    /// A chunk is installed and running.
    Running,
    /// All chunks finished.
    Done,
}

/// Engine-side record of one job.
struct JobRec {
    req: JobRequest,
    submit: SimTime,
    phase: Phase,
    first_start: Option<SimTime>,
    finished: Option<SimTime>,
    chunks_done: u32,
    /// Width granted per launched chunk.
    widths: Vec<u32>,
    grows: u32,
    shrinks: u32,
}

impl JobRec {
    /// Width the next launch should ask for (last granted, or the
    /// requested width before the first launch).
    fn want_width(&self) -> u32 {
        self.widths.last().copied().unwrap_or(self.req.nodes)
    }
}

/// One installed chunk.
struct Active {
    job: usize,
    nodes: Vec<u32>,
    handles: Job,
    cosched: Vec<Endpoint>,
    started: SimTime,
}

/// Per-job statistics of a finished run.
#[derive(Debug, Clone, Serialize)]
pub struct JobStats {
    /// Submission index.
    pub id: u32,
    /// Job name from the spec.
    pub name: String,
    /// Submission time, µs.
    pub submit_us: u64,
    /// First launch time, µs (None: never started).
    pub start_us: Option<u64>,
    /// Completion time, µs (None: unfinished at the horizon).
    pub end_us: Option<u64>,
    /// Width granted per chunk.
    pub widths: Vec<u32>,
    /// Width increases across chunk boundaries.
    pub grows: u32,
    /// Width decreases across chunk boundaries.
    pub shrinks: u32,
}

/// Everything a multi-job run produces.
pub struct JobsOutcome {
    /// Policy that made the decisions.
    pub policy: PolicyKind,
    /// Per-job statistics, submission order.
    pub jobs: Vec<JobStats>,
    /// Time from t=0 to the last completion (the horizon if unfinished).
    pub makespan: SimDur,
    /// Occupied node-time over `nodes × makespan`.
    pub utilization: f64,
    /// Sum of all jobs' queue waits (submission to first launch).
    pub total_queue_wait: SimDur,
    /// Chunk-boundary width changes across all jobs.
    pub reconfigurations: u32,
    /// Did every job finish before the horizon?
    pub completed: bool,
    /// Events the simulator processed.
    pub events: u64,
    /// `jobs.*` metrics (canonical: identical at any `--sim-threads`).
    pub metrics: MetricsRegistry,
    /// Per-job spans and instants for Perfetto.
    pub spans: SpanTimeline,
    /// Per-job wall-time blame (submission order): the six-way category
    /// decomposition summed over every rank thread the job ever ran,
    /// chunks included, plus its queue wait. Canonical.
    pub blame: Vec<JobBlame>,
}

impl JobsOutcome {
    /// Canonical JSON manifest: equal specs must yield byte-identical
    /// manifests at any `--sim-threads` and `--jobs` setting.
    pub fn manifest_json(&self) -> String {
        let v = Value::Map(vec![
            ("policy".into(), self.policy.name().to_value()),
            ("completed".into(), self.completed.to_value()),
            ("makespan_us".into(), self.makespan.micros().to_value()),
            (
                "utilization_ppm".into(),
                ((self.utilization * 1e6).round() as u64).to_value(),
            ),
            (
                "total_queue_wait_us".into(),
                self.total_queue_wait.micros().to_value(),
            ),
            ("reconfigurations".into(), self.reconfigurations.to_value()),
            ("events".into(), self.events.to_value()),
            ("jobs".into(), self.jobs.to_value()),
        ]);
        let mut s = v.to_json_string_pretty();
        s.push('\n');
        s
    }

    /// Mean queue wait per job, µs.
    pub fn mean_queue_wait_us(&self) -> f64 {
        if self.jobs.is_empty() {
            return 0.0;
        }
        self.total_queue_wait.as_micros_f64() / self.jobs.len() as f64
    }
}

/// The multi-job driver. Build with [`JobsEngine::new`], adjust with the
/// `with_*` methods, then [`JobsEngine::run`].
pub struct JobsEngine {
    spec: MultiJobSpec,
    policy: PolicyKind,
    seed: u64,
    sim_threads: usize,
    link_bandwidth: Option<f64>,
    noise: NoiseProfile,
    horizon: SimDur,
}

impl JobsEngine {
    /// New engine over `spec` deciding with `policy`.
    pub fn new(spec: MultiJobSpec, policy: PolicyKind) -> JobsEngine {
        JobsEngine {
            spec,
            policy,
            seed: 42,
            sim_threads: 1,
            link_bandwidth: None,
            noise: NoiseProfile::silent(),
            horizon: SimDur::from_secs(10),
        }
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the engine worker thread count (results are identical at any
    /// setting; this only trades wall-clock time).
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads.max(1);
        self
    }

    /// Set (or disable, with `None`) the per-node link capacity in bytes
    /// per second.
    pub fn with_link_bandwidth(mut self, bytes_per_sec: Option<f64>) -> Self {
        self.link_bandwidth = bytes_per_sec;
        self
    }

    /// Install an interference profile on every node.
    pub fn with_noise(mut self, noise: NoiseProfile) -> Self {
        self.noise = noise;
        self
    }

    /// Set the give-up horizon.
    pub fn with_horizon(mut self, horizon: SimDur) -> Self {
        self.horizon = horizon;
        self
    }

    /// Gang parameters for job `id`: the spec's window period, with
    /// co-resident-job stagger mapping each job onto one of four phase
    /// slots when enabled.
    fn gang_params(&self, id: u32) -> CoschedParams {
        let period = self.spec.gang_period;
        let phase = if self.spec.gang_stagger {
            period.mul_f64(f64::from(id % 4) * 0.25)
        } else {
            SimDur::ZERO
        };
        CoschedParams {
            period,
            phase,
            ..CoschedParams::benchmark()
        }
    }

    /// Run to completion (or the horizon).
    ///
    /// # Panics
    /// Panics when the spec fails validation; validate first to surface
    /// the named-value error without a panic.
    pub fn run(self) -> JobsOutcome {
        self.spec
            .validate()
            .unwrap_or_else(|e| panic!("invalid MultiJobSpec: {e}"));
        let spec = &self.spec;
        let seeds = SeedSpace::new(self.seed);
        let cspec = ClusterSpec {
            nodes: spec.nodes,
            cpus_per_node: u8::try_from(spec.cpus_per_node)
                .unwrap_or_else(|_| panic!("cpus_per_node = {} exceeds 255", spec.cpus_per_node)),
            options: if spec.gang {
                SchedOptions::prototype()
            } else {
                SchedOptions::vanilla()
            },
            skew_max: SimDur::from_millis(10),
            trace_capacity: 1 << 14,
            fabric: FabricModel {
                link_bandwidth: self.link_bandwidth,
                ..FabricModel::default()
            },
        };
        let mut sim = ClusterSim::build(&cspec, &seeds);
        sim.set_sim_threads(self.sim_threads);
        if spec.gang {
            // The co-scheduler startup procedure (§4): sync node clocks to
            // the switch clock so window grids line up across a job.
            sim.sync_clocks(&seeds, SimDur::from_micros(20));
        }
        for node in 0..spec.nodes {
            self.noise.install(sim.kernel_mut(node), &seeds, node);
        }
        sim.boot();

        let mut metrics = MetricsRegistry::new();
        metrics.declare_histogram("jobs.queue_wait_us", &QUEUE_WAIT_EDGES_US);
        let mut spans = SpanTimeline::new();
        spans.name_process(BATCH_PID, format!("batch[{}]", self.policy.name()));

        let mut recs: Vec<JobRec> = spec
            .jobs
            .iter()
            .enumerate()
            .map(|(id, req)| {
                spans.name_track(BATCH_PID, id as u32, req.name.clone());
                JobRec {
                    req: req.clone(),
                    submit: SimTime::ZERO + req.submit_at,
                    phase: Phase::Pending,
                    first_start: None,
                    finished: None,
                    chunks_done: 0,
                    widths: Vec::new(),
                    grows: 0,
                    shrinks: 0,
                }
            })
            .collect();
        let mut active: Vec<Active> = Vec::new();
        // Per-job blame accumulator: (categories, summed rank wall ns,
        // rank-thread count), folded chunk by chunk as chunks retire —
        // the handles are dropped then, so the accounts must be read at
        // the same decision instant the completion is detected.
        let mut job_acct: Vec<(Categories, u64, u32)> =
            vec![(Categories::default(), 0, 0); recs.len()];
        let mut node_free = vec![true; spec.nodes as usize];
        let mut node_busy = vec![SimDur::ZERO; spec.nodes as usize];
        let mut next_arrival = 0usize; // index into recs, submission order
        let horizon_t = SimTime::ZERO + self.horizon;

        // First decision instant: the earliest submission.
        let mut t = recs[0].submit.min(horizon_t);
        sim.run_until(t);

        let completed = loop {
            // 1. Arrivals (submission order == canonical id order).
            while next_arrival < recs.len() && recs[next_arrival].submit <= t {
                let rec = &mut recs[next_arrival];
                rec.phase = Phase::Queued;
                metrics.inc("jobs.submitted", 1);
                spans.instant(BATCH_PID, next_arrival as u32, "submit", rec.submit);
                next_arrival += 1;
            }

            // 2. Completions, in job-id order. A chunk is complete when
            // every rank thread has exited; detection happens here, at
            // the decision instant — the batch daemon's poll.
            let mut still = Vec::with_capacity(active.len());
            for a in active.drain(..) {
                let done = a
                    .handles
                    .rank_tids
                    .iter()
                    .all(|ep| sim.kernel(ep.node).thread_state(ep.tid) == ThreadState::Exited);
                if !done {
                    still.push(a);
                    continue;
                }
                fold_chunk_blame(&sim, &a.handles, t, &mut job_acct[a.job]);
                for &n in &a.nodes {
                    node_busy[n as usize] += t.since(a.started);
                    node_free[n as usize] = true;
                }
                // Retire the chunk's gang daemons: base priorities back,
                // then exit — within one window period.
                for &ep in &a.cosched {
                    sim.inject_message(Message {
                        src: ep,
                        dst: ep,
                        tag: CtrlOp::Shutdown.tag(),
                        bytes: 16,
                        sent_at: SimTime::ZERO,
                        payload: 0,
                    });
                }
                spans.end(BATCH_PID, a.job as u32, t);
                let rec = &mut recs[a.job];
                rec.chunks_done += 1;
                if rec.chunks_done == rec.req.chunks {
                    rec.phase = Phase::Done;
                    rec.finished = Some(t);
                    metrics.inc("jobs.completed", 1);
                    spans.instant(BATCH_PID, a.job as u32, "done", t);
                } else {
                    // Between chunks: back into the queue; the placement
                    // pass below may relaunch it at a different width.
                    rec.phase = Phase::Queued;
                }
            }
            active = still;

            // 3. Placement, from a canonically ordered view.
            let mut queue_ids: Vec<usize> = recs
                .iter()
                .enumerate()
                .filter(|(_, r)| r.phase == Phase::Queued)
                .map(|(i, _)| i)
                .collect();
            queue_ids.sort_by(|&a, &b| {
                let (ra, rb) = (&recs[a], &recs[b]);
                rb.req
                    .priority
                    .cmp(&ra.req.priority)
                    .then(ra.submit.cmp(&rb.submit))
                    .then(a.cmp(&b))
            });
            if !queue_ids.is_empty() {
                let view = SchedView {
                    now: t,
                    free: node_free.clone(),
                    busy_time: node_busy.clone(),
                    queue: queue_ids
                        .iter()
                        .map(|&i| QueuedJob {
                            id: i as u32,
                            nodes: recs[i].want_width(),
                            min_nodes: recs[i].req.min_nodes,
                            max_nodes: recs[i].req.max_nodes,
                            estimate: recs[i].req.estimate,
                        })
                        .collect(),
                    running: active
                        .iter()
                        .map(|a| RunningJob {
                            id: a.job as u32,
                            width: a.nodes.len() as u32,
                            est_end: recs[a.job].first_start.unwrap_or(t)
                                + recs[a.job].req.estimate,
                            malleable: recs[a.job].req.is_malleable(),
                        })
                        .collect(),
                };
                for launch in self.policy.place(&view) {
                    let a = self.install_chunk(&mut sim, &seeds, &mut recs, &launch, t);
                    for &n in &a.nodes {
                        node_free[n as usize] = false;
                    }
                    let rec = &mut recs[launch.job as usize];
                    if rec.first_start.is_none() {
                        rec.first_start = Some(t);
                        let wait = t.since(rec.submit);
                        metrics.observe("jobs.queue_wait_us", wait.micros());
                    }
                    if let Some(&prev) = rec.widths.last() {
                        if launch.width != prev {
                            metrics.inc("jobs.reconfigurations", 1);
                            if launch.width > prev {
                                rec.grows += 1;
                                metrics.inc("jobs.grows", 1);
                            } else {
                                rec.shrinks += 1;
                                metrics.inc("jobs.shrinks", 1);
                            }
                        }
                    }
                    rec.widths.push(launch.width);
                    rec.phase = Phase::Running;
                    metrics.inc("jobs.launched_chunks", 1);
                    spans.begin(
                        BATCH_PID,
                        launch.job,
                        format!("chunk{}[{}n]", rec.chunks_done, launch.width),
                        t,
                    );
                    active.push(a);
                }
                active.sort_by_key(|a| a.job);
            }

            // 4. Next decision instant.
            if recs.iter().all(|r| r.phase == Phase::Done) {
                break true;
            }
            let mut next: Option<SimTime> = None;
            if !active.is_empty() || !queue_ids.is_empty() {
                next = Some(t + spec.quantum);
            }
            if next_arrival < recs.len() {
                let na = recs[next_arrival].submit;
                next = Some(next.map_or(na, |n| n.min(na)));
            }
            let Some(next) = next else { break true };
            if next > horizon_t {
                break false;
            }
            t = next;
            sim.run_until(t);
        };

        // Account partially-run chunks (horizon overrun) into busy time
        // and blame (their accounts close at the final decision instant).
        for a in &active {
            fold_chunk_blame(&sim, &a.handles, t, &mut job_acct[a.job]);
            for &n in &a.nodes {
                node_busy[n as usize] += t.since(a.started);
            }
        }

        let makespan = if completed {
            recs.iter()
                .filter_map(|r| r.finished)
                .max()
                .map(|end| end.since(SimTime::ZERO))
                .unwrap_or(SimDur::ZERO)
        } else {
            self.horizon
        };
        let busy_ns: u128 = node_busy.iter().map(|d| u128::from(d.nanos())).sum();
        let cap_ns = u128::from(spec.nodes) * u128::from(makespan.nanos());
        let utilization = if cap_ns == 0 {
            0.0
        } else {
            busy_ns as f64 / cap_ns as f64
        };
        let total_queue_wait = recs
            .iter()
            .filter_map(|r| r.first_start.map(|s| s.since(r.submit)))
            .fold(SimDur::ZERO, |acc, w| acc + w);
        let reconfigurations: u32 = recs.iter().map(|r| r.grows + r.shrinks).sum();

        metrics.set_gauge("jobs.makespan_us", makespan.micros() as i64);
        metrics.set_gauge("jobs.utilization_ppm", (utilization * 1e6).round() as i64);
        metrics.set_gauge(
            "jobs.unfinished",
            recs.iter().filter(|r| r.phase != Phase::Done).count() as i64,
        );

        let jobs = recs
            .iter()
            .enumerate()
            .map(|(id, r)| JobStats {
                id: id as u32,
                name: r.req.name.clone(),
                submit_us: r.submit.since(SimTime::ZERO).micros(),
                start_us: r.first_start.map(|s| s.since(SimTime::ZERO).micros()),
                end_us: r.finished.map(|e| e.since(SimTime::ZERO).micros()),
                widths: r.widths.clone(),
                grows: r.grows,
                shrinks: r.shrinks,
            })
            .collect();
        let blame = recs
            .iter()
            .enumerate()
            .map(|(id, r)| JobBlame {
                job: id as u32,
                name: r.req.name.clone(),
                queue_wait_ns: r.first_start.map_or(0, |s| s.since(r.submit).nanos()),
                nranks: job_acct[id].2,
                wall_ns: job_acct[id].1,
                cats: job_acct[id].0,
            })
            .collect();
        JobsOutcome {
            policy: self.policy,
            jobs,
            makespan,
            utilization,
            total_queue_wait,
            reconfigurations,
            completed,
            events: sim.events_processed(),
            metrics,
            spans,
            blame,
        }
    }

    /// Install one chunk on its granted node set at barrier time `t`:
    /// per-node gang daemons first (so ranks can register), then the rank
    /// threads. All spawns land at `t` in canonical (node, cpu) order.
    fn install_chunk(
        &self,
        sim: &mut ClusterSim,
        seeds: &SeedSpace,
        recs: &mut [JobRec],
        launch: &Launch,
        t: SimTime,
    ) -> Active {
        let id = launch.job;
        let rec = &recs[id as usize];
        let chunk = rec.chunks_done;
        let req = &rec.req;
        let layout = fresh_layout();
        let mut cosched = Vec::new();
        if self.spec.gang {
            let params = self.gang_params(id);
            for &node in &launch.nodes {
                let tid = sim.spawn_thread(
                    node,
                    ThreadSpec::new(
                        format!("j{id}.c{chunk}.cosched"),
                        ThreadClass::Cosched,
                        Prio::COSCHED,
                    ),
                    Box::new(CoschedDaemon::new(params, req.tasks_per_node)),
                );
                let ep = Endpoint { node, tid };
                layout.write().unwrap().set_cosched(node, ep);
                cosched.push(ep);
            }
        }
        let job_spec = JobSpec {
            tasks_per_node: req.tasks_per_node,
            mpi: MpiConfig::default(),
            // No MPI progress timers: their threads never exit, which
            // would defeat exit-based completion detection. A documented
            // idealization of the batch layer.
            progress: None,
            rank_prio: Prio::USER,
        };
        let nranks = launch.width * req.tasks_per_node;
        let chunk_key = (u64::from(id) << 20) | u64::from(chunk);
        let (iters, work, bytes, jitter) = (
            req.iters_per_chunk,
            req.work_per_iter,
            req.bytes,
            req.jitter,
        );
        let handles = install_job_on(
            sim,
            layout,
            &job_spec,
            seeds,
            &launch.nodes,
            &format!("j{id}.c{chunk}."),
            &mut |rank| {
                Box::new(ChunkWorkload::new(
                    iters,
                    work,
                    nranks,
                    bytes,
                    jitter,
                    seeds.stream_at("jobs/rank", chunk_key, u64::from(rank)),
                ))
            },
        );
        Active {
            job: id as usize,
            nodes: launch.nodes.clone(),
            handles,
            cosched,
            started: t,
        }
    }
}

/// Fold one chunk's rank-thread accounts into a job's blame
/// accumulator. `end` closes any interval still open (a horizon cut);
/// for retired chunks every thread has exited and `end` is inert. The
/// wall identity per thread is exact, so the folded categories sum to
/// the folded wall to the nanosecond.
fn fold_chunk_blame(
    sim: &ClusterSim,
    handles: &Job,
    end: SimTime,
    acc: &mut (Categories, u64, u32),
) {
    for ep in &handles.rank_tids {
        let kernel = sim.kernel(ep.node);
        let a = kernel.thread_account(ep.tid, end);
        let compute_ns = kernel
            .thread_program_metrics(ep.tid)
            .iter()
            .find(|(name, _)| *name == "compute_ns")
            .map_or(0, |&(_, v)| v);
        acc.0.add(&pa_core::categories_of(&a, compute_ns));
        acc.1 += a.wall.nanos();
        acc.2 += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::JobRequest;

    fn small_spec(jobs: Vec<JobRequest>) -> MultiJobSpec {
        MultiJobSpec {
            nodes: 4,
            cpus_per_node: 2,
            quantum: SimDur::from_millis(2),
            gang_period: SimDur::from_millis(1),
            jobs,
            ..MultiJobSpec::default()
        }
    }

    fn quick_job(name: &str, at_ms: u64, nodes: u32) -> JobRequest {
        JobRequest {
            iters_per_chunk: 5,
            work_per_iter: SimDur::from_micros(200),
            estimate: SimDur::from_millis(5),
            ..JobRequest::rigid(name, SimDur::from_millis(at_ms), nodes)
        }
    }

    #[test]
    fn single_job_runs_to_completion() {
        let spec = small_spec(vec![quick_job("solo", 0, 2)]);
        let out = JobsEngine::new(spec, PolicyKind::FcfsFirstFit).run();
        assert!(out.completed);
        assert_eq!(out.jobs[0].widths, vec![2]);
        assert_eq!(out.metrics.counter("jobs.submitted"), 1);
        assert_eq!(out.metrics.counter("jobs.completed"), 1);
        assert!(out.makespan > SimDur::ZERO);
        assert!(out.utilization > 0.0 && out.utilization <= 1.0);
        // Blame: one job, every rank thread folded, exact category sum.
        assert_eq!(out.blame.len(), 1);
        let b = &out.blame[0];
        assert_eq!(b.nranks, 2 * out.jobs[0].widths[0]);
        assert_eq!(b.cats.total_ns(), b.wall_ns as i64, "exact sum per job");
        assert!(b.cats.compute_ns > 0, "chunk compute must be charged");
    }

    #[test]
    fn blame_covers_queued_and_multi_chunk_jobs() {
        let spec = small_spec(vec![quick_job("a", 0, 4), quick_job("b", 0, 4)]);
        let out = JobsEngine::new(spec, PolicyKind::FcfsFirstFit).run();
        assert!(out.completed);
        let b = &out.blame[1];
        assert!(b.queue_wait_ns > 0, "queued job must show its wait");
        for jb in &out.blame {
            assert_eq!(jb.cats.total_ns(), jb.wall_ns as i64, "job {}", jb.job);
            assert!(jb.wall_ns > 0);
        }
    }

    #[test]
    fn fcfs_queues_second_job_when_machine_full() {
        let spec = small_spec(vec![quick_job("a", 0, 4), quick_job("b", 0, 4)]);
        let out = JobsEngine::new(spec, PolicyKind::FcfsFirstFit).run();
        assert!(out.completed);
        let (a, b) = (&out.jobs[0], &out.jobs[1]);
        assert!(
            b.start_us.unwrap() >= a.end_us.unwrap(),
            "b must wait for a: {out:?}",
            out = (a.end_us, b.start_us)
        );
        assert!(out.total_queue_wait > SimDur::ZERO);
    }

    #[test]
    fn equipartition_grows_and_shrinks_malleable_job() {
        // One malleable job alone at first (grows toward max), then two
        // rigid arrivals force its fair share down (shrinks).
        let malleable = JobRequest {
            iters_per_chunk: 4,
            work_per_iter: SimDur::from_micros(300),
            chunks: 6,
            estimate: SimDur::from_millis(10),
            ..JobRequest::malleable("stretch", SimDur::ZERO, 2, 1, 4, 6)
        };
        let spec = small_spec(vec![
            malleable,
            quick_job("r1", 3, 1),
            quick_job("r2", 3, 1),
        ]);
        let out = JobsEngine::new(spec, PolicyKind::EquiPartition).run();
        assert!(out.completed, "jobs: {:?}", out.jobs);
        let m = &out.jobs[0];
        assert!(
            m.grows > 0 && m.shrinks > 0,
            "expected both grow and shrink, widths = {:?}",
            m.widths
        );
        assert_eq!(out.reconfigurations, m.grows + m.shrinks);
        assert_eq!(
            out.metrics.counter("jobs.reconfigurations"),
            u64::from(out.reconfigurations)
        );
    }

    #[test]
    fn manifests_identical_across_sim_threads() {
        let mk = || {
            small_spec(vec![
                quick_job("a", 0, 2),
                JobRequest {
                    iters_per_chunk: 4,
                    chunks: 3,
                    estimate: SimDur::from_millis(8),
                    ..JobRequest::malleable("m", SimDur::from_millis(1), 2, 1, 4, 3)
                },
                quick_job("c", 2, 3),
            ])
        };
        let base = JobsEngine::new(mk(), PolicyKind::EquiPartition).run();
        for threads in [2, 4] {
            let out = JobsEngine::new(mk(), PolicyKind::EquiPartition)
                .with_sim_threads(threads)
                .run();
            assert_eq!(
                base.manifest_json(),
                out.manifest_json(),
                "manifest diverged at {threads} sim-threads"
            );
            assert_eq!(
                base.metrics.snapshot_json(),
                out.metrics.snapshot_json(),
                "metrics diverged at {threads} sim-threads"
            );
            assert_eq!(
                base.spans.to_chrome_trace(),
                out.spans.to_chrome_trace(),
                "spans diverged at {threads} sim-threads"
            );
        }
    }

    #[test]
    fn all_policies_complete_a_mixed_scenario() {
        for policy in PolicyKind::ALL {
            let spec = small_spec(vec![
                quick_job("w1", 0, 2),
                quick_job("w2", 1, 2),
                JobRequest {
                    iters_per_chunk: 4,
                    chunks: 2,
                    estimate: SimDur::from_millis(8),
                    ..JobRequest::malleable("m", SimDur::from_millis(1), 1, 1, 2, 2)
                },
                quick_job("w3", 4, 1),
            ]);
            let out = JobsEngine::new(spec, policy).run();
            assert!(out.completed, "{} left jobs unfinished", policy.name());
            assert_eq!(out.metrics.counter("jobs.completed"), 4);
            assert!(out.makespan > SimDur::ZERO);
        }
    }

    #[test]
    fn horizon_stops_an_unfinishable_run() {
        let spec = small_spec(vec![JobRequest {
            iters_per_chunk: 10_000,
            work_per_iter: SimDur::from_millis(10),
            ..quick_job("endless", 0, 2)
        }]);
        let out = JobsEngine::new(spec, PolicyKind::FcfsFirstFit)
            .with_horizon(SimDur::from_millis(20))
            .run();
        assert!(!out.completed);
        assert_eq!(out.metrics.gauge("jobs.unfinished"), Some(1));
        assert_eq!(out.makespan, SimDur::from_millis(20));
    }

    #[test]
    fn gangless_run_matches_itself_and_differs_in_no_daemons() {
        let spec = MultiJobSpec {
            gang: false,
            ..small_spec(vec![quick_job("a", 0, 2), quick_job("b", 0, 2)])
        };
        let out = JobsEngine::new(spec, PolicyKind::PackByPressure).run();
        assert!(out.completed);
        assert_eq!(out.metrics.counter("jobs.completed"), 2);
    }
}
