//! Multi-job workload specifications and their validation.
//!
//! A [`MultiJobSpec`] describes one batch-scheduling scenario: the
//! cluster shape, the gang-scheduling setup, the placement policy knobs
//! supplied at run time, and a list of [`JobRequest`]s arriving at
//! simulated instants. Validation follows the `FabricModel` convention:
//! every rejection names the offending value, so a sweep that builds
//! scenarios programmatically fails with an actionable message instead
//! of a deep-engine assert.

use pa_simkit::SimDur;
use serde::{Deserialize, Serialize};

/// One job submitted to the batch queue.
///
/// The work model is bulk-synchronous: a job runs `chunks` *chunks*, each
/// `iters_per_chunk` iterations of (compute, Allreduce). The compute per
/// iteration is `work_per_iter` **in total across ranks** — more ranks
/// mean less compute per rank but the same collective count, the classic
/// malleable speedup model (perfect compute scaling, communication
/// overhead growing with the rank count). Chunk boundaries are the
/// barrier-aligned reconfiguration points where a malleable job may be
/// re-sized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobRequest {
    /// Display name (also the trace name prefix).
    pub name: String,
    /// Arrival time, measured from the start of the simulation.
    pub submit_at: SimDur,
    /// Requested node count (initial width for malleable jobs).
    pub nodes: u32,
    /// Smallest width a malleable job accepts (= `nodes` when rigid).
    pub min_nodes: u32,
    /// Largest width a malleable job can exploit (= `nodes` when rigid).
    pub max_nodes: u32,
    /// Ranks per node.
    pub tasks_per_node: u32,
    /// Number of chunks (reconfiguration points are the boundaries).
    pub chunks: u32,
    /// (compute, Allreduce) iterations per chunk.
    pub iters_per_chunk: u32,
    /// Total compute per iteration, divided evenly across ranks.
    pub work_per_iter: SimDur,
    /// Allreduce payload.
    pub bytes: u32,
    /// Multiplicative jitter on per-rank compute.
    pub jitter: f64,
    /// Queue priority; higher is served first.
    pub priority: u8,
    /// User-supplied runtime estimate (the backfill policy's shadow-time
    /// input, like a LoadLeveler wall-clock limit).
    pub estimate: SimDur,
}

impl JobRequest {
    /// A rigid job: fixed width, sensible small-benchmark defaults.
    pub fn rigid(name: impl Into<String>, submit_at: SimDur, nodes: u32) -> JobRequest {
        JobRequest {
            name: name.into(),
            submit_at,
            nodes,
            min_nodes: nodes,
            max_nodes: nodes,
            tasks_per_node: 2,
            chunks: 1,
            iters_per_chunk: 20,
            work_per_iter: SimDur::from_micros(400),
            bytes: 8,
            jitter: 0.2,
            priority: 50,
            estimate: SimDur::from_millis(50),
        }
    }

    /// A malleable job: width may be re-chosen in `[min, max]` at each
    /// chunk boundary.
    pub fn malleable(
        name: impl Into<String>,
        submit_at: SimDur,
        nodes: u32,
        min: u32,
        max: u32,
        chunks: u32,
    ) -> JobRequest {
        JobRequest {
            min_nodes: min,
            max_nodes: max,
            chunks,
            ..JobRequest::rigid(name, submit_at, nodes)
        }
    }

    /// Can this job's width change at reconfiguration points?
    pub fn is_malleable(&self) -> bool {
        self.min_nodes != self.max_nodes
    }
}

/// A complete multi-job scenario (everything but the placement policy,
/// which is swept at the campaign layer).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiJobSpec {
    /// Cluster nodes.
    pub nodes: u32,
    /// CPUs per node.
    pub cpus_per_node: u32,
    /// Scheduler decision interval: arrivals, completions, and resizes
    /// are acted on at these instants (batch daemons poll; they do not
    /// trap job exit).
    pub quantum: SimDur,
    /// Per-job gang scheduling (co-scheduler daemons on the job's nodes).
    /// `false` models uncontrolled jobs, the paper's baseline.
    pub gang: bool,
    /// Gang window period. The 2003 study cycles priorities every 5 s on
    /// hour-long jobs; batch scenarios run millisecond-scale chunks, so
    /// the window grid scales down with them.
    pub gang_period: SimDur,
    /// Stagger co-resident jobs' gang windows by assigning each launched
    /// job a distinct phase slot instead of aligning every window grid.
    pub gang_stagger: bool,
    /// Jobs in submission order.
    pub jobs: Vec<JobRequest>,
}

impl Default for MultiJobSpec {
    fn default() -> Self {
        MultiJobSpec {
            nodes: 8,
            cpus_per_node: 2,
            quantum: SimDur::from_millis(5),
            gang: true,
            gang_period: SimDur::from_millis(2),
            gang_stagger: false,
            jobs: Vec::new(),
        }
    }
}

impl MultiJobSpec {
    /// Validate, naming the offending value in every rejection.
    pub fn validate(&self) -> Result<(), String> {
        if self.nodes == 0 {
            return Err("cluster nodes must be positive, got 0".into());
        }
        if self.cpus_per_node == 0 {
            return Err("cpus_per_node must be positive, got 0".into());
        }
        if self.quantum.is_zero() {
            return Err("scheduler quantum must be positive, got 0".into());
        }
        if self.gang && self.gang_period.is_zero() {
            return Err("gang_period must be positive when gang scheduling is on, got 0".into());
        }
        if self.jobs.is_empty() {
            return Err("job list is empty: a batch scenario needs at least one job".into());
        }
        let mut last_submit = SimDur::ZERO;
        for (i, j) in self.jobs.iter().enumerate() {
            let who = format!("job #{i} ({:?})", j.name);
            if j.nodes == 0 || j.min_nodes == 0 {
                return Err(format!(
                    "{who}: zero-rank jobs are rejected (nodes = {}, min_nodes = {})",
                    j.nodes, j.min_nodes
                ));
            }
            if j.tasks_per_node == 0 {
                return Err(format!("{who}: tasks_per_node must be positive, got 0"));
            }
            if j.tasks_per_node > self.cpus_per_node {
                return Err(format!(
                    "{who}: tasks_per_node = {} exceeds cpus_per_node = {}",
                    j.tasks_per_node, self.cpus_per_node
                ));
            }
            if !(j.min_nodes <= j.nodes && j.nodes <= j.max_nodes) {
                return Err(format!(
                    "{who}: width bounds violated: min_nodes = {} <= nodes = {} <= max_nodes = {} \
                     does not hold",
                    j.min_nodes, j.nodes, j.max_nodes
                ));
            }
            if j.max_nodes > self.nodes {
                return Err(format!(
                    "{who}: max_nodes = {} ranks over {} nodes exceeds the cluster capacity of \
                     {} nodes",
                    j.max_nodes, j.max_nodes, self.nodes
                ));
            }
            if j.chunks == 0 {
                return Err(format!("{who}: chunks must be positive, got 0"));
            }
            if j.iters_per_chunk == 0 {
                return Err(format!("{who}: iters_per_chunk must be positive, got 0"));
            }
            if !(0.0..=1.0).contains(&j.jitter) {
                return Err(format!("{who}: jitter = {} out of [0, 1]", j.jitter));
            }
            if j.estimate.is_zero() {
                return Err(format!(
                    "{who}: estimate must be positive, got 0 (backfill needs a shadow time)"
                ));
            }
            if j.submit_at < last_submit {
                return Err(format!(
                    "{who}: submission times must be non-decreasing, got {} after {}",
                    j.submit_at, last_submit
                ));
            }
            last_submit = j.submit_at;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_jobs() -> MultiJobSpec {
        MultiJobSpec {
            jobs: vec![
                JobRequest::rigid("a", SimDur::ZERO, 4),
                JobRequest::malleable("b", SimDur::from_millis(1), 2, 1, 6, 3),
            ],
            ..MultiJobSpec::default()
        }
    }

    #[test]
    fn valid_scenario_passes() {
        assert!(two_jobs().validate().is_ok());
    }

    #[test]
    fn zero_rank_job_rejected_by_name() {
        let mut s = two_jobs();
        s.jobs[1].nodes = 0;
        s.jobs[1].min_nodes = 0;
        let err = s.validate().expect_err("zero-rank job must be rejected");
        assert!(err.contains("job #1"), "error must name the job: {err}");
        assert!(err.contains("\"b\""), "error must name the job: {err}");
        assert!(
            err.contains("nodes = 0"),
            "error must name the value: {err}"
        );
    }

    #[test]
    fn over_capacity_job_rejected_by_name() {
        let mut s = two_jobs();
        s.jobs[0].nodes = 9;
        s.jobs[0].min_nodes = 9;
        s.jobs[0].max_nodes = 9;
        let err = s.validate().expect_err("oversized job must be rejected");
        assert!(
            err.contains("max_nodes = 9") && err.contains("capacity of 8 nodes"),
            "error must name both values: {err}"
        );
    }

    #[test]
    fn non_monotone_submissions_rejected_by_name() {
        let mut s = two_jobs();
        s.jobs[1].submit_at = SimDur::ZERO;
        s.jobs[0].submit_at = SimDur::from_millis(2);
        let err = s
            .validate()
            .expect_err("reordered submits must be rejected");
        assert!(
            err.contains("non-decreasing"),
            "error must explain the rule: {err}"
        );
        assert!(
            err.contains("2.000ms"),
            "error must show the offending times: {err}"
        );
    }

    #[test]
    fn width_bound_violations_rejected() {
        let mut s = two_jobs();
        s.jobs[1].min_nodes = 3; // min > nodes(2)
        let err = s.validate().expect_err("min > nodes must be rejected");
        assert!(err.contains("min_nodes = 3"), "{err}");

        let mut s = two_jobs();
        s.jobs[1].max_nodes = 1; // max < nodes(2)
        assert!(s.validate().is_err());
    }

    #[test]
    fn tasks_per_node_over_cpus_rejected() {
        let mut s = two_jobs();
        s.jobs[0].tasks_per_node = 3; // cpus_per_node = 2
        let err = s.validate().expect_err("tpn > cpus must be rejected");
        assert!(
            err.contains("tasks_per_node = 3") && err.contains("cpus_per_node = 2"),
            "{err}"
        );
    }

    #[test]
    fn rigid_and_malleable_classification() {
        assert!(!JobRequest::rigid("r", SimDur::ZERO, 2).is_malleable());
        assert!(JobRequest::malleable("m", SimDur::ZERO, 2, 1, 4, 2).is_malleable());
    }
}
