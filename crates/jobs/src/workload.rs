//! The per-chunk rank workload of a batch job.
//!
//! Each rank of a running chunk alternates jittered compute with a global
//! Allreduce — the same bulk-synchronous skeleton as `aggregate_trace`,
//! but with the *total* compute per iteration fixed by the job spec and
//! divided evenly across the current rank count. That makes the chunk a
//! malleable unit: re-running the next chunk on more ranks shrinks the
//! per-rank compute while the collective round count stays put, which is
//! exactly the speedup/overhead trade the placement policies arbitrate.

use pa_mpi::{MpiOp, RankWorkload};
use pa_simkit::{RngState, SimDur, SimRng};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// One chunk of a batch job, executed by a single rank.
///
/// The engine installs a fresh `ChunkWorkload` per (job, chunk, rank)
/// launch, so the struct only ever runs one chunk and then reports
/// [`MpiOp::Done`]; chunk sequencing lives in the jobs engine.
#[derive(Debug)]
pub struct ChunkWorkload {
    /// Iterations left in this chunk.
    remaining: u32,
    /// Per-rank compute per iteration (already divided by the rank count).
    compute: SimDur,
    /// Allreduce payload.
    bytes: u32,
    /// Multiplicative jitter on the compute slice.
    jitter: f64,
    /// Per-(job, chunk, rank) RNG stream.
    rng: SimRng,
    /// Half-iteration state: the compute was issued, the Allreduce is due.
    allreduce_due: bool,
}

impl ChunkWorkload {
    /// Build a chunk for one rank. `work_per_iter` is the job-wide total;
    /// it is split evenly across `nranks`.
    pub fn new(
        iters: u32,
        work_per_iter: SimDur,
        nranks: u32,
        bytes: u32,
        jitter: f64,
        rng: SimRng,
    ) -> ChunkWorkload {
        assert!(nranks > 0, "a chunk needs at least one rank");
        ChunkWorkload {
            remaining: iters,
            compute: SimDur::from_nanos(work_per_iter.nanos() / u64::from(nranks)),
            bytes,
            jitter,
            rng,
            allreduce_due: false,
        }
    }
}

impl RankWorkload for ChunkWorkload {
    fn next_op(&mut self, _rank: u32, _nranks: u32) -> MpiOp {
        if self.allreduce_due {
            self.allreduce_due = false;
            return MpiOp::Allreduce { bytes: self.bytes };
        }
        if self.remaining == 0 {
            return MpiOp::Done;
        }
        self.remaining -= 1;
        self.allreduce_due = true;
        if self.compute.is_zero() {
            self.allreduce_due = false;
            return MpiOp::Allreduce { bytes: self.bytes };
        }
        MpiOp::Compute(self.rng.jitter(self.compute, self.jitter))
    }

    fn snapshot_state(&self) -> Value {
        (self.remaining, self.allreduce_due, self.rng.save_state()).to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let (remaining, due, rng): (u32, bool, RngState) = Deserialize::from_value(state)?;
        self.remaining = remaining;
        self.allreduce_due = due;
        self.rng.load_state(&rng).map_err(serde::Error)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut ChunkWorkload) -> Vec<MpiOp> {
        let mut ops = Vec::new();
        loop {
            let op = w.next_op(0, 4);
            if op == MpiOp::Done {
                break;
            }
            ops.push(op);
        }
        ops
    }

    #[test]
    fn alternates_compute_and_allreduce() {
        let mut w =
            ChunkWorkload::new(3, SimDur::from_micros(400), 4, 8, 0.2, SimRng::from_seed(7));
        let ops = drain(&mut w);
        assert_eq!(ops.len(), 6);
        for pair in ops.chunks(2) {
            assert!(matches!(pair[0], MpiOp::Compute(_)));
            assert!(matches!(pair[1], MpiOp::Allreduce { bytes: 8 }));
        }
    }

    #[test]
    fn compute_splits_across_ranks() {
        // 400µs over 8 ranks with no jitter: exactly 50µs per rank.
        let mut w =
            ChunkWorkload::new(1, SimDur::from_micros(400), 8, 8, 0.0, SimRng::from_seed(7));
        match w.next_op(0, 8) {
            MpiOp::Compute(d) => assert_eq!(d, SimDur::from_micros(50)),
            other => panic!("expected compute, got {other:?}"),
        }
    }

    #[test]
    fn zero_compute_degenerates_to_pure_allreduce() {
        let mut w = ChunkWorkload::new(2, SimDur::ZERO, 4, 16, 0.0, SimRng::from_seed(7));
        let ops = drain(&mut w);
        assert_eq!(ops.len(), 2);
        assert!(ops.iter().all(|o| matches!(o, MpiOp::Allreduce { .. })));
    }

    #[test]
    fn done_is_sticky() {
        let mut w = ChunkWorkload::new(1, SimDur::from_micros(1), 1, 8, 0.0, SimRng::from_seed(7));
        let _ = drain(&mut w);
        assert_eq!(w.next_op(0, 1), MpiOp::Done);
        assert_eq!(w.next_op(0, 1), MpiOp::Done);
    }

    #[test]
    fn snapshot_roundtrip_resumes_mid_chunk() {
        let mut a =
            ChunkWorkload::new(5, SimDur::from_micros(100), 2, 8, 0.3, SimRng::from_seed(9));
        let _ = a.next_op(0, 2); // compute issued, allreduce due
        let snap = a.snapshot_state();
        let mut b =
            ChunkWorkload::new(5, SimDur::from_micros(100), 2, 8, 0.3, SimRng::from_seed(1));
        b.restore_state(&snap).unwrap();
        assert_eq!(drain(&mut a), drain(&mut b));
    }
}
