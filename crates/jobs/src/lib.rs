//! `pa-jobs` — the cluster batch layer.
//!
//! The lower crates model one parallel job on one set of nodes. This
//! crate adds the piece the paper's evaluation presumes but never
//! simulates: a *batch system* feeding the machine. It contributes:
//!
//! - **A deterministic submission queue** ([`spec`]): jobs arrive at
//!   simulated instants with widths, runtimes, priorities, and runtime
//!   estimates, validated with named-value errors.
//! - **Space-sharing placement** ([`policy`]): pluggable policies carve
//!   node sets out of the cluster — FCFS first-fit, EASY backfill,
//!   pack-by-pressure, and hierarchical equipartition.
//! - **Per-job gang scheduling** ([`engine`]): each launched job gets
//!   its own co-scheduler daemons on its nodes, extending the single-job
//!   window machinery to multiple concurrent jobs, with optional phase
//!   stagger between co-resident jobs.
//! - **Malleable jobs** ([`workload`], [`engine`]): a job is a sequence
//!   of chunks; at chunk boundaries (barrier-aligned reconfiguration
//!   points) the policy may grow or shrink the job's node set.
//!
//! Everything is decided at simulation window barriers from canonically
//! ordered state, so histories, metrics, and traces are bit-identical at
//! any `--sim-threads` and `--jobs` setting.

pub mod engine;
pub mod policy;
pub mod spec;
pub mod workload;

pub use engine::{JobStats, JobsEngine, JobsOutcome};
pub use policy::{Launch, PolicyKind, QueuedJob, RunningJob, SchedView};
pub use spec::{JobRequest, MultiJobSpec};
pub use workload::ChunkWorkload;
