//! T-ale3d: end-to-end ALE3D proxy run time, vanilla vs the I/O-aware
//! prototype (paper: 1315 s → 1152 s at 944 processors).

use pa_bench::{banner, emit, Args, Mode};
use pa_simkit::{report, Table};
use pa_workloads::{tab_ale3d, Ale3dSpec};

fn main() {
    let args = Args::parse();
    banner("T-ale3d · ALE3D proxy run time", args.mode);
    let (nodes, spec) = ale3d_scale(args.mode);
    let rows = tab_ale3d(nodes, spec, args.seed);
    // A proxy run cut off by the simulation horizon is not a
    // reproduction; report it and exit non-zero after showing the rows.
    let cut: Vec<&str> = rows
        .iter()
        .filter(|r| !r.completed)
        .map(|r| r.label.as_str())
        .collect();
    emit(args.json, &rows, || {
        let mut t = Table::new(
            format!("ALE3D proxy at {nodes} nodes x 16",),
            &["configuration", "run time s", "completed"],
        );
        for r in &rows {
            t.row(&[
                r.label.clone(),
                report::fnum(r.wall_s, 2),
                r.completed.to_string(),
            ]);
        }
        print!("{}", t.render());
        let speedup = rows[0].wall_s / rows[1].wall_s;
        println!(
            "vanilla/io-aware ratio: {}x (paper: 1315s -> 1152s, ratio 1.14x)",
            report::fnum(speedup, 2)
        );
    });
    if !cut.is_empty() {
        eprintln!(
            "error: T-ale3d: {} run(s) cut by the horizon: {}",
            cut.len(),
            cut.join(", ")
        );
        std::process::exit(1);
    }
}

fn ale3d_scale(mode: Mode) -> (u32, Ale3dSpec) {
    match mode {
        Mode::Quick => (
            2,
            Ale3dSpec {
                timesteps: 8,
                compute_per_step: pa_simkit::SimDur::from_millis(5),
                initial_read_bytes: 1 << 20,
                restart_bytes: 2 << 20,
                ..Ale3dSpec::default()
            },
        ),
        Mode::Standard => (8, Ale3dSpec::default()),
        Mode::Full => (59, Ale3dSpec::default()),
    }
}
