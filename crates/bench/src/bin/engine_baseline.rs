//! Engine self-profile baseline: wall-clock events/sec on representative
//! scenarios plus the observability layer's overhead, written as
//! `BENCH_engine.json`.
//!
//! Wall-clock numbers are machine-dependent and therefore live here —
//! never in a `pa-obs` metrics snapshot, which must stay byte-identical
//! across reruns. The overhead measurement runs the same experiment with
//! and without artifact extraction (metrics fold + span timeline +
//! Chrome-trace render); the acceptance threshold is 5%.

use pa_bench::{Args, Mode};
use pa_mpi::{MpiOp, OpList, RankWorkload};
use pa_simkit::{EventQueue, SimTime};
use serde_json::Value;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    events: u64,
    events_per_sec: f64,
}

/// Raw event-calendar throughput (schedule + pop of 10k batches).
fn queue_scenario(batches: u32) -> Scenario {
    let started = Instant::now();
    let mut events = 0u64;
    for b in 0..batches {
        let mut q = EventQueue::<u32>::new();
        for i in 0..10_000u32 {
            let t = SimTime::from_nanos(u64::from(
                i.wrapping_mul(2_654_435_761).wrapping_add(b) % 1_000_000,
            ));
            q.schedule(t, i);
        }
        while q.pop().is_some() {}
        events += q.stats().popped;
    }
    Scenario {
        name: "event_queue/push_pop_10k",
        events,
        events_per_sec: events as f64 / started.elapsed().as_secs_f64(),
    }
}

fn experiment(seed: u64, calls: usize) -> pa_core::RunOutput {
    let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
        Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; calls]))
    };
    pa_core::Experiment::new(2, 4)
        .with_cpus_per_node(4)
        .with_cosched(pa_core::CoschedSetup::default())
        .with_trace_node(0)
        .with_seed(seed)
        .run(&mut wl)
}

/// Full-stack DES throughput on a small co-scheduled cluster.
fn cluster_scenario(calls: usize) -> Scenario {
    let started = Instant::now();
    let out = experiment(42, calls);
    Scenario {
        name: "cluster/cosched_allreduce",
        events: out.events,
        events_per_sec: out.events as f64 / started.elapsed().as_secs_f64(),
    }
}

/// Span-timeline export throughput: trace events converted to Chrome
/// trace JSON per second. Export is explicit opt-in I/O (`--trace-out`),
/// so it is reported as a scenario, not counted as instrumentation.
fn timeline_scenario(calls: usize) -> Scenario {
    let out = experiment(42, calls);
    let trace_events = out.sim.kernel(0).trace().len() as u64;
    let started = Instant::now();
    let tl = pa_core::timeline_of(&out, 0);
    std::hint::black_box(tl.to_chrome_trace().len());
    Scenario {
        name: "obs/timeline_render",
        events: trace_events,
        events_per_sec: trace_events as f64 / started.elapsed().as_secs_f64(),
    }
}

/// One point of the engine's thread-scaling curve.
struct SpeedupPoint {
    threads: usize,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    speedup: f64,
}

/// Parallel-engine throughput on a 64-node cluster at 1/2/4 worker
/// threads. The sharded engine's history is bit-identical at every
/// point; only the wall clock moves. Each point takes the minimum wall
/// time over `reps` runs to shed scheduler jitter.
fn thread_scaling(calls: usize, reps: u32) -> Vec<SpeedupPoint> {
    let run = |threads: usize| -> (u64, f64) {
        let mut events = 0u64;
        let mut wall = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
                Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 256 }; calls]))
            };
            let started = Instant::now();
            let out = pa_core::Experiment::new(64, 2)
                .with_cpus_per_node(4)
                .with_seed(42)
                .with_sim_threads(threads)
                .run(&mut wl);
            wall = wall.min(started.elapsed().as_secs_f64());
            events = out.events;
        }
        (events, wall)
    };
    let (base_events, base_wall) = run(1);
    let mut points = vec![SpeedupPoint {
        threads: 1,
        events: base_events,
        wall_s: base_wall,
        events_per_sec: base_events as f64 / base_wall,
        speedup: 1.0,
    }];
    for threads in [2usize, 4] {
        let (events, wall) = run(threads);
        assert_eq!(
            events, base_events,
            "sharded engine diverged from serial at {threads} threads"
        );
        points.push(SpeedupPoint {
            threads,
            events,
            wall_s: wall,
            events_per_sec: events as f64 / wall,
            speedup: base_wall / wall,
        });
    }
    points
}

/// Wall-time overhead `--metrics-out` adds to a run: registry fold plus
/// canonical snapshot, as a fraction of the simulation it summarizes.
/// The always-on hot-path counters cannot be compiled out and are plain
/// integer bumps; everything else the observability layer does is this
/// post-run fold. Timing the fold against its own run (minimum over
/// reps on both) avoids run-to-run scheduler jitter, which at the
/// quick scale is far larger than the quantity measured.
fn overhead_ratio(calls: usize, reps: u32) -> f64 {
    let mut run_s = f64::INFINITY;
    let mut fold_s = f64::INFINITY;
    for rep in 0..reps {
        let seed = 100 + u64::from(rep);
        let t = Instant::now();
        let out = experiment(seed, calls);
        std::hint::black_box(out.events);
        run_s = run_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let reg = pa_core::metrics_of(&out);
        std::hint::black_box(reg.snapshot_json().len());
        fold_s = fold_s.min(t.elapsed().as_secs_f64());
    }
    if run_s > 0.0 && run_s.is_finite() {
        fold_s / run_s
    } else {
        0.0
    }
}

fn main() {
    let args = Args::parse();
    let (batches, calls, reps, scaling_calls, scaling_reps) = match args.mode {
        Mode::Quick => (20, 800, 3, 4, 1),
        Mode::Standard => (60, 2_000, 5, 12, 2),
        Mode::Full => (200, 6_000, 7, 40, 3),
    };
    let scenarios = vec![
        queue_scenario(batches),
        cluster_scenario(calls),
        timeline_scenario(calls),
    ];
    let overhead = overhead_ratio(calls, reps);
    let threshold = 0.05;
    let curve = thread_scaling(scaling_calls, scaling_reps);
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    // 2× at 4 threads is only a meaningful expectation when the host can
    // actually run 4 workers; wall-clock speedup on fewer cores is noise.
    let speedup_target = 2.0;
    let speedup_enforced = host_parallelism >= 4;

    let mut rows = Vec::new();
    for s in &scenarios {
        eprintln!(
            "  {:<28} {:>12} events  {:>12.0} events/s",
            s.name, s.events, s.events_per_sec
        );
        rows.push(Value::Map(vec![
            ("name".into(), Value::Str(s.name.into())),
            ("events".into(), Value::UInt(s.events)),
            ("events_per_sec".into(), Value::Float(s.events_per_sec)),
        ]));
    }
    eprintln!(
        "  observability overhead: {:+.2}% (threshold {:.0}%)",
        overhead * 100.0,
        threshold * 100.0
    );
    let mut curve_rows = Vec::new();
    for p in &curve {
        eprintln!(
            "  engine/64-node @ {} threads   {:>12.0} events/s  speedup {:.2}x",
            p.threads, p.events_per_sec, p.speedup
        );
        curve_rows.push(Value::Map(vec![
            ("threads".into(), Value::UInt(p.threads as u64)),
            ("events".into(), Value::UInt(p.events)),
            ("wall_s".into(), Value::Float(p.wall_s)),
            ("events_per_sec".into(), Value::Float(p.events_per_sec)),
            ("speedup".into(), Value::Float(p.speedup)),
        ]));
    }

    let doc = Value::Map(vec![
        ("scenarios".into(), Value::Seq(rows)),
        ("obs_overhead_ratio".into(), Value::Float(overhead)),
        ("obs_overhead_threshold".into(), Value::Float(threshold)),
        ("thread_scaling_64node".into(), Value::Seq(curve_rows)),
        ("speedup_target_4t".into(), Value::Float(speedup_target)),
        (
            "host_parallelism".into(),
            Value::UInt(host_parallelism as u64),
        ),
        ("mode".into(), Value::Str(format!("{:?}", args.mode))),
    ]);
    // The canonical copy lives under `results/` with the other bench
    // artifacts so the trajectory accumulates; a repo-root copy stays for
    // tools that expect the historical location. `--metrics-out` overrides
    // both with a single explicit path.
    let body = doc.to_json_string_pretty() + "\n";
    let paths: Vec<std::path::PathBuf> = match args.metrics_out.clone() {
        Some(p) => vec![p],
        None => {
            if let Err(e) = std::fs::create_dir_all("results") {
                eprintln!("error: cannot create results/: {e}");
                std::process::exit(1);
            }
            vec![
                std::path::PathBuf::from("results/BENCH_engine.json"),
                std::path::PathBuf::from("BENCH_engine.json"),
            ]
        }
    };
    for path in &paths {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("engine baseline written to {}", path.display());
    }
    if overhead > threshold {
        eprintln!(
            "error: observability overhead {:.2}% exceeds {:.0}%",
            overhead * 100.0,
            threshold * 100.0
        );
        std::process::exit(1);
    }
    let at4 = curve.iter().find(|p| p.threads == 4);
    if let Some(p) = at4 {
        if speedup_enforced && p.speedup < speedup_target {
            eprintln!(
                "error: 4-thread speedup {:.2}x below {:.1}x target on a \
                 {host_parallelism}-way host",
                p.speedup, speedup_target
            );
            std::process::exit(1);
        }
        if !speedup_enforced {
            eprintln!(
                "note: speedup target not enforced (host parallelism {host_parallelism} < 4)"
            );
        }
    }
}
