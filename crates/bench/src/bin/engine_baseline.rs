//! Engine self-profile baseline: wall-clock events/sec on representative
//! scenarios plus the observability layer's overhead, written as
//! `BENCH_engine.json`.
//!
//! Wall-clock numbers are machine-dependent and therefore live here —
//! never in a `pa-obs` metrics snapshot, which must stay byte-identical
//! across reruns. The overhead measurement runs the same experiment with
//! and without artifact extraction (metrics fold + span timeline +
//! Chrome-trace render); the acceptance threshold is 5%.
//!
//! Every acceptance check is reported as a gate object (`pass`/`skip`/
//! `fail` with the measured value and limit) in the JSON, so a host that
//! cannot meaningfully run a gate — e.g. a 2-core runner asked about
//! 4-thread speedup — records a `skip` with the reason instead of a
//! vacuous pass. The process exits non-zero only on `fail`.

use pa_bench::{Args, Mode};
use pa_core::CoschedSetup;
use pa_mpi::{MpiOp, OpList, RankWorkload};
use pa_simkit::{EventQueue, SimDur, SimTime};
use serde_json::Value;
use std::time::Instant;

struct Scenario {
    name: &'static str,
    events: u64,
    events_per_sec: f64,
}

/// Raw event-calendar throughput (schedule + pop of 10k batches).
fn queue_scenario(batches: u32) -> Scenario {
    let started = Instant::now();
    let mut events = 0u64;
    for b in 0..batches {
        let mut q = EventQueue::<u32>::new();
        for i in 0..10_000u32 {
            let t = SimTime::from_nanos(u64::from(
                i.wrapping_mul(2_654_435_761).wrapping_add(b) % 1_000_000,
            ));
            q.schedule(t, i);
        }
        while q.pop().is_some() {}
        events += q.stats().popped;
    }
    Scenario {
        name: "event_queue/push_pop_10k",
        events,
        events_per_sec: events as f64 / started.elapsed().as_secs_f64(),
    }
}

/// Cancel-heavy calendar throughput: the timer re-arm pattern that used
/// to leak tombstones without bound. Each round re-arms a far-future
/// timer per slot (cancel + schedule) and pops one near event. Runs in
/// both queue modes and asserts the lazy fallback's compaction bound —
/// tombstones never exceed live entries — every round.
fn queue_cancel_scenario(rounds: u32, lazy: bool) -> Scenario {
    const SLOTS: usize = 512;
    let started = Instant::now();
    let mut q = if lazy {
        EventQueue::<u32>::new_lazy()
    } else {
        EventQueue::<u32>::new()
    };
    let mut timers = Vec::with_capacity(SLOTS);
    let far = SimTime::from_nanos(u64::MAX / 2);
    for i in 0..SLOTS {
        timers.push(q.schedule(far, i as u32));
    }
    let mut ops = 0u64;
    for r in 0..rounds {
        for (i, t) in timers.iter_mut().enumerate() {
            q.cancel(*t);
            *t = q.schedule(far, i as u32);
            ops += 2;
        }
        // One live near event keeps pops meaningful and anchors the root.
        let near = q.schedule(q.now() + SimDur::from_nanos(1), u32::MAX);
        let _ = near;
        q.pop();
        ops += 2;
        let live = (q.stats().scheduled - q.stats().popped - q.stats().cancelled) as usize;
        assert!(
            q.stats().tombstones as usize <= live.max(1),
            "round {r}: {} tombstones exceed {live} live entries",
            q.stats().tombstones
        );
        assert!(
            q.resident_len() <= 2 * live + 1,
            "round {r}: resident {} exceeds 2*live+1 for {live} live",
            q.resident_len()
        );
    }
    Scenario {
        name: if lazy {
            "event_queue/cancel_rearm_lazy"
        } else {
            "event_queue/cancel_rearm_indexed"
        },
        events: ops,
        events_per_sec: ops as f64 / started.elapsed().as_secs_f64(),
    }
}

fn experiment(seed: u64, calls: usize) -> pa_core::RunOutput {
    let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
        Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; calls]))
    };
    pa_core::Experiment::new(2, 4)
        .with_cpus_per_node(4)
        .with_cosched(CoschedSetup::default())
        .with_trace_node(0)
        .with_seed(seed)
        .run(&mut wl)
}

/// Full-stack DES throughput on a small co-scheduled cluster.
fn cluster_scenario(calls: usize) -> Scenario {
    let started = Instant::now();
    let out = experiment(42, calls);
    Scenario {
        name: "cluster/cosched_allreduce",
        events: out.events,
        events_per_sec: out.events as f64 / started.elapsed().as_secs_f64(),
    }
}

/// Span-timeline export throughput: trace events converted to Chrome
/// trace JSON per second. Export is explicit opt-in I/O (`--trace-out`),
/// so it is reported as a scenario, not counted as instrumentation.
fn timeline_scenario(calls: usize) -> Scenario {
    let out = experiment(42, calls);
    let trace_events = out.sim.kernel(0).trace().len() as u64;
    let started = Instant::now();
    let tl = pa_core::timeline_of(&out, 0);
    std::hint::black_box(tl.to_chrome_trace().len());
    Scenario {
        name: "obs/timeline_render",
        events: trace_events,
        events_per_sec: trace_events as f64 / started.elapsed().as_secs_f64(),
    }
}

/// One point of the engine's thread-scaling curve.
struct SpeedupPoint {
    threads: usize,
    events: u64,
    wall_s: f64,
    events_per_sec: f64,
    speedup: f64,
    cancelled: u64,
    tombstones: u64,
}

/// The cancel-heavy co-scheduled workload used for the scaling curves:
/// skewed compute segments keep every CPU busy while a fast-cycling
/// priority daemon preempts runners mid-segment, each preemption voiding
/// a `SegEnd` timer — exercising true cancellation on the hot path.
fn cancel_heavy_setup() -> CoschedSetup {
    let mut setup = CoschedSetup::default();
    setup.params.period = SimDur::from_millis(1);
    setup.params.duty = 0.5;
    setup
}

fn cancel_heavy_wl(rank: u32, iters: usize) -> Box<dyn RankWorkload> {
    let mut ops = Vec::with_capacity(iters + iters / 10);
    for i in 0..iters as u64 {
        let us = 200 + ((u64::from(rank) * 37 + i * 13) % 400);
        ops.push(MpiOp::Compute(SimDur::from_micros(us)));
        if i % 10 == 9 {
            ops.push(MpiOp::Allreduce { bytes: 256 });
        }
    }
    Box::new(OpList::new(ops))
}

/// Parallel-engine throughput at each worker thread count on a cluster
/// of `nodes` × `tasks` (one CPU per task). The sharded engine's history
/// is bit-identical at every point; only the wall clock moves. Each
/// point takes the minimum wall time over `reps` runs to shed scheduler
/// jitter. Asserts the workload actually exercised cancellation and that
/// event counts agree across thread counts.
fn thread_scaling(
    nodes: u32,
    tasks: u32,
    iters: usize,
    threads_list: &[usize],
    reps: u32,
) -> Vec<SpeedupPoint> {
    let run = |threads: usize| -> (u64, f64, u64, u64) {
        let mut events = 0u64;
        let mut wall = f64::INFINITY;
        let mut cancelled = 0u64;
        let mut tombstones = 0u64;
        for _ in 0..reps.max(1) {
            let mut wl = |rank: u32| -> Box<dyn RankWorkload> { cancel_heavy_wl(rank, iters) };
            let started = Instant::now();
            let out = pa_core::Experiment::new(nodes, tasks)
                .with_cpus_per_node(tasks as u8)
                .with_cosched(cancel_heavy_setup())
                .with_seed(42)
                .with_sim_threads(threads)
                .run(&mut wl);
            wall = wall.min(started.elapsed().as_secs_f64());
            events = out.events;
            let q = out.sim.queue_stats();
            cancelled = q.cancelled;
            tombstones = q.tombstones;
            let live = q.scheduled - q.popped - q.cancelled;
            assert!(
                q.tombstones <= live.max(1),
                "tombstones {} exceed {live} live entries at {threads} threads",
                q.tombstones
            );
        }
        (events, wall, cancelled, tombstones)
    };
    let mut points: Vec<SpeedupPoint> = Vec::new();
    for &threads in threads_list {
        let (events, wall, cancelled, tombstones) = run(threads);
        if let Some(base) = points.first() {
            assert_eq!(
                events, base.events,
                "sharded engine diverged from serial at {threads} threads"
            );
            assert_eq!(
                cancelled, base.cancelled,
                "cancellation count diverged at {threads} threads"
            );
        } else {
            assert!(
                cancelled > 0,
                "scaling workload produced no cancellations; not cancel-heavy"
            );
        }
        let base_wall = points.first().map_or(wall, |p| p.wall_s);
        points.push(SpeedupPoint {
            threads,
            events,
            wall_s: wall,
            events_per_sec: events as f64 / wall,
            speedup: base_wall / wall,
            cancelled,
            tombstones,
        });
    }
    points
}

/// Wall-time overhead `--metrics-out` adds to a run: registry fold plus
/// canonical snapshot, as a fraction of the simulation it summarizes.
/// The always-on hot-path counters cannot be compiled out and are plain
/// integer bumps; everything else the observability layer does is this
/// post-run fold. Timing the fold against its own run (minimum over
/// reps on both) avoids run-to-run scheduler jitter, which at the
/// quick scale is far larger than the quantity measured.
fn overhead_ratio(calls: usize, reps: u32) -> f64 {
    let mut run_s = f64::INFINITY;
    let mut fold_s = f64::INFINITY;
    for rep in 0..reps {
        let seed = 100 + u64::from(rep);
        let t = Instant::now();
        let out = experiment(seed, calls);
        std::hint::black_box(out.events);
        run_s = run_s.min(t.elapsed().as_secs_f64());

        let t = Instant::now();
        let reg = pa_core::metrics_of(&out);
        std::hint::black_box(reg.snapshot_json().len());
        fold_s = fold_s.min(t.elapsed().as_secs_f64());
    }
    if run_s > 0.0 && run_s.is_finite() {
        fold_s / run_s
    } else {
        0.0
    }
}

/// One acceptance gate: what was checked, what was measured, and whether
/// it passed, failed, or could not meaningfully run on this host.
struct Gate {
    name: &'static str,
    status: &'static str,
    value: f64,
    limit: f64,
    detail: String,
}

fn curve_rows(curve: &[SpeedupPoint]) -> Vec<Value> {
    curve
        .iter()
        .map(|p| {
            Value::Map(vec![
                ("threads".into(), Value::UInt(p.threads as u64)),
                ("events".into(), Value::UInt(p.events)),
                ("wall_s".into(), Value::Float(p.wall_s)),
                ("events_per_sec".into(), Value::Float(p.events_per_sec)),
                ("speedup".into(), Value::Float(p.speedup)),
                ("cancelled".into(), Value::UInt(p.cancelled)),
                ("tombstones".into(), Value::UInt(p.tombstones)),
            ])
        })
        .collect()
}

fn print_curve(label: &str, curve: &[SpeedupPoint]) {
    for p in curve {
        eprintln!(
            "  {label} @ {:>2} threads  {:>12.0} events/s  speedup {:.2}x  \
             ({} cancelled)",
            p.threads, p.events_per_sec, p.speedup, p.cancelled
        );
    }
}

fn main() {
    let args = Args::parse();
    let (batches, cancel_rounds, calls, reps, scaling_iters, sp_iters, scaling_reps) =
        match args.mode {
            Mode::Quick => (20, 200, 800, 3, 60, 10, 1),
            Mode::Standard => (60, 800, 2_000, 5, 150, 20, 2),
            Mode::Full => (200, 2_000, 6_000, 7, 400, 40, 3),
        };
    let scenarios = vec![
        queue_scenario(batches),
        queue_cancel_scenario(cancel_rounds, false),
        queue_cancel_scenario(cancel_rounds, true),
        cluster_scenario(calls),
        timeline_scenario(calls),
    ];
    let overhead = overhead_ratio(calls, reps);
    let threshold = 0.05;
    // The historical 64-node shape, now cancel-heavy and extended past
    // the old 4-thread knee.
    let curve = thread_scaling(64, 4, scaling_iters, &[1, 2, 4, 8, 16], scaling_reps);
    // The paper's measured configuration: 944 processes on 59 nodes
    // (16-way SP nodes, §5). Serial vs 8 workers bounds the win at scale.
    let sp_curve = thread_scaling(59, 16, sp_iters, &[1, 8], scaling_reps);
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let speedup_target = 2.0;

    let mut rows = Vec::new();
    for s in &scenarios {
        eprintln!(
            "  {:<32} {:>12} events  {:>12.0} events/s",
            s.name, s.events, s.events_per_sec
        );
        rows.push(Value::Map(vec![
            ("name".into(), Value::Str(s.name.into())),
            ("events".into(), Value::UInt(s.events)),
            ("events_per_sec".into(), Value::Float(s.events_per_sec)),
        ]));
    }
    eprintln!(
        "  observability overhead: {:+.2}% (threshold {:.0}%)",
        overhead * 100.0,
        threshold * 100.0
    );
    print_curve("engine/64-node", &curve);
    print_curve("engine/944-proc", &sp_curve);

    // Acceptance gates. A gate that cannot meaningfully run on this host
    // is recorded as `skip` with the reason — never as a silent pass.
    let mut gates = Vec::new();
    gates.push(Gate {
        name: "obs_overhead",
        status: if overhead <= threshold {
            "pass"
        } else {
            "fail"
        },
        value: overhead,
        limit: threshold,
        detail: "metrics fold + snapshot wall-time as fraction of its run".into(),
    });
    let at4 = curve.iter().find(|p| p.threads == 4).expect("4t point");
    gates.push(if host_parallelism < 4 {
        Gate {
            name: "speedup_4t",
            status: "skip",
            value: at4.speedup,
            limit: speedup_target,
            detail: format!(
                "host parallelism {host_parallelism} < 4; wall-clock speedup \
                 on fewer cores is noise"
            ),
        }
    } else {
        Gate {
            name: "speedup_4t",
            status: if at4.speedup >= speedup_target {
                "pass"
            } else {
                "fail"
            },
            value: at4.speedup,
            limit: speedup_target,
            detail: format!("64-node curve at 4 threads on a {host_parallelism}-way host"),
        }
    });
    let max_tomb = curve
        .iter()
        .chain(sp_curve.iter())
        .map(|p| p.tombstones)
        .max()
        .unwrap_or(0);
    gates.push(Gate {
        name: "tombstone_bound",
        status: "pass", // violations assert inside thread_scaling
        value: max_tomb as f64,
        limit: 0.0,
        detail: "cancel-heavy runs end with tombstones <= live entries".into(),
    });

    let gate_rows: Vec<Value> = gates
        .iter()
        .map(|g| {
            Value::Map(vec![
                ("name".into(), Value::Str(g.name.into())),
                ("status".into(), Value::Str(g.status.into())),
                ("value".into(), Value::Float(g.value)),
                ("limit".into(), Value::Float(g.limit)),
                ("detail".into(), Value::Str(g.detail.clone())),
            ])
        })
        .collect();

    let doc = Value::Map(vec![
        ("scenarios".into(), Value::Seq(rows)),
        ("obs_overhead_ratio".into(), Value::Float(overhead)),
        ("obs_overhead_threshold".into(), Value::Float(threshold)),
        (
            "thread_scaling_64node".into(),
            Value::Seq(curve_rows(&curve)),
        ),
        (
            "thread_scaling_944proc".into(),
            Value::Seq(curve_rows(&sp_curve)),
        ),
        ("speedup_target_4t".into(), Value::Float(speedup_target)),
        (
            "host_parallelism".into(),
            Value::UInt(host_parallelism as u64),
        ),
        ("gates".into(), Value::Seq(gate_rows)),
        ("mode".into(), Value::Str(format!("{:?}", args.mode))),
    ]);
    // The canonical copy lives under `results/` with the other bench
    // artifacts so the trajectory accumulates; a repo-root copy stays for
    // tools that expect the historical location. `--metrics-out` overrides
    // both with a single explicit path.
    let body = doc.to_json_string_pretty() + "\n";
    let paths: Vec<std::path::PathBuf> = match args.metrics_out.clone() {
        Some(p) => vec![p],
        None => {
            if let Err(e) = std::fs::create_dir_all("results") {
                eprintln!("error: cannot create results/: {e}");
                std::process::exit(1);
            }
            vec![
                std::path::PathBuf::from("results/BENCH_engine.json"),
                std::path::PathBuf::from("BENCH_engine.json"),
            ]
        }
    };
    for path in &paths {
        if let Err(e) = std::fs::write(path, &body) {
            eprintln!("error: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
        println!("engine baseline written to {}", path.display());
    }
    let mut failed = false;
    for g in &gates {
        match g.status {
            "fail" => {
                failed = true;
                eprintln!(
                    "error: gate {} failed: value {:.3} vs limit {:.3} ({})",
                    g.name, g.value, g.limit, g.detail
                );
            }
            "skip" => eprintln!("note: gate {} skipped: {}", g.name, g.detail),
            _ => {}
        }
    }
    if failed {
        std::process::exit(1);
    }
}
