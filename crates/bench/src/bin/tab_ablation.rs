//! A-ablate: contribution of each prototype mechanism (big ticks, aligned
//! ticks, improved RT preemption, global daemon queue, co-scheduler) to
//! the Allreduce improvement.

use pa_bench::{banner, emit, require_complete, Args, Mode};
use pa_simkit::{report, Table};
use pa_workloads::tab_ablation;

fn main() {
    let args = Args::parse();
    banner("A-ablate · mechanism ablation", args.mode);
    let nodes = match args.mode {
        Mode::Quick => 4,
        Mode::Standard => 16,
        Mode::Full => 59,
    };
    let rows = require_complete(tab_ablation(
        nodes,
        args.mode == Mode::Quick,
        &args.campaign("tab_ablation"),
    ));
    emit(args.json, &rows, || {
        let base = rows[0].value;
        let mut t = Table::new(
            format!("Mean Allreduce µs at {nodes} nodes"),
            &["configuration", "mean µs", "vs vanilla"],
        );
        for r in &rows {
            t.row(&[
                r.label.clone(),
                report::fnum(r.value, 1),
                format!("{}x", report::fnum(base / r.value, 2)),
            ]);
        }
        print!("{}", t.render());
    });
}
