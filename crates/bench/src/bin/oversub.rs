//! Oversubscribed multi-runtime gang scheduling across dispatcher
//! policies: the scenario grid from `pa_workloads::oversub`, one row per
//! (dispatcher, gang) cell. With `--dispatcher`, only that policy's two
//! rows run.

use pa_bench::{banner, emit, Args, Mode};
use pa_simkit::report;
use pa_workloads::{run_oversub, OversubRow, OversubSpec};

fn main() {
    let args = Args::parse();
    banner(
        "Oversubscription · gang scheduling vs dispatcher",
        args.mode,
    );
    let mut spec = if args.mode == Mode::Quick {
        OversubSpec::quick()
    } else {
        OversubSpec::default()
    };
    spec.seed = args.seed;

    // Honor --dispatcher as a filter: the scenario is a comparison, so
    // the default runs every policy rather than just AIX.
    let explicit = std::env::args().any(|a| a == "--dispatcher");
    let kinds: Vec<_> = if explicit {
        vec![args.dispatcher]
    } else {
        pa_kernel::DispatcherKind::ALL.to_vec()
    };
    let rows: Vec<OversubRow> = kinds
        .iter()
        .flat_map(|&k| [false, true].map(|gang| run_oversub(&spec, k, gang)))
        .collect();

    emit(args.json, &rows, || {
        println!(
            "{} runtimes x {} workers on {} CPUs, {} work each",
            spec.runtimes, spec.workers_per_runtime, spec.cpus, spec.work_per_worker
        );
        println!(
            "{:<10} {:>5} {:>12} {:>12} {:>11} {:>11} {:>12}",
            "dispatcher", "gang", "makespan_ms", "spread_ms", "dispatches", "preempts", "runq_ms"
        );
        for r in &rows {
            println!(
                "{:<10} {:>5} {:>12} {:>12} {:>11} {:>11} {:>12}",
                r.dispatcher,
                if r.gang { "on" } else { "off" },
                report::fnum(r.makespan_ms, 1),
                report::fnum(r.finish_spread_ms, 1),
                r.dispatches,
                r.preemptions,
                report::fnum(r.runq_wait_ms, 1)
            );
        }
    });
}
