//! T-15v16: the reserve-CPU workaround (§2) vs the prototype — including
//! the paper's claim that 100 fully-populated prototype nodes beat 100
//! vanilla nodes running 15 tasks each by 154%.

use pa_bench::{banner, emit, require_complete, Args, Mode};
use pa_simkit::{report, Table};
use pa_workloads::tab_15v16;

fn main() {
    let args = Args::parse();
    banner("T-15v16 · reserve CPU vs prototype", args.mode);
    let nodes = match args.mode {
        Mode::Quick => 4,
        Mode::Standard => 32,
        Mode::Full => 100,
    };
    let r = require_complete(tab_15v16(
        nodes,
        args.mode == Mode::Quick,
        &args.campaign("tab_15v16"),
    ));
    emit(args.json, &r, || {
        let mut t = Table::new(
            format!("Mean Allreduce µs at {nodes} nodes"),
            &["configuration", "mean µs"],
        );
        for row in &r.rows {
            t.row(&[row.label.clone(), report::fnum(row.value, 1)]);
        }
        print!("{}", t.render());
        println!(
            "vanilla 16/15 ratio: {}x (15 t/n should be faster) | prototype-16 vs vanilla-15 speedup: {}x (paper: 1.54x)",
            report::fnum(r.van16_over_van15, 2),
            report::fnum(r.proto16_speedup_vs_van15, 2)
        );
    });
}
