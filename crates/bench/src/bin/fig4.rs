//! Figure 4: sorted per-call Allreduce times on one node of a 944-proc
//! run, and the trace-driven culprit analysis of the slowest call
//! (paper: an administrative cron job consuming >600 ms).

use pa_bench::{banner, emit, write_metrics, write_trace, Args, Mode};
use pa_simkit::report;
use pa_workloads::{fig4_with_output, Fig4Config};

fn main() {
    let args = Args::parse();
    banner(
        "Figure 4 · sorted Allreduce times + outlier attribution",
        args.mode,
    );
    let mut cfg = Fig4Config::paper(args.mode != Mode::Full);
    cfg.seed = args.seed;
    if args.mode == Mode::Quick {
        cfg.nodes = 4;
        cfg.cron.phase = pa_simkit::SimDur::from_millis(80);
        cfg.cron.component_median = pa_simkit::SimDur::from_millis(6);
    }
    let (r, out) = fig4_with_output(&cfg);
    write_metrics(&args, &pa_core::metrics_of(&out));
    // Node 0 hosts the watched rank; its timeline shows the cron firing
    // tearing through the Allreduce loop.
    write_trace(&args, &pa_core::timeline_of(&out, 0));
    emit(args.json, &r, || {
        println!(
            "samples {} | model {}µs | fastest {} | median {} | mean {} | slowest {}",
            r.sorted_us.len(),
            report::fnum(r.model_us, 0),
            report::fnum(r.fastest_us, 1),
            report::fnum(r.median_us, 1),
            report::fnum(r.mean_us, 1),
            report::fnum(r.slowest_us, 1)
        );
        println!(
            "fastest/model = {} (paper ~1.1) | median/model = {} (paper ~1.35) | mean/model = {} (paper ~6)",
            report::fnum(r.fastest_us / r.model_us, 2),
            report::fnum(r.median_us / r.model_us, 2),
            report::fnum(r.mean_us / r.model_us, 2)
        );
        println!(
            "slowest call consumed {}% of total loop time (paper: >50%)",
            report::fnum(100.0 * r.slowest_share, 1)
        );
        println!("sorted sample deciles (µs):");
        let n = r.sorted_us.len();
        for d in 0..=10 {
            let idx = ((n - 1) * d) / 10;
            print!(" {:>9.1}", r.sorted_us[idx]);
        }
        println!();
        println!("culprits during the slowest call (cluster-wide CPU time):");
        for c in &r.culprits {
            println!("  {:<16} {:<10} {:>10.1}µs", c.name, c.class, c.us);
        }
    });
}
