//! Duty-cycle sensitivity: §4 gives the administrator "wide latitude" and
//! warns that an over-aggressive favored window starves the node; the
//! study settled on 90%.

use pa_bench::{banner, emit, require_complete, Args, Mode};
use pa_simkit::{report, Table};
use pa_workloads::duty_cycle_sweep;

fn main() {
    let args = Args::parse();
    banner("Duty-cycle sensitivity", args.mode);
    let nodes = match args.mode {
        Mode::Quick => 4,
        Mode::Standard => 16,
        Mode::Full => 59,
    };
    // Tick-aligned duties for the compressed 1.25 s window.
    let duties = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let rows = require_complete(duty_cycle_sweep(
        nodes,
        &duties,
        args.mode == Mode::Quick,
        &args.campaign("tab_duty"),
    ));
    emit(args.json, &rows, || {
        let mut t = Table::new(
            format!("Mean Allreduce µs vs favored duty cycle at {nodes} nodes"),
            &["duty", "mean µs"],
        );
        for (duty, us) in &rows {
            t.row(&[report::fnum(*duty, 2), report::fnum(*us, 1)]);
        }
        print!("{}", t.render());
    });
}
