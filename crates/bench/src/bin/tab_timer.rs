//! T-timer: the MPI timer-thread ("progress engine") interference and the
//! MP_POLLING_INTERVAL mitigation (§5.3).

use pa_bench::{banner, emit, Args, Mode};
use pa_simkit::{report, Table};
use pa_workloads::tab_timer;

fn main() {
    let args = Args::parse();
    banner("T-timer · MPI progress-engine interference", args.mode);
    let nodes = match args.mode {
        Mode::Quick => 2,
        Mode::Standard => 8,
        Mode::Full => 59,
    };
    let r = tab_timer(nodes, args.mode != Mode::Full);
    emit(args.json, &r, || {
        let mut t = Table::new(
            format!("Per-call global Allreduce duration at {nodes} nodes, 15 t/n"),
            &["configuration", "mean µs", "p99 µs", "max µs"],
        );
        for (label, mean, p99, max) in &r.rows {
            t.row(&[
                label.clone(),
                report::fnum(*mean, 1),
                report::fnum(*p99, 1),
                report::fnum(*max, 1),
            ]);
        }
        print!("{}", t.render());
        println!(
            "tail (max) improvement from mitigation: {}x (paper: 'this removed the interference')",
            report::fnum(r.p99_improvement, 2)
        );
    });
}
