//! Multi-job batch sweep: one mixed job stream (rigid wide/narrow jobs
//! plus a malleable lead job) run under each placement policy, compared
//! on makespan, mean queue wait, utilization, and reconfiguration count.
//!
//! The scenario is scaled by mode (`--quick`: 4 nodes / 6 jobs,
//! default: 8 / 10, `--full`: 16 / 18) and honors `--link-bandwidth`
//! for fabric contention. Noise is the production profile, so policies
//! are compared under the interference the paper measures. Output is
//! bit-identical at any `--sim-threads` and `--jobs`.

use pa_bench::{banner, emit, write_blame, write_metrics, write_trace, Args};
use pa_jobs::PolicyKind;
use pa_noise::NoiseProfile;
use pa_simkit::{report, Table};
use pa_workloads::{batch_point, batch_scenario, policy_comparison, run_batch_point, BatchScale};

fn main() {
    let args = Args::parse();
    banner("Multi-job batch policies", args.mode);
    let scale = match args.mode {
        pa_bench::Mode::Quick => BatchScale::Quick,
        pa_bench::Mode::Standard => BatchScale::Standard,
        pa_bench::Mode::Full => BatchScale::Full,
    };
    let scenario = batch_scenario(scale);
    let policies: Vec<PolicyKind> = args
        .policies
        .clone()
        .unwrap_or_else(|| PolicyKind::ALL.to_vec());
    let noise = NoiseProfile::production();
    let rows = policy_comparison(
        &scenario,
        &policies,
        args.seed,
        args.link_bandwidth,
        &noise,
        &args.campaign("multi_job"),
    );
    emit(args.json, &rows, || {
        let mut t = Table::new(
            format!(
                "Batch policies on {} nodes, {} jobs (1 malleable)",
                scenario.nodes,
                scenario.jobs.len()
            ),
            &[
                "policy",
                "makespan ms",
                "wait ms",
                "util %",
                "reconfigs",
                "done",
            ],
        );
        for r in &rows {
            t.row(&[
                r.policy.clone(),
                report::fnum(r.makespan_ms, 2),
                report::fnum(r.mean_queue_wait_ms, 2),
                report::fnum(r.utilization_pct, 1),
                r.reconfigurations.to_string(),
                if r.completed { "yes" } else { "NO" }.to_string(),
            ]);
        }
        print!("{}", t.render());
    });
    if args.metrics_out.is_some() || args.trace_out.is_some() || args.blame_out.is_some() {
        // Re-run the first policy fresh to keep its full observability
        // output (the cache holds scalars only). Deterministic, so this
        // matches what the campaign measured.
        let spec = batch_point(
            &scenario,
            policies[0],
            args.seed,
            args.link_bandwidth,
            &noise,
        );
        let out = run_batch_point(&spec);
        write_metrics(&args, &out.metrics);
        write_trace(&args, &out.spans);
        if args.blame_out.is_some() {
            // Per-job sections from the fresh run, plus its fold as a
            // one-point campaign total for uniformity with the figures.
            let mut cats = pa_blame::Categories::default();
            let mut wall = 0u64;
            for jb in &out.blame {
                cats.add(&jb.cats);
                wall += jb.wall_ns;
            }
            let report = pa_blame::BlameReport {
                title: "multi_job".into(),
                jobs: out.blame.clone(),
                campaigns: vec![pa_blame::CampaignTotals {
                    label: format!("multi_job/{}", policies[0].name()),
                    points: 1,
                    wall_ns: wall,
                    cats,
                }],
                ..pa_blame::BlameReport::default()
            };
            write_blame(&args, &report);
        }
    }
}
