//! Figure 1: the overlap argument — the same interference budget costs
//! the application far less all-CPU availability when it is coordinated.

use pa_bench::{banner, emit, Args, Mode};
use pa_simkit::report;
use pa_workloads::fig1;

fn main() {
    let args = Args::parse();
    banner(
        "Figure 1 · interference overlap vs all-CPU availability",
        args.mode,
    );
    let r = fig1(args.seed, args.mode == Mode::Quick);
    emit(args.json, &r, || {
        println!("                     green (all CPUs run app)   red (some CPU runs noise)");
        println!(
            "random (vanilla)   : {:>8}                      {:>8}",
            report::fnum(r.green_vanilla, 3),
            report::fnum(r.red_vanilla, 3)
        );
        println!(
            "coordinated (proto): {:>8}                      {:>8}",
            report::fnum(r.green_prototype, 3),
            report::fnum(r.red_prototype, 3)
        );
        println!("(paper: same total red; coordinated scheduling leaves much more green)");
    });
}
