//! Figure 5: mean Allreduce time vs. processor count, 16 tasks/node, the
//! prototype kernel plus co-scheduler. Expect a large improvement and far
//! smaller variability than Figure 3.

use pa_bench::{
    banner, campaign_registry, emit, no_trace_source, require_complete, scale_sweep, write_blame,
    write_metrics, Args, Mode,
};
use pa_simkit::{report, Table};
use pa_workloads::{campaign_blame_totals, run_blame_point, run_scaling_campaign, ScalingConfig};

fn main() {
    let args = Args::parse();
    banner(
        "Figure 5 · Allreduce µs vs processors (prototype + cosched, 16 t/n)",
        args.mode,
    );
    let cfg = scale_sweep(ScalingConfig::fig5(args.mode == Mode::Quick), &args);
    let (points, outcome) = require_complete(run_scaling_campaign(&cfg, &args.campaign("fig5")));
    write_metrics(&args, &campaign_registry("fig5", &outcome));
    if args.blame_out.is_some() {
        let report = pa_blame::BlameReport {
            title: "fig5".into(),
            runs: vec![run_blame_point(&cfg, "fig5")],
            campaigns: vec![campaign_blame_totals("fig5", &outcome.results)],
            ..pa_blame::BlameReport::default()
        };
        write_blame(&args, &report);
    }
    no_trace_source(&args, "fig5");
    emit(args.json, &points, || {
        let mut t = Table::new(
            "Allreduce scaling — prototype kernel + co-scheduler",
            &["procs", "mean µs", "stddev", "min", "max"],
        );
        for p in &points {
            t.row(&[
                p.procs.to_string(),
                report::fnum(p.mean_us, 1),
                report::fnum(p.std_us, 1),
                report::fnum(p.min_us, 1),
                report::fnum(p.max_us, 1),
            ]);
        }
        print!("{}", t.render());
        println!("(paper: ~3x faster than vanilla, small variability; fitted y = 0.22x + 210)");
    });
}
