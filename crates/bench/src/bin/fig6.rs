//! Figure 6: the fitted lines over the Figure 3 and Figure 5 data and the
//! headline slope ratio (paper: 0.70/0.22 ≈ 3.2×, "a speedup of over
//! 300% on synchronizing collectives").

use pa_bench::{
    banner, campaign_registry, emit, no_trace_source, require_complete, scale_sweep, write_blame,
    write_metrics, Args, Mode,
};
use pa_simkit::report;
use pa_workloads::{
    campaign_blame_totals, fig6, run_blame_point, run_scaling_campaign, ScalingConfig,
};

fn main() {
    let args = Args::parse();
    banner("Figure 6 · fitted scaling lines", args.mode);
    let quick = args.mode == Mode::Quick;
    let vcfg = scale_sweep(ScalingConfig::fig3(quick), &args);
    let pcfg = scale_sweep(ScalingConfig::fig5(quick), &args);
    let (vanilla, vout) =
        require_complete(run_scaling_campaign(&vcfg, &args.campaign("fig6/vanilla")));
    let (prototype, pout) = require_complete(run_scaling_campaign(
        &pcfg,
        &args.campaign("fig6/prototype"),
    ));
    let result = fig6(&vanilla, &prototype);
    let mut reg = campaign_registry("fig6.vanilla", &vout);
    reg.merge(&campaign_registry("fig6.prototype", &pout))
        .expect("fig6 registries share histogram layouts");
    write_metrics(&args, &reg);
    if args.blame_out.is_some() {
        // Side-by-side sections: where vanilla loses its time vs. where
        // the prototype spends it — the mechanism behind the slope ratio.
        let report = pa_blame::BlameReport {
            title: "fig6".into(),
            runs: vec![
                run_blame_point(&vcfg, "vanilla"),
                run_blame_point(&pcfg, "prototype"),
            ],
            campaigns: vec![
                campaign_blame_totals("vanilla", &vout.results),
                campaign_blame_totals("prototype", &pout.results),
            ],
            ..pa_blame::BlameReport::default()
        };
        write_blame(&args, &report);
    }
    no_trace_source(&args, "fig6");
    emit(args.json, &result, || {
        println!(
            "vanilla   : y = {}x + {}   (r² {})",
            report::fnum(result.vanilla.slope, 3),
            report::fnum(result.vanilla.intercept, 1),
            report::fnum(result.vanilla.r2, 3)
        );
        println!(
            "prototype : y = {}x + {}   (r² {})",
            report::fnum(result.prototype.slope, 3),
            report::fnum(result.prototype.intercept, 1),
            report::fnum(result.prototype.r2, 3)
        );
        println!(
            "slope ratio (vanilla/prototype): {}x   (paper: 0.70/0.22 = 3.2x)",
            report::fnum(result.slope_ratio, 2)
        );
        for (procs, s) in &result.speedups {
            println!("  speedup at {procs:>5} procs: {}x", report::fnum(*s, 2));
        }
    });
}
