//! Figure 2: the Bulk-Synchronous SPMD cycle — per-rank phase breakdown
//! of the ALE3D proxy's timesteps.

use pa_bench::{banner, emit, Args};
use pa_simkit::report;
use pa_workloads::fig2;

fn main() {
    let args = Args::parse();
    banner(
        "Figure 2 · BSP phase structure (ALE3D proxy, node 0)",
        args.mode,
    );
    let rows = fig2(args.seed);
    emit(args.json, &rows, || {
        println!(
            "{:>5} {:>12} {:>12} {:>12}",
            "rank", "compute ms", "exchange ms", "reduce ms"
        );
        for r in &rows {
            println!(
                "{:>5} {:>12} {:>12} {:>12}",
                r.rank,
                report::fnum(r.compute_ms, 2),
                report::fnum(r.exchange_ms, 2),
                report::fnum(r.reduce_ms, 2)
            );
        }
        println!("(each rank alternates computation and communication phases — Figure 2's cycle)");
    });
}
