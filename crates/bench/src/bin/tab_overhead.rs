//! T-overhead: the §2 claim that OS + daemon activity consumes 0.2%–1.1%
//! of each CPU on production 16-way SP nodes.

use pa_bench::{banner, emit, Args, Mode};
use pa_kernel::SchedOptions;
use pa_noise::NoiseProfile;
use pa_simkit::{report, SimDur, Table};
use pa_workloads::audit_node;

fn main() {
    let args = Args::parse();
    banner("T-overhead · background load audit", args.mode);
    let window = match args.mode {
        Mode::Quick => SimDur::from_secs(30),
        Mode::Standard => SimDur::from_secs(120),
        Mode::Full => SimDur::from_secs(1_800), // one full cron period
    };
    let r = audit_node(
        &NoiseProfile::production(),
        SchedOptions::vanilla(),
        16,
        window,
        args.seed,
    );
    emit(args.json, &r, || {
        let mut t = Table::new(
            format!("Per-thread background CPU over {window}"),
            &["thread", "class", "cpu time", "% of one CPU"],
        );
        for row in &r.rows {
            t.row(&[
                row.name.clone(),
                format!("{:?}", row.class),
                row.cpu_time.to_string(),
                report::fnum(100.0 * row.one_cpu_share, 3),
            ]);
        }
        print!("{}", t.render());
        println!(
            "node total: {}% of one CPU  |  per-CPU: {}%   (paper band: 0.2%–1.1% per CPU)",
            report::fnum(100.0 * r.total_one_cpu_share, 2),
            report::fnum(100.0 * r.per_cpu_share, 3)
        );
    });
}
