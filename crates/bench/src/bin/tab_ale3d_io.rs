//! T-ale3d-io: the §5.3 I/O starvation story — naive favored priorities
//! starve GPFS and *slow the application down*; the detach API helps the
//! bulk phases; I/O-aware priorities (mmfsd 40 / favored 41) fix it.

use pa_bench::{banner, emit, Args, Mode};
use pa_simkit::{report, Table};
use pa_workloads::{tab_ale3d_io, Ale3dSpec};

fn main() {
    let args = Args::parse();
    banner("T-ale3d-io · I/O starvation ablation", args.mode);
    let (nodes, spec) = match args.mode {
        Mode::Quick => (
            2,
            Ale3dSpec {
                timesteps: 8,
                compute_per_step: pa_simkit::SimDur::from_millis(5),
                initial_read_bytes: 1 << 20,
                restart_bytes: 2 << 20,
                plot_every: 2,
                plot_bytes: 1 << 20,
                ..Ale3dSpec::default()
            },
        ),
        Mode::Standard => (8, Ale3dSpec::default()),
        Mode::Full => (59, Ale3dSpec::default()),
    };
    let rows = tab_ale3d_io(nodes, spec, args.seed);
    // A proxy run cut off by the simulation horizon is not a
    // reproduction; report it and exit non-zero after showing the rows.
    let cut: Vec<&str> = rows
        .iter()
        .filter(|r| !r.completed)
        .map(|r| r.label.as_str())
        .collect();
    emit(args.json, &rows, || {
        let mut t = Table::new(
            format!("ALE3D proxy I/O configurations at {nodes} nodes x 16"),
            &["configuration", "run time s", "completed"],
        );
        for r in &rows {
            t.row(&[
                r.label.clone(),
                report::fnum(r.wall_s, 2),
                r.completed.to_string(),
            ]);
        }
        print!("{}", t.render());
        println!(
            "(paper: naive co-scheduling slowed ALE3D; favored=41 just above mmfsd=40 fixed it)"
        );
    });
    if !cut.is_empty() {
        eprintln!(
            "error: T-ale3d-io: {} run(s) cut by the horizon: {}",
            cut.len(),
            cut.join(", ")
        );
        std::process::exit(1);
    }
}
