//! Figure 3: mean Allreduce time vs. processor count, 16 tasks/node,
//! standard (vanilla) kernel. Expect roughly linear growth with large
//! run-to-run variability — not the logarithmic curve the tree algorithm
//! predicts.

use pa_bench::{
    banner, campaign_registry, emit, no_trace_source, require_complete, scale_sweep, write_blame,
    write_metrics, Args, Mode,
};
use pa_simkit::{report, Table};
use pa_workloads::{campaign_blame_totals, run_blame_point, run_scaling_campaign, ScalingConfig};

fn main() {
    let args = Args::parse();
    banner(
        "Figure 3 · Allreduce µs vs processors (vanilla, 16 t/n)",
        args.mode,
    );
    let cfg = scale_sweep(ScalingConfig::fig3(args.mode == Mode::Quick), &args);
    let (points, outcome) = require_complete(run_scaling_campaign(&cfg, &args.campaign("fig3")));
    write_metrics(&args, &campaign_registry("fig3", &outcome));
    if args.blame_out.is_some() {
        // One representative point re-runs fresh with full collective
        // capture (critical path needs per-op samples); the sweep's
        // cached category sums merge alongside it.
        let report = pa_blame::BlameReport {
            title: "fig3".into(),
            runs: vec![run_blame_point(&cfg, "fig3")],
            campaigns: vec![campaign_blame_totals("fig3", &outcome.results)],
            ..pa_blame::BlameReport::default()
        };
        write_blame(&args, &report);
    }
    no_trace_source(&args, "fig3");
    emit(args.json, &points, || {
        let mut t = Table::new(
            "Allreduce scaling — vanilla AIX-like kernel",
            &["procs", "mean µs", "stddev", "min", "max"],
        );
        for p in &points {
            t.row(&[
                p.procs.to_string(),
                report::fnum(p.mean_us, 1),
                report::fnum(p.std_us, 1),
                report::fnum(p.min_us, 1),
                report::fnum(p.max_us, 1),
            ]);
        }
        print!("{}", t.render());
        println!("(paper: linear, high variability; fitted y = 0.70x + 166)");
    });
}
