//! # pa-bench — figure/table regeneration harness
//!
//! One binary per paper figure and table (see DESIGN.md's per-experiment
//! index) plus Criterion benches over the simulation engine. Every binary
//! accepts:
//!
//! * `--quick` — a seconds-scale smoke configuration (small cluster);
//! * `--full`  — the paper-shaped configuration (≥59 nodes; tens of
//!   minutes for the scaling sweeps);
//! * `--json`  — machine-readable output instead of tables;
//! * `--seed N` — override the master seed.
//!
//! The default mode is a balanced configuration that reproduces every
//! qualitative result in a few minutes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use serde::Serialize;

/// Scale at which to run a regeneration binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Smoke scale.
    Quick,
    /// Balanced default.
    Standard,
    /// Paper scale.
    Full,
}

/// Parsed common CLI arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Selected scale.
    pub mode: Mode,
    /// Emit JSON.
    pub json: bool,
    /// Master seed.
    pub seed: u64,
}

impl Args {
    /// Parse `std::env::args`, exiting with usage on error.
    pub fn parse() -> Args {
        let mut mode = Mode::Standard;
        let mut json = false;
        let mut seed = 42u64;
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => mode = Mode::Quick,
                "--full" => mode = Mode::Full,
                "--json" => json = true,
                "--seed" => {
                    seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument '{other}'")),
            }
        }
        Args { mode, json, seed }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!("usage: <bin> [--quick|--full] [--json] [--seed N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Print a serializable result as JSON or run the text closure.
pub fn emit<T: Serialize>(json: bool, value: &T, text: impl FnOnce()) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(value).expect("result serializes")
        );
    } else {
        text();
    }
}

/// Shared header line for the text reports.
pub fn banner(title: &str, mode: Mode) {
    println!("=== PACE reproduction · {title} · mode: {mode:?} ===");
}

use pa_simkit::SimDur;
use pa_workloads::ScalingConfig;

/// Apply a mode to a Figure-3/5 sweep configuration.
pub fn scale_sweep(mut cfg: ScalingConfig, mode: Mode, seed: u64) -> ScalingConfig {
    match mode {
        Mode::Quick => {
            cfg.node_counts = vec![2, 4, 8];
            cfg.allreduces = 192;
            cfg.seeds = vec![seed, seed + 1];
            cfg.target_sim_time = None;
        }
        Mode::Standard => {
            cfg.node_counts = vec![4, 8, 16, 32, 59];
            cfg.seeds = vec![seed, seed + 1];
            cfg.target_sim_time = Some(SimDur::from_millis(2_000));
        }
        Mode::Full => {
            cfg.seeds = vec![seed, seed + 1, seed + 2];
        }
    }
    cfg
}
