//! # pa-bench — figure/table regeneration harness
//!
//! One binary per paper figure and table (see DESIGN.md's per-experiment
//! index) plus Criterion benches over the simulation engine. Every binary
//! accepts:
//!
//! * `--quick` — a seconds-scale smoke configuration (small cluster);
//! * `--full`  — the paper-shaped configuration (≥59 nodes; tens of
//!   minutes for the scaling sweeps);
//! * `--json`  — machine-readable output instead of tables;
//! * `--seed N` — override the master seed;
//! * `--jobs N` — campaign worker threads (results are bit-identical at
//!   any job count);
//! * `--sim-threads N` — cluster-engine worker threads inside each run
//!   (results are bit-identical at any setting: the engine is
//!   conservatively parallel with a deterministic barrier merge);
//! * `--no-cache` — skip the `results/cache/` result cache entirely;
//! * `--rerun` — ignore cached entries but refresh them with new runs;
//! * `--link-bandwidth B|unlimited` — per-node link capacity in bytes/sec
//!   (finite values enable switch contention; default `unlimited` keeps
//!   the legacy free-overlap fabric);
//! * `--checkpoint-every DUR` — write a mid-run checkpoint for each fresh
//!   campaign point every DUR of simulated time (integer with optional
//!   `ns`/`us`/`ms`/`s` suffix; bare integers are ms). Needs the result
//!   cache; a killed invocation resumes each partially-run point from its
//!   last checkpoint, and the resumed results are bit-identical to an
//!   uninterrupted run's;
//! * `--policies LIST` — batch placement policies for the `multi_job`
//!   sweep (comma-separated `fcfs`/`backfill`/`pack`/`equi`; default all);
//! * `--dispatcher NAME` — kernel dispatcher policy (`aix` reproduces the
//!   2003 priority-band semantics, the default; `cfs`/`eevdf` re-ask the
//!   paper's question under weighted-fair scheduling).
//!
//! The default mode is a balanced configuration that reproduces every
//! qualitative result in a few minutes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use pa_campaign::{Cache, ExecutorConfig, TruncatedPoints};
use serde::Serialize;

/// Scale at which to run a regeneration binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Smoke scale.
    Quick,
    /// Balanced default.
    Standard,
    /// Paper scale.
    Full,
}

/// Parsed common CLI arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Selected scale.
    pub mode: Mode,
    /// Emit JSON.
    pub json: bool,
    /// Master seed.
    pub seed: u64,
    /// Campaign worker threads.
    pub jobs: usize,
    /// Cluster-engine worker threads per run.
    pub sim_threads: usize,
    /// Disable the result cache.
    pub no_cache: bool,
    /// Ignore cached entries (but refresh them).
    pub rerun: bool,
    /// Per-node link capacity, bytes/sec; `None` = unlimited (legacy
    /// free-overlap fabric, the default).
    pub link_bandwidth: Option<f64>,
    /// Periodic mid-run checkpoint interval (sim time) for fresh campaign
    /// points; `None` disables checkpointing. Requires the result cache
    /// (checkpoints live under `results/cache/checkpoints/`).
    pub checkpoint_every: Option<SimDur>,
    /// Write a `pa-obs` metrics snapshot (canonical JSON) here.
    pub metrics_out: Option<std::path::PathBuf>,
    /// Write a Chrome trace-event span timeline here (open in Perfetto
    /// or `chrome://tracing`).
    pub trace_out: Option<std::path::PathBuf>,
    /// Write a wait-state blame report (canonical JSON) here. Scaling
    /// sweeps re-run one representative point with full collective
    /// capture for the critical path and merge the remaining points'
    /// cached category sums.
    pub blame_out: Option<std::path::PathBuf>,
    /// Batch placement policies to compare (`multi_job` only): names from
    /// `pa_jobs::PolicyKind::parse`, comma-separated. `None` = all.
    pub policies: Option<Vec<pa_jobs::PolicyKind>>,
    /// Kernel dispatcher policy (`aix`/`cfs`/`eevdf`); `aix` is the
    /// paper-faithful default.
    pub dispatcher: pa_kernel::DispatcherKind,
}

impl Args {
    /// Parse `std::env::args`, exiting with usage on error.
    pub fn parse() -> Args {
        let mut args = Args {
            mode: Mode::Standard,
            json: false,
            seed: 42,
            jobs: 1,
            sim_threads: 1,
            no_cache: false,
            rerun: false,
            link_bandwidth: None,
            checkpoint_every: None,
            metrics_out: None,
            trace_out: None,
            blame_out: None,
            policies: None,
            dispatcher: pa_kernel::DispatcherKind::Aix,
        };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--quick" => args.mode = Mode::Quick,
                "--full" => args.mode = Mode::Full,
                "--json" => args.json = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs an integer"));
                }
                "--jobs" => {
                    args.jobs = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage("--jobs needs a positive integer"));
                }
                "--sim-threads" => {
                    args.sim_threads = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage("--sim-threads needs a positive integer"));
                }
                "--no-cache" => args.no_cache = true,
                "--rerun" => args.rerun = true,
                "--link-bandwidth" => {
                    let v = it.next().unwrap_or_else(|| {
                        usage("--link-bandwidth needs bytes/sec or 'unlimited'")
                    });
                    args.link_bandwidth = if v == "unlimited" {
                        None
                    } else {
                        Some(
                            v.parse::<f64>()
                                .ok()
                                .filter(|b| b.is_finite() && *b > 0.0)
                                .unwrap_or_else(|| {
                                    usage(
                                        "--link-bandwidth needs a positive finite bytes/sec \
                                         value or 'unlimited'",
                                    )
                                }),
                        )
                    };
                }
                "--checkpoint-every" => {
                    let v = it.next().unwrap_or_else(|| {
                        usage("--checkpoint-every needs a sim duration (e.g. 500ms, 2s)")
                    });
                    args.checkpoint_every = Some(parse_sim_dur(&v).unwrap_or_else(|| {
                        usage(
                            "--checkpoint-every needs a positive sim duration: an integer \
                             with an optional ns/us/ms/s suffix (bare integers are ms)",
                        )
                    }));
                }
                "--metrics-out" => {
                    args.metrics_out = Some(
                        it.next()
                            .map(std::path::PathBuf::from)
                            .unwrap_or_else(|| usage("--metrics-out needs a path")),
                    );
                }
                "--trace-out" => {
                    args.trace_out = Some(
                        it.next()
                            .map(std::path::PathBuf::from)
                            .unwrap_or_else(|| usage("--trace-out needs a path")),
                    );
                }
                "--blame-out" => {
                    args.blame_out = Some(
                        it.next()
                            .map(std::path::PathBuf::from)
                            .unwrap_or_else(|| usage("--blame-out needs a path")),
                    );
                }
                "--policies" => {
                    let v = it.next().unwrap_or_else(|| {
                        usage("--policies needs a comma-separated list (e.g. fcfs,backfill)")
                    });
                    let parsed: Result<Vec<_>, _> =
                        v.split(',').map(pa_jobs::PolicyKind::parse).collect();
                    args.policies =
                        Some(parsed.unwrap_or_else(|e| usage(&format!("--policies: {e}"))));
                }
                "--dispatcher" => {
                    let v = it
                        .next()
                        .unwrap_or_else(|| usage("--dispatcher needs aix, cfs, or eevdf"));
                    args.dispatcher = pa_kernel::DispatcherKind::parse(&v).unwrap_or_else(|| {
                        usage(&format!(
                            "--dispatcher: unknown policy '{v}' (aix/cfs/eevdf)"
                        ))
                    });
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument '{other}'")),
            }
        }
        // Every figure/table binary builds experiments through
        // `Experiment::new`, which reads this process-wide default.
        pa_core::set_default_sim_threads(args.sim_threads);
        args
    }

    /// Build the campaign executor these arguments describe: `--jobs`
    /// workers, the `results/cache/` content-addressed cache unless
    /// `--no-cache`, lookups bypassed under `--rerun`. Progress goes to
    /// stderr so stdout stays byte-identical across cache states and job
    /// counts.
    pub fn campaign(&self, label: &str) -> ExecutorConfig {
        let mut exec = ExecutorConfig::serial(label).with_jobs(self.jobs);
        exec.progress = true;
        exec.rerun = self.rerun;
        if !self.no_cache {
            match Cache::at(Cache::default_dir()) {
                Ok(c) => exec = exec.with_cache(c),
                Err(e) => eprintln!("warning: result cache disabled: {e}"),
            }
        }
        if let Some(every) = self.checkpoint_every {
            if exec.cache.is_some() {
                exec = exec.with_checkpoint_every(every);
            } else {
                eprintln!("warning: --checkpoint-every ignored: checkpoints need the result cache");
            }
        }
        exec
    }
}

/// Parse a simulated duration: an integer with an optional `ns`/`us`/
/// `ms`/`s` suffix; bare integers are milliseconds. Returns `None` for
/// malformed or zero values.
pub fn parse_sim_dur(s: &str) -> Option<SimDur> {
    let (digits, mul) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1_000_000)
    };
    let n: u64 = digits.parse().ok()?;
    let ns = n.checked_mul(mul)?;
    (ns > 0).then(|| SimDur::from_nanos(ns))
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bin> [--quick|--full] [--json] [--seed N] [--jobs N] [--sim-threads N] \
         [--no-cache] [--rerun] [--link-bandwidth B|unlimited] [--checkpoint-every DUR] \
         [--metrics-out PATH] [--trace-out PATH] [--blame-out PATH] [--policies LIST] \
         [--dispatcher aix|cfs|eevdf]"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// Write the metrics snapshot if `--metrics-out` was given. The snapshot
/// is canonical JSON of simulation-deterministic values only, so it is
/// byte-identical across reruns of the same seed.
pub fn write_metrics(args: &Args, reg: &pa_obs::MetricsRegistry) {
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, reg.snapshot_json()) {
            eprintln!("error: cannot write metrics to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!("metrics snapshot written to {}", path.display());
    }
}

/// Write the Chrome trace-event timeline if `--trace-out` was given.
/// Open the file in Perfetto (<https://ui.perfetto.dev>) or
/// `chrome://tracing`.
pub fn write_trace(args: &Args, timeline: &pa_obs::SpanTimeline) {
    if let Some(path) = &args.trace_out {
        if let Err(e) = std::fs::write(path, timeline.to_chrome_trace()) {
            eprintln!("error: cannot write trace to {}: {e}", path.display());
            std::process::exit(1);
        }
        eprintln!(
            "span timeline ({} events) written to {}",
            timeline.len(),
            path.display()
        );
    }
}

/// Write the blame report if `--blame-out` was given: canonical JSON to
/// the file (byte-identical at any `--sim-threads`/`--jobs`) and the
/// human-readable tables to stderr, so stdout stays byte-stable for the
/// figure output itself.
pub fn write_blame(args: &Args, report: &pa_blame::BlameReport) {
    if let Some(path) = &args.blame_out {
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!(
                "error: cannot write blame report to {}: {e}",
                path.display()
            );
            std::process::exit(1);
        }
        eprint!("{}", report.render());
        eprintln!("blame report written to {}", path.display());
    }
}

/// Note on stderr that this binary has no span source for `--trace-out`
/// (campaign sweeps keep only cacheable scalars per point; use `fig4` or
/// `noise_audit` for timelines).
pub fn no_trace_source(args: &Args, binary: &str) {
    if args.trace_out.is_some() {
        eprintln!(
            "warning: {binary} aggregates cached campaign scalars and keeps no trace; \
             --trace-out ignored (fig4 and examples/noise_audit emit timelines)"
        );
    }
}

/// Deterministic campaign-level metrics: derived only from per-point
/// results (identical whether points came from the cache or fresh runs,
/// at any `--jobs`). Wall-clock campaign stats stay in the manifest.
pub fn campaign_registry(
    label: &str,
    outcome: &pa_campaign::CampaignOutcome,
) -> pa_obs::MetricsRegistry {
    let mut reg = pa_obs::MetricsRegistry::new();
    reg.inc("campaign.points", outcome.results.len() as u64);
    reg.inc("campaign.truncated", outcome.truncated.len() as u64);
    for r in &outcome.results {
        reg.inc("campaign.sim_events", r.events);
        reg.inc("campaign.completed", u64::from(r.completed));
        // Link-contention totals ride along in each point's extras (exact
        // u64 counts stored as f64); summed here they stay deterministic
        // across cache states and job counts like everything else.
        for key in [
            "fabric.link_waits",
            "fabric.link_wait_ns",
            "kernel.dispatches",
        ] {
            if let Some(&v) = r.extra.get(key) {
                reg.inc(key, v as u64);
            }
        }
    }
    let edges: Vec<u64> = pa_core::observe::COLL_US_EDGES.to_vec();
    let name = format!("{label}.mean_allreduce_us");
    reg.declare_histogram(&name, &edges);
    for r in &outcome.results {
        reg.observe(&name, r.mean_allreduce_us.max(0.0).round() as u64);
    }
    reg
}

/// Unwrap a campaign result, exiting non-zero if a fixed-call-count run
/// was cut by the simulation horizon (an incomplete reproduction must
/// not pass silently in scripts or CI).
pub fn require_complete<T>(r: Result<T, TruncatedPoints>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    })
}

/// Print a serializable result as JSON or run the text closure.
pub fn emit<T: Serialize>(json: bool, value: &T, text: impl FnOnce()) {
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(value).expect("result serializes")
        );
    } else {
        text();
    }
}

/// Shared header line for the text reports.
pub fn banner(title: &str, mode: Mode) {
    println!("=== PACE reproduction · {title} · mode: {mode:?} ===");
}

use pa_simkit::SimDur;
use pa_workloads::ScalingConfig;

/// Apply the common arguments (mode, seed, link bandwidth) to a
/// Figure-3/5 sweep configuration.
pub fn scale_sweep(mut cfg: ScalingConfig, args: &Args) -> ScalingConfig {
    let seed = args.seed;
    match args.mode {
        Mode::Quick => {
            cfg.node_counts = vec![2, 4, 8];
            cfg.allreduces = 192;
            cfg.seeds = vec![seed, seed + 1];
            cfg.target_sim_time = None;
        }
        Mode::Standard => {
            cfg.node_counts = vec![4, 8, 16, 32, 59];
            cfg.seeds = vec![seed, seed + 1];
            cfg.target_sim_time = Some(SimDur::from_millis(2_000));
        }
        Mode::Full => {
            cfg.seeds = vec![seed, seed + 1, seed + 2];
        }
    }
    cfg.link_bandwidth = args.link_bandwidth;
    cfg.kernel.dispatcher = args.dispatcher;
    cfg
}
