//! Criterion benches over the simulation engine's hot paths: the event
//! calendar, ready queues, RNG streams, and collective schedule
//! generation. These bound how large a cluster the harness can simulate
//! per wall-clock second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pa_kernel::{DispatchKey, Prio, ReadyQueue, Tid};
use pa_mpi::coll;
use pa_simkit::{EventQueue, SeedSpace, SimDur, SimTime};
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue/push_pop_10k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..10_000u32 {
                    // Pseudo-random but deterministic times.
                    let t =
                        SimTime::from_nanos(u64::from(i.wrapping_mul(2_654_435_761) % 1_000_000));
                    q.schedule(t, i);
                }
                let mut acc = 0u64;
                while let Some((_, v)) = q.pop() {
                    acc += u64::from(v);
                }
                black_box(acc)
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("event_queue/interleaved_with_cancel", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                let mut ids = Vec::with_capacity(64);
                for round in 0..1_000u64 {
                    let base = SimTime::from_nanos(round * 1_000);
                    for k in 0..8u32 {
                        ids.push(q.schedule(base + SimDur::from_nanos(u64::from(k) * 7 + 1), k));
                    }
                    // Cancel half (stale preemption timers).
                    for id in ids.drain(..).skip(4) {
                        q.cancel(id);
                    }
                    while q.peek_time().is_some_and(|t| t <= base) {
                        black_box(q.pop());
                    }
                }
                while q.pop().is_some() {}
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_ready_queue(c: &mut Criterion) {
    c.bench_function("ready_queue/push_pop_64", |b| {
        b.iter(|| {
            let mut q = ReadyQueue::new();
            for i in 0..64u32 {
                q.push(Tid(i), DispatchKey::from_prio(Prio((i % 100) as u8)));
            }
            while let Some(x) = q.pop() {
                black_box(x);
            }
        })
    });

    c.bench_function("ready_queue/remove_interleaved_256", |b| {
        b.iter(|| {
            let mut q = ReadyQueue::new();
            for i in 0..256u32 {
                q.push(Tid(i), DispatchKey::from_prio(Prio((i % 100) as u8)));
            }
            // Steal-style removals from the middle, via the side index.
            for i in (0..256u32).step_by(2) {
                black_box(q.remove(Tid(i)));
            }
            while let Some(x) = q.pop() {
                black_box(x);
            }
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("rng/stream_derivation", |b| {
        let seeds = SeedSpace::new(42);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(seeds.stream_at("bench", i, 0))
        })
    });
    c.bench_function("rng/lognormal_draws_1k", |b| {
        let mut rng = SeedSpace::new(42).stream("bench");
        b.iter(|| {
            let mut acc = SimDur::ZERO;
            for _ in 0..1_000 {
                acc += rng.lognormal_dur(SimDur::from_micros(100), 0.5);
            }
            black_box(acc)
        })
    });
}

fn bench_collectives(c: &mut Criterion) {
    c.bench_function("coll/binomial_schedules_944", |b| {
        b.iter(|| {
            for r in (0..944).step_by(59) {
                black_box(coll::binomial_allreduce(r, 944));
            }
        })
    });
    c.bench_function("coll/recursive_doubling_944", |b| {
        b.iter(|| {
            for r in (0..944).step_by(59) {
                black_box(coll::recursive_doubling_allreduce(r, 944));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_ready_queue,
    bench_rng,
    bench_collectives
);
criterion_main!(benches);
