//! Criterion benches over end-to-end simulation scenarios: what a
//! figure-regeneration point costs. Reported as wall time per simulated
//! run; the figure binaries are sized off these numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use pa_core::{CoschedSetup, Experiment};
use pa_mpi::{MpiOp, OpList, RankWorkload};
use pa_noise::NoiseProfile;
use pa_simkit::{SimDur, SimTime};
use pa_trace::{AttributionReport, CpuTimeline};
use std::hint::black_box;

fn small_cluster_allreduces(cosched: bool) -> f64 {
    let mut make = |_r: u32| -> Box<dyn RankWorkload> {
        Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 64]))
    };
    let mut e = Experiment::new(2, 8)
        .with_cpus_per_node(8)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(7);
    if cosched {
        e = e
            .with_kernel(pa_kernel::SchedOptions::prototype())
            .with_cosched(CoschedSetup::default());
    }
    let out = e.run(&mut make);
    assert!(out.completed);
    out.mean_allreduce_us()
}

fn bench_cluster(c: &mut Criterion) {
    let mut g = c.benchmark_group("scenario");
    g.sample_size(10);
    g.bench_function("16rank_allreduce_vanilla", |b| {
        b.iter(|| black_box(small_cluster_allreduces(false)))
    });
    g.bench_function("16rank_allreduce_prototype", |b| {
        b.iter(|| black_box(small_cluster_allreduces(true)))
    });
    g.bench_function("ale3d_proxy_2x8", |b| {
        b.iter(|| {
            let spec = pa_workloads::Ale3dSpec {
                timesteps: 4,
                compute_per_step: SimDur::from_millis(2),
                initial_read_bytes: 1 << 18,
                restart_bytes: 1 << 18,
                plot_every: 0,
                ..pa_workloads::Ale3dSpec::default()
            };
            black_box(pa_workloads::run_ale3d(
                2,
                spec,
                pa_workloads::AleMode::IoAware,
                7,
            ))
        })
    });
    g.finish();
}

fn bench_trace_analysis(c: &mut Criterion) {
    // Build one traced run, then measure the attribution analysis.
    let mut make = |_r: u32| -> Box<dyn RankWorkload> {
        Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 256]))
    };
    let out = Experiment::new(1, 8)
        .with_cpus_per_node(8)
        .with_noise(NoiseProfile::production().without_cron())
        .with_seed(7)
        .with_trace_node(0)
        .run(&mut make);
    let end = SimTime::ZERO + out.wall;
    c.bench_function("trace/timeline_and_attribution", |b| {
        b.iter(|| {
            let tl = CpuTimeline::build(out.sim.kernel(0).trace(), end);
            black_box(AttributionReport::analyze(
                out.sim.kernel(0).trace(),
                &tl,
                SimTime::ZERO,
                end,
            ))
        })
    });
    c.bench_function("trace/green_fraction", |b| {
        b.iter(|| {
            black_box(pa_workloads::green_fraction(
                out.sim.kernel(0).trace(),
                8,
                SimTime::ZERO,
                end,
            ))
        })
    });
}

criterion_group!(benches, bench_cluster, bench_trace_analysis);
criterion_main!(benches);
