//! Span timelines with Chrome trace-event export.
//!
//! A [`SpanTimeline`] collects begin/end/instant/complete events on
//! (process, track) lanes — by convention process = node, track = CPU or
//! thread — and renders the Chrome trace-event JSON format understood by
//! Perfetto and `chrome://tracing`. Timestamps are [`SimTime`] converted
//! to microseconds (the format's native unit), so a fig4-style outlier
//! can be *looked at*: app ranks going quiet while a cron track lights
//! up across the window.

use pa_simkit::{SimDur, SimTime};
use serde::value::Value;
use std::collections::BTreeMap;

#[derive(Debug, Clone, PartialEq)]
enum Ev {
    /// Duration begin ("B").
    Begin { name: String, t: SimTime },
    /// Duration end ("E"); closes the innermost open span on the track.
    End { t: SimTime },
    /// Complete event ("X") with an explicit duration.
    Complete {
        name: String,
        t: SimTime,
        dur: SimDur,
    },
    /// Instant event ("i"), thread-scoped.
    Instant { name: String, t: SimTime },
}

/// One track's lane: its events plus the open-span stack used to keep
/// begin/end nesting honest.
#[derive(Debug, Clone, Default, PartialEq)]
struct Track {
    events: Vec<Ev>,
    open: Vec<String>,
}

/// A multi-track span recorder exporting Chrome trace-event JSON.
///
/// Tracks are addressed by `(pid, tid)`; name them with
/// [`SpanTimeline::name_process`] / [`SpanTimeline::name_track`] so the
/// viewer shows "node 0" / "cpu 3" instead of bare numbers.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanTimeline {
    tracks: BTreeMap<(u32, u32), Track>,
    process_names: BTreeMap<u32, String>,
    track_names: BTreeMap<(u32, u32), String>,
}

impl SpanTimeline {
    /// An empty timeline.
    pub fn new() -> SpanTimeline {
        SpanTimeline::default()
    }

    /// Name a process (Chrome `process_name` metadata).
    pub fn name_process(&mut self, pid: u32, name: impl Into<String>) {
        self.process_names.insert(pid, name.into());
    }

    /// Name a track (Chrome `thread_name` metadata).
    pub fn name_track(&mut self, pid: u32, tid: u32, name: impl Into<String>) {
        self.track_names.insert((pid, tid), name.into());
    }

    fn track(&mut self, pid: u32, tid: u32) -> &mut Track {
        self.tracks.entry((pid, tid)).or_default()
    }

    /// Open a span on `(pid, tid)` at `t`. Spans nest per track.
    pub fn begin(&mut self, pid: u32, tid: u32, name: impl Into<String>, t: SimTime) {
        let name = name.into();
        let track = self.track(pid, tid);
        track.open.push(name.clone());
        track.events.push(Ev::Begin { name, t });
    }

    /// Close the innermost open span on `(pid, tid)` at `t`. Returns the
    /// closed span's name, or `None` (and records nothing) when no span
    /// is open — an unmatched end is a caller bug, not a crash.
    pub fn end(&mut self, pid: u32, tid: u32, t: SimTime) -> Option<String> {
        let track = self.track(pid, tid);
        let name = track.open.pop()?;
        track.events.push(Ev::End { t });
        Some(name)
    }

    /// Record a closed span of known duration on `(pid, tid)`.
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        name: impl Into<String>,
        start: SimTime,
        dur: SimDur,
    ) {
        self.track(pid, tid).events.push(Ev::Complete {
            name: name.into(),
            t: start,
            dur,
        });
    }

    /// Record an instant marker on `(pid, tid)`.
    pub fn instant(&mut self, pid: u32, tid: u32, name: impl Into<String>, t: SimTime) {
        self.track(pid, tid).events.push(Ev::Instant {
            name: name.into(),
            t,
        });
    }

    /// Current open-span nesting depth of `(pid, tid)`.
    pub fn depth(&self, pid: u32, tid: u32) -> usize {
        self.tracks.get(&(pid, tid)).map_or(0, |t| t.open.len())
    }

    /// Total recorded events across all tracks (metadata excluded).
    pub fn len(&self) -> usize {
        self.tracks.values().map(|t| t.events.len()).sum()
    }

    /// True iff no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the Chrome trace-event JSON (`{"traceEvents": [...]}`).
    ///
    /// Open spans are left open — Perfetto closes them at the trace end,
    /// which matches the "still running at horizon" semantics of the
    /// kernel's dispatch timeline.
    pub fn to_chrome_trace(&self) -> String {
        let mut events: Vec<Value> = Vec::new();
        for (&pid, name) in &self.process_names {
            events.push(meta_event(pid, 0, "process_name", name));
        }
        // Fallback labels: every lane holding events gets name metadata
        // even when the caller registered none, so Perfetto shows
        // "process 3 / track 1" rather than bare numeric ids. Tracks are
        // in a sorted map, so the fallback order is deterministic.
        let mut last_pid = None;
        for &(pid, _) in self.tracks.keys() {
            if last_pid == Some(pid) {
                continue;
            }
            last_pid = Some(pid);
            if !self.process_names.contains_key(&pid) {
                events.push(meta_event(
                    pid,
                    0,
                    "process_name",
                    &format!("process {pid}"),
                ));
            }
        }
        for (&(pid, tid), name) in &self.track_names {
            events.push(meta_event(pid, tid, "thread_name", name));
        }
        for &(pid, tid) in self.tracks.keys() {
            if !self.track_names.contains_key(&(pid, tid)) {
                events.push(meta_event(pid, tid, "thread_name", &format!("track {tid}")));
            }
        }
        for (&(pid, tid), track) in &self.tracks {
            for ev in &track.events {
                events.push(chrome_event(pid, tid, ev));
            }
        }
        let doc = Value::Map(vec![
            ("traceEvents".into(), Value::Seq(events)),
            ("displayTimeUnit".into(), Value::Str("ms".into())),
        ]);
        let mut s = doc.to_json_string();
        s.push('\n');
        s
    }
}

fn base(pid: u32, tid: u32, ph: &str, name: &str, ts: f64) -> Vec<(String, Value)> {
    vec![
        ("name".into(), Value::Str(name.to_string())),
        ("ph".into(), Value::Str(ph.to_string())),
        ("ts".into(), Value::Float(ts)),
        ("pid".into(), Value::UInt(u64::from(pid))),
        ("tid".into(), Value::UInt(u64::from(tid))),
    ]
}

fn meta_event(pid: u32, tid: u32, kind: &str, name: &str) -> Value {
    let mut m = base(pid, tid, "M", kind, 0.0);
    m.push((
        "args".into(),
        Value::Map(vec![("name".into(), Value::Str(name.to_string()))]),
    ));
    Value::Map(m)
}

fn chrome_event(pid: u32, tid: u32, ev: &Ev) -> Value {
    match ev {
        Ev::Begin { name, t } => Value::Map(base(pid, tid, "B", name, t.as_micros_f64())),
        Ev::End { t } => Value::Map(base(pid, tid, "E", "", t.as_micros_f64())),
        Ev::Complete { name, t, dur } => {
            let mut m = base(pid, tid, "X", name, t.as_micros_f64());
            m.push(("dur".into(), Value::Float(dur.as_micros_f64())));
            Value::Map(m)
        }
        Ev::Instant { name, t } => {
            let mut m = base(pid, tid, "i", name, t.as_micros_f64());
            m.push(("s".into(), Value::Str("t".into())));
            Value::Map(m)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn nesting_depth_tracks_begin_end() {
        let mut tl = SpanTimeline::new();
        tl.begin(0, 1, "outer", t(0));
        tl.begin(0, 1, "inner", t(5));
        assert_eq!(tl.depth(0, 1), 2);
        assert_eq!(tl.end(0, 1, t(8)).as_deref(), Some("inner"));
        assert_eq!(tl.end(0, 1, t(9)).as_deref(), Some("outer"));
        assert_eq!(tl.depth(0, 1), 0);
        assert_eq!(tl.end(0, 1, t(10)), None, "unmatched end is rejected");
        assert_eq!(tl.len(), 4);
    }

    #[test]
    fn tracks_are_independent() {
        let mut tl = SpanTimeline::new();
        tl.begin(0, 1, "a", t(0));
        tl.begin(3, 7, "b", t(1));
        assert_eq!(tl.depth(0, 1), 1);
        assert_eq!(tl.depth(3, 7), 1);
        assert_eq!(tl.depth(0, 2), 0);
        assert_eq!(tl.end(3, 7, t(2)).as_deref(), Some("b"));
        assert_eq!(tl.depth(0, 1), 1, "other track's end must not close ours");
    }

    #[test]
    fn chrome_trace_parses_and_has_expected_shape() {
        let mut tl = SpanTimeline::new();
        tl.name_process(0, "node 0");
        tl.name_track(0, 2, "cpu 2");
        tl.begin(0, 2, "dispatch", t(10));
        tl.end(0, 2, t(20));
        tl.complete(0, 2, "allreduce", t(30), SimDur::from_micros(5));
        tl.instant(0, 2, "tick", t(40));
        let json = tl.to_chrome_trace();
        let v = serde_json::parse(&json).expect("chrome trace must parse");
        let top = v.as_map().unwrap();
        let events = serde::value::get(top, "traceEvents")
            .unwrap()
            .as_seq()
            .unwrap();
        // 2 metadata + 4 recorded events.
        assert_eq!(events.len(), 6);
        let phases: Vec<&str> = events
            .iter()
            .map(|e| {
                serde::value::get(e.as_map().unwrap(), "ph")
                    .unwrap()
                    .as_str()
                    .unwrap()
            })
            .collect();
        assert_eq!(phases, vec!["M", "M", "B", "E", "X", "i"]);
        let x = events[4].as_map().unwrap();
        assert_eq!(serde::value::get(x, "ts").unwrap().as_f64(), Some(30.0));
        assert_eq!(serde::value::get(x, "dur").unwrap().as_f64(), Some(5.0));
    }

    #[test]
    fn unnamed_lanes_get_fallback_metadata() {
        let mut tl = SpanTimeline::new();
        tl.name_process(0, "node 0"); // explicit name wins
        tl.begin(0, 1, "a", t(0));
        tl.begin(7, 3, "b", t(1)); // entirely unnamed lane
        let json = tl.to_chrome_trace();
        assert!(json.contains("node 0"));
        assert!(!json.contains("process 0"), "explicit name must win");
        assert!(json.contains("process 7"), "unnamed pid needs a label");
        assert!(json.contains("track 1") && json.contains("track 3"));
    }

    #[test]
    fn chrome_trace_round_trips_through_serde_json() {
        let mut tl = SpanTimeline::new();
        tl.name_process(1, "node 1");
        tl.begin(1, 0, "phase", t(1));
        tl.end(1, 0, t(2));
        let json = tl.to_chrome_trace();
        let v = serde_json::parse(&json).unwrap();
        let rendered = v.to_json_string();
        let v2 = serde_json::parse(&rendered).unwrap();
        assert_eq!(v, v2, "parse → render → parse must be a fixed point");
    }
}
