//! Deterministic metrics: counters, gauges, fixed-bucket histograms.
//!
//! The registry is a post-run aggregation point, not a hot-path sink.
//! Instrumented crates count with plain `u64` fields on their own
//! structs (no locks, no string lookups per event — the sim is
//! single-threaded) and fold the totals in here once the run ends.
//! Keys are sorted `BTreeMap`s and the snapshot renders through the
//! insertion-ordered `serde` value model, so two snapshots of the same
//! deterministic run are byte-identical — the property the campaign
//! layer and the CI smoke test rely on.
//!
//! Wall-clock quantities (elapsed seconds, events/sec, cache hits) must
//! **never** enter the registry; they vary run-to-run and would break
//! snapshot identity. Report those beside the snapshot instead (see
//! `BENCH_engine.json`). Quantities that are simulation-meaningful but
//! *process*-local — a resumed run's restore count, for instance — go
//! under the [`LOCAL_PREFIX`] namespace, which the canonical snapshot
//! omits so determinism diffs need no text filtering.

use serde::value::Value;
use std::collections::BTreeMap;

/// Namespace prefix for process-local (non-deterministic) metrics. Keys
/// starting with this prefix stay readable through [`MetricsRegistry`]
/// accessors and the full snapshot, but are excluded from the canonical
/// snapshot that determinism fingerprints and CI byte-diffs consume.
pub const LOCAL_PREFIX: &str = "local.";

/// Two histograms with different bucket layouts were asked to merge.
/// Merging them would silently misbin counts, so it is rejected with
/// enough context to find the offending series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeError {
    /// Registry key of the offending histogram (empty when two bare
    /// [`Histogram`]s were merged outside a registry).
    pub name: String,
    /// Bucket edges of the left-hand (accumulating) histogram.
    pub expected: Vec<u64>,
    /// Bucket edges of the histogram being folded in.
    pub got: Vec<u64>,
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.name.is_empty() {
            write!(
                f,
                "histogram bucket layouts differ: expected edges {:?}, got {:?}",
                self.expected, self.got
            )
        } else {
            write!(
                f,
                "histogram {:?} bucket layouts differ: expected edges {:?}, got {:?}",
                self.name, self.expected, self.got
            )
        }
    }
}

impl std::error::Error for MergeError {}

/// A fixed-bucket histogram of `u64` observations.
///
/// `edges` are inclusive upper bounds of the first `edges.len()` buckets;
/// one overflow bucket catches everything above the last edge. Bucket
/// layout is fixed at construction so merged histograms always agree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// A histogram with the given inclusive bucket upper bounds.
    ///
    /// # Panics
    /// Panics if `edges` is empty or not strictly increasing.
    pub fn new(edges: &[u64]) -> Histogram {
        assert!(!edges.is_empty(), "histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Record `n` observations of `value` at once — the bulk form used to
    /// rebuild a histogram from pre-binned per-run counts. A no-op when
    /// `n` is zero.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self
            .edges
            .iter()
            .position(|&e| value <= e)
            .unwrap_or(self.edges.len());
        self.counts[idx] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Bucket upper bounds (the overflow bucket has no edge).
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Per-bucket counts; `counts().len() == edges().len() + 1`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Deterministic quantile estimate from the bucket counts: the upper
    /// edge of the bucket holding the `ceil(q·count)`-th observation (the
    /// recorded maximum for the overflow bucket, which has no edge).
    /// `None` when empty. `q` is clamped to `(0, 1]`; being bucket-based,
    /// the estimate depends only on the counts, never on float summation
    /// order, so exports stay byte-identical.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.edges.get(i).copied().unwrap_or(self.max));
            }
        }
        Some(self.max)
    }

    /// Fold another histogram in. Rejected with a [`MergeError`] when the
    /// bucket layouts differ — merging histograms with different edges
    /// would silently misbin counts.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MergeError> {
        if self.edges != other.edges {
            return Err(MergeError {
                name: String::new(),
                expected: self.edges.clone(),
                got: other.edges.clone(),
            });
        }
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        Ok(())
    }

    fn to_value(&self) -> Value {
        Value::Map(vec![
            (
                "edges".into(),
                Value::Seq(self.edges.iter().map(|&e| Value::UInt(e)).collect()),
            ),
            (
                "counts".into(),
                Value::Seq(self.counts.iter().map(|&c| Value::UInt(c)).collect()),
            ),
            ("count".into(), Value::UInt(self.count)),
            ("sum".into(), Value::UInt(self.sum)),
            ("min".into(), Value::UInt(self.min().unwrap_or(0))),
            ("max".into(), Value::UInt(self.max().unwrap_or(0))),
            ("p50".into(), Value::UInt(self.quantile(0.50).unwrap_or(0))),
            ("p95".into(), Value::UInt(self.quantile(0.95).unwrap_or(0))),
            ("p99".into(), Value::UInt(self.quantile(0.99).unwrap_or(0))),
        ])
    }
}

/// A sorted-key registry of counters, gauges, and histograms with a
/// canonical-JSON snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to counter `name` (created at zero on first use).
    pub fn inc(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Current value of counter `name` (zero when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set gauge `name` to `value` (last write wins).
    pub fn set_gauge(&mut self, name: &str, value: i64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// Declare histogram `name` with the given bucket edges (idempotent;
    /// an existing histogram keeps its layout and contents).
    pub fn declare_histogram(&mut self, name: &str, edges: &[u64]) {
        self.histograms
            .entry(name.to_string())
            .or_insert_with(|| Histogram::new(edges));
    }

    /// Record `value` into histogram `name`.
    ///
    /// # Panics
    /// Panics when the histogram was never declared — bucket layout must
    /// be chosen deliberately, not defaulted at first observation.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram {name:?} not declared"))
            .record(value);
    }

    /// Record `n` observations of `value` into histogram `name`.
    ///
    /// # Panics
    /// Panics when the histogram was never declared, like
    /// [`MetricsRegistry::observe`].
    pub fn observe_n(&mut self, name: &str, value: u64, n: u64) {
        self.histograms
            .get_mut(name)
            .unwrap_or_else(|| panic!("histogram {name:?} not declared"))
            .record_n(value, n);
    }

    /// Histogram `name`, if declared.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// True iff nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Fold `other` in: counters add, gauges take `other`'s value when
    /// set, histograms merge bucket-wise. This is how campaign-level
    /// aggregates are built from per-point registries.
    ///
    /// Fails with a [`MergeError`] naming the offending histogram when
    /// two same-named histograms have different bucket layouts; counters
    /// and gauges folded before the mismatch remain applied.
    pub fn merge(&mut self, other: &MetricsRegistry) -> Result<(), MergeError> {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h).map_err(|e| MergeError {
                    name: k.clone(),
                    ..e
                })?,
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        Ok(())
    }

    /// The canonical snapshot as a structured value (sorted keys
    /// throughout). Metrics in the [`LOCAL_PREFIX`] namespace are
    /// excluded: they are process-local by design (restore counts, wall
    /// clocks) and must not leak into determinism fingerprints.
    pub fn snapshot_value(&self) -> Value {
        self.snapshot_value_filtered(true)
    }

    /// Like [`MetricsRegistry::snapshot_value`] but including the
    /// `local.*` namespace — for debugging output, never for fingerprints
    /// or byte-compared artifacts.
    pub fn snapshot_value_full(&self) -> Value {
        self.snapshot_value_filtered(false)
    }

    fn snapshot_value_filtered(&self, canonical: bool) -> Value {
        let keep = |k: &str| !(canonical && k.starts_with(LOCAL_PREFIX));
        let counters = self
            .counters
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, &v)| (k.clone(), Value::UInt(v)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, &v)| (k.clone(), Value::Int(v)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .filter(|(k, _)| keep(k))
            .map(|(k, h)| (k.clone(), h.to_value()))
            .collect();
        Value::Map(vec![
            ("counters".into(), Value::Map(counters)),
            ("gauges".into(), Value::Map(gauges)),
            ("histograms".into(), Value::Map(histograms)),
        ])
    }

    /// Canonical JSON snapshot: sorted keys, stable formatting, `local.*`
    /// excluded. Two snapshots of the same deterministic run compare
    /// byte-equal — with no text filtering needed downstream.
    pub fn snapshot_json(&self) -> String {
        let mut s = self.snapshot_value().to_json_string_pretty();
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut r = MetricsRegistry::new();
        r.inc("a", 2);
        r.inc("a", 3);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn gauges_last_write_wins() {
        let mut r = MetricsRegistry::new();
        r.set_gauge("depth", 4);
        r.set_gauge("depth", -1);
        assert_eq!(r.gauge("depth"), Some(-1));
        assert_eq!(r.gauge("missing"), None);
    }

    #[test]
    fn histogram_bucket_edges_are_inclusive_upper_bounds() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        for v in [0, 10, 11, 100, 101, 1000, 1001, u64::MAX] {
            h.record(v);
        }
        // buckets: ≤10, ≤100, ≤1000, overflow
        assert_eq!(h.counts(), &[2, 2, 2, 2]);
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new(&[10, 100]);
        bulk.record_n(7, 3);
        bulk.record_n(50, 0); // no-op: count, min, max untouched
        bulk.record_n(200, 2);
        let mut single = Histogram::new(&[10, 100]);
        for _ in 0..3 {
            single.record(7);
        }
        for _ in 0..2 {
            single.record(200);
        }
        assert_eq!(bulk, single);
    }

    #[test]
    fn quantiles_follow_bucket_edges() {
        let mut h = Histogram::new(&[10, 100, 1000]);
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..90 {
            h.record(5); // ≤10 bucket
        }
        for _ in 0..9 {
            h.record(50); // ≤100 bucket
        }
        h.record(5000); // overflow
        assert_eq!(h.quantile(0.50), Some(10));
        assert_eq!(h.quantile(0.95), Some(100));
        // The 100th observation lands in the overflow bucket, which has
        // no edge — the recorded max stands in.
        assert_eq!(h.quantile(1.0), Some(5000));
        assert_eq!(h.quantile(0.99), Some(100));
        let v = h.to_value().to_json_string_pretty();
        assert!(v.contains("\"p50\""), "export must carry quantiles: {v}");
        assert!(v.contains("\"p95\"") && v.contains("\"p99\""));
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_edges_rejected() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    #[should_panic(expected = "not declared")]
    fn undeclared_histogram_rejected() {
        let mut r = MetricsRegistry::new();
        r.observe("nope", 1);
    }

    #[test]
    fn merge_adds_counters_and_buckets() {
        let mut a = MetricsRegistry::new();
        a.inc("x", 1);
        a.declare_histogram("h", &[5]);
        a.observe("h", 3);
        let mut b = MetricsRegistry::new();
        b.inc("x", 2);
        b.inc("y", 7);
        b.set_gauge("g", 9);
        b.declare_histogram("h", &[5]);
        b.observe("h", 8);
        a.merge(&b).expect("layouts match");
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 7);
        assert_eq!(a.gauge("g"), Some(9));
        assert_eq!(a.histogram("h").unwrap().counts(), &[1, 1]);
    }

    #[test]
    fn merge_rejects_mismatched_layouts_by_name() {
        let mut a = Histogram::new(&[5, 10]);
        let b = Histogram::new(&[5, 20]);
        let err = a.merge(&b).unwrap_err();
        assert_eq!(err.expected, vec![5, 10]);
        assert_eq!(err.got, vec![5, 20]);
        assert!(err.name.is_empty());
        assert!(err.to_string().contains("bucket layouts differ"));

        let mut ra = MetricsRegistry::new();
        ra.declare_histogram("lat", &[5, 10]);
        let mut rb = MetricsRegistry::new();
        rb.declare_histogram("lat", &[5, 20]);
        let err = ra.merge(&rb).unwrap_err();
        assert_eq!(err.name, "lat");
        assert!(
            err.to_string().contains("\"lat\""),
            "error must name the series: {err}"
        );
        // A matching registry still merges after the failed attempt.
        let mut rc = MetricsRegistry::new();
        rc.declare_histogram("lat", &[5, 10]);
        rc.observe("lat", 3);
        ra.merge(&rc).expect("matching layout merges");
        assert_eq!(ra.histogram("lat").unwrap().count(), 1);
    }

    #[test]
    fn local_namespace_excluded_from_canonical_snapshot() {
        let mut r = MetricsRegistry::new();
        r.inc("engine.events", 10);
        r.inc("local.checkpoint.restores", 1);
        r.set_gauge("local.wall_ms", 1234);
        r.declare_histogram("local.lat", &[5]);
        r.observe("local.lat", 3);
        // Readable through accessors…
        assert_eq!(r.counter("local.checkpoint.restores"), 1);
        assert_eq!(r.gauge("local.wall_ms"), Some(1234));
        assert!(r.histogram("local.lat").is_some());
        // …but absent from the canonical snapshot.
        let canon = r.snapshot_json();
        assert!(!canon.contains("local."), "local.* leaked: {canon}");
        assert!(canon.contains("engine.events"));
        // The full snapshot keeps them, for debugging.
        let full = r.snapshot_value_full().to_json_string_pretty();
        assert!(full.contains("local.checkpoint.restores"));
        assert!(full.contains("local.wall_ms"));
        assert!(full.contains("local.lat"));
    }

    #[test]
    fn local_metrics_do_not_break_snapshot_identity() {
        // Two runs differing only in local.* metrics — e.g. one resumed
        // from a checkpoint, one not — produce identical canonical
        // snapshots with no text filtering.
        let mut a = MetricsRegistry::new();
        a.inc("run.completed", 1);
        let mut b = MetricsRegistry::new();
        b.inc("run.completed", 1);
        b.inc("local.checkpoint.restores", 2);
        assert_eq!(a.snapshot_json(), b.snapshot_json());
    }

    #[test]
    fn snapshot_is_canonical() {
        // Same contents registered in different orders render identically.
        let mut a = MetricsRegistry::new();
        a.inc("b", 1);
        a.inc("a", 2);
        let mut b = MetricsRegistry::new();
        b.inc("a", 2);
        b.inc("b", 1);
        assert_eq!(a.snapshot_json(), b.snapshot_json());
        assert!(a.snapshot_json().ends_with('\n'));
    }

    #[test]
    fn snapshot_parses_as_json() {
        let mut r = MetricsRegistry::new();
        r.inc("events", 42);
        r.set_gauge("depth", 3);
        r.declare_histogram("lat", &[1, 2]);
        r.observe("lat", 2);
        let v = serde_json::parse(&r.snapshot_json()).expect("snapshot must be valid JSON");
        let top = v.as_map().unwrap();
        let counters = serde::value::get(top, "counters")
            .unwrap()
            .as_map()
            .unwrap();
        assert_eq!(
            serde::value::get(counters, "events").unwrap().as_u64(),
            Some(42)
        );
    }
}
