//! # pa-obs — observability for the simulator itself
//!
//! The paper's methodology is trace-driven: §5 finds every outlier by
//! asking "what ran during this Allreduce". `pa-trace` answers that for
//! the *simulated* machine; this crate answers it for the *simulator* —
//! dispatcher decisions, collective phase timing, co-scheduler window
//! edges, and DES engine throughput all become inspectable artifacts
//! instead of ad-hoc prints.
//!
//! Two pieces:
//!
//! * [`MetricsRegistry`] — counters, gauges, and fixed-bucket histograms
//!   with a canonical-JSON snapshot. Snapshots of the same run are
//!   byte-identical regardless of wall clock, host, or `--jobs`, so they
//!   can serve as regression baselines. Hot paths do **not** touch the
//!   registry: instrumented crates keep plain `u64` counter structs
//!   (e.g. `pa_kernel::KernelStats`) and fold them in post-run.
//! * [`SpanTimeline`] — begin/end/instant events on (process, track)
//!   lanes carrying [`SimTime`](pa_simkit::SimTime), exported as Chrome
//!   trace-event JSON loadable in Perfetto or `chrome://tracing`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod span;

pub use metrics::{Histogram, MergeError, MetricsRegistry, LOCAL_PREFIX};
pub use span::SpanTimeline;
