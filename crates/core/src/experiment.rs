//! The experiment façade: one builder that assembles cluster, kernel
//! options, noise, job, and co-scheduler the way the study's test runs
//! did (§5.2), runs to completion, and hands back everything needed for
//! analysis.
//!
//! ```
//! use pa_core::{Experiment, CoschedSetup};
//! use pa_mpi::{MpiOp, OpList};
//!
//! // 2 nodes × 4 CPUs, prototype kernel + co-scheduler, 8 Allreduces.
//! let out = Experiment::new(2, 4)
//!     .with_cpus_per_node(4)
//!     .with_kernel(pa_kernel::SchedOptions::prototype())
//!     .with_cosched(CoschedSetup::default())
//!     .with_seed(7)
//!     .run(&mut |_rank| {
//!         Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 8]))
//!     });
//! assert!(out.completed);
//! assert!(out.mean_allreduce_us() > 0.0);
//! ```

use crate::cosched::{CoschedDaemon, CoschedParams};
use pa_cluster::{ClusterSim, ClusterSpec, FabricModel};
use pa_kernel::{Endpoint, Prio, SchedOptions, ThreadSpec};
use pa_mpi::{
    fresh_layout, install_job, Job, JobSpec, MpiConfig, OpKind, ProgressSpec, RankWorkload,
};
use pa_simkit::{SeedSpace, SimDur, SimTime};
use pa_trace::{AttributionReport, CpuTimeline, HookMask, ThreadClass};
use serde::{Deserialize, Serialize};

/// Co-scheduler deployment options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoschedSetup {
    /// Priority-cycling parameters.
    pub params: CoschedParams,
    /// Perform the switch-clock synchronization at startup (§4). Without
    /// it, window edges drift apart by the boot-time clock skew.
    pub sync_clocks: bool,
    /// Residual clock error after synchronization.
    pub sync_residual: SimDur,
}

impl Default for CoschedSetup {
    fn default() -> Self {
        CoschedSetup {
            params: CoschedParams::benchmark(),
            sync_clocks: true,
            sync_residual: SimDur::from_micros(20),
        }
    }
}

impl CoschedSetup {
    /// The I/O-aware variant (§5.3 ALE3D fix).
    pub fn io_aware() -> CoschedSetup {
        CoschedSetup {
            params: CoschedParams::io_aware(),
            ..CoschedSetup::default()
        }
    }
}

/// Builder for one cluster run.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Node count.
    pub nodes: u32,
    /// Tasks per node (≤ CPUs per node).
    pub tasks_per_node: u32,
    /// CPUs per node.
    pub cpus_per_node: u8,
    /// Kernel option block (vanilla / prototype / custom).
    pub kernel: SchedOptions,
    /// Interference profile installed on every node.
    pub noise: pa_noise::NoiseProfile,
    /// Co-scheduler, if deployed.
    pub cosched: Option<CoschedSetup>,
    /// MPI library configuration.
    pub mpi: MpiConfig,
    /// MPI timer threads.
    pub progress: Option<ProgressSpec>,
    /// Master seed.
    pub seed: u64,
    /// Boot-time clock skew bound.
    pub skew_max: SimDur,
    /// Fabric constants.
    pub fabric: FabricModel,
    /// Nodes with tracing enabled (study hook set).
    pub trace_nodes: Vec<u32>,
    /// Node whose ranks get full per-call series (Figure-4 style).
    pub watch_node: Option<u32>,
    /// Record full per-call series for *every* rank (blame capture).
    pub record_all_ranks: bool,
    /// Trace ring capacity per node.
    pub trace_capacity: usize,
    /// Give-up horizon.
    pub horizon: SimDur,
    /// Engine worker threads (1 = serial). Results are bit-identical at
    /// any setting; this only changes wall-clock time.
    pub sim_threads: usize,
    /// Periodic checkpoint interval (sim time; None = off). Requires
    /// `checkpoint_to`.
    pub checkpoint_every: Option<SimDur>,
    /// File the periodic checkpointer overwrites.
    pub checkpoint_to: Option<std::path::PathBuf>,
    /// Restore engine + recorder state from this checkpoint right after
    /// boot, then run the remaining tail of the job.
    pub restore_from: Option<std::path::PathBuf>,
}

impl Experiment {
    /// Defaults mirror the study's environment: 16-way nodes, vanilla
    /// kernel, production noise, no co-scheduler, polling MPI with timer
    /// threads, 10 ms clock skew.
    pub fn new(nodes: u32, tasks_per_node: u32) -> Experiment {
        Experiment {
            nodes,
            tasks_per_node,
            cpus_per_node: 16,
            kernel: SchedOptions::vanilla(),
            noise: pa_noise::NoiseProfile::production(),
            cosched: None,
            mpi: MpiConfig::default(),
            progress: Some(ProgressSpec::default()),
            seed: 42,
            skew_max: SimDur::from_millis(10),
            fabric: FabricModel::default(),
            trace_nodes: Vec::new(),
            watch_node: None,
            record_all_ranks: false,
            trace_capacity: 1 << 18,
            horizon: SimDur::from_secs(3_600),
            sim_threads: crate::default_sim_threads(),
            checkpoint_every: None,
            checkpoint_to: None,
            restore_from: None,
        }
    }

    /// Set CPUs per node.
    pub fn with_cpus_per_node(mut self, cpus: u8) -> Self {
        self.cpus_per_node = cpus;
        self
    }

    /// Set the kernel option block.
    pub fn with_kernel(mut self, opts: SchedOptions) -> Self {
        self.kernel = opts;
        self
    }

    /// Set the noise profile.
    pub fn with_noise(mut self, noise: pa_noise::NoiseProfile) -> Self {
        self.noise = noise;
        self
    }

    /// Select the dispatcher policy (a shorthand for mutating
    /// [`SchedOptions::dispatcher`] on the current kernel block).
    pub fn with_dispatcher(mut self, kind: pa_kernel::DispatcherKind) -> Self {
        self.kernel.dispatcher = kind;
        self
    }

    /// Deploy the co-scheduler.
    pub fn with_cosched(mut self, setup: CoschedSetup) -> Self {
        self.cosched = Some(setup);
        self
    }

    /// Set the MPI configuration.
    pub fn with_mpi(mut self, mpi: MpiConfig) -> Self {
        self.mpi = mpi;
        self
    }

    /// Set (or disable, with `None`) the MPI timer threads.
    pub fn with_progress(mut self, progress: Option<ProgressSpec>) -> Self {
        self.progress = progress;
        self
    }

    /// Set the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set (or disable, with `None`) the per-node link capacity in bytes
    /// per second. `None` is the unlimited default: concurrent messages
    /// overlap for free, as before the contention model existed.
    pub fn with_link_bandwidth(mut self, bytes_per_sec: Option<f64>) -> Self {
        self.fabric.link_bandwidth = bytes_per_sec;
        self
    }

    /// Enable tracing on a node.
    pub fn with_trace_node(mut self, node: u32) -> Self {
        self.trace_nodes.push(node);
        self
    }

    /// Record full per-call series for one node's ranks.
    pub fn with_watch_node(mut self, node: u32) -> Self {
        self.watch_node = Some(node);
        self
    }

    /// Record full per-call series for every rank, as
    /// [`crate::observe::blame_of`]'s critical-path extraction needs.
    /// Memory grows with ranks × collectives, so this is for
    /// representative blame runs, not whole campaigns.
    pub fn with_record_all_ranks(mut self) -> Self {
        self.record_all_ranks = true;
        self
    }

    /// Set the give-up horizon.
    pub fn with_horizon(mut self, horizon: SimDur) -> Self {
        self.horizon = horizon;
        self
    }

    /// Set the engine worker thread count, overriding the process-wide
    /// default ([`crate::set_default_sim_threads`]).
    pub fn with_sim_threads(mut self, threads: usize) -> Self {
        self.sim_threads = threads.max(1);
        self
    }

    /// Write a checkpoint to `path` at the first window barrier at or
    /// past each multiple of `every` (sim time). The restored run replays
    /// bit-identically at any thread count.
    pub fn with_checkpoint_every(
        mut self,
        every: SimDur,
        path: impl Into<std::path::PathBuf>,
    ) -> Self {
        self.checkpoint_every = Some(every);
        self.checkpoint_to = Some(path.into());
        self
    }

    /// Resume from a checkpoint file written by an identically-specified
    /// run (same spec, seed, and workload).
    pub fn with_restore_from(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.restore_from = Some(path.into());
        self
    }

    /// Assemble and run. `make_workload` is invoked once per rank.
    pub fn run(self, make_workload: &mut dyn FnMut(u32) -> Box<dyn RankWorkload>) -> RunOutput {
        assert!(
            self.tasks_per_node <= u32::from(self.cpus_per_node),
            "tasks per node exceeds CPUs"
        );
        let seeds = SeedSpace::new(self.seed);
        let spec = ClusterSpec {
            nodes: self.nodes,
            cpus_per_node: self.cpus_per_node,
            options: self.kernel,
            skew_max: self.skew_max,
            trace_capacity: self.trace_capacity,
            fabric: self.fabric,
        };
        let mut sim = ClusterSim::build(&spec, &seeds);
        sim.set_sim_threads(self.sim_threads);

        // Co-scheduler startup: clock sync first (it rewrites the AIX
        // clock's low-order bits from the switch clock), then one daemon
        // per node.
        let layout = fresh_layout();
        let mut cosched_eps: Vec<Option<Endpoint>> = vec![None; self.nodes as usize];
        if let Some(cs) = &self.cosched {
            if cs.sync_clocks {
                sim.sync_clocks(&seeds, cs.sync_residual);
            }
            for node in 0..self.nodes {
                let tid = sim.kernel_mut(node).spawn(
                    ThreadSpec::new("cosched", ThreadClass::Cosched, Prio::COSCHED),
                    Box::new(CoschedDaemon::new(cs.params, self.tasks_per_node)),
                );
                let ep = Endpoint { node, tid };
                layout.write().unwrap().set_cosched(node, ep);
                cosched_eps[node as usize] = Some(ep);
            }
        }

        // The job.
        let job_spec = JobSpec {
            tasks_per_node: self.tasks_per_node,
            mpi: self.mpi,
            progress: self.progress,
            rank_prio: Prio::USER,
        };
        let job = install_job(&mut sim, layout, &job_spec, &seeds, make_workload);

        // Interference. GPFS service endpoints go into the layout so
        // ranks route their I/O through (possibly remote) mmfsd daemons.
        for node in 0..self.nodes {
            let installed = self.noise.install(sim.kernel_mut(node), &seeds, node);
            if let Some(tid) = installed.gpfs {
                job.layout
                    .write()
                    .unwrap()
                    .set_gpfs(node, Endpoint { node, tid });
            }
        }

        // Tracing and watch lists.
        for &node in &self.trace_nodes {
            sim.kernel_mut(node).trace_mut().set_mask(HookMask::study());
        }
        if let Some(node) = self.watch_node {
            let ranks = job.layout.read().unwrap().ranks_on(node);
            job.recorder.lock().unwrap().watch_ranks(&ranks);
        }
        if self.record_all_ranks {
            job.recorder.lock().unwrap().record_all_ranks();
        }

        sim.boot();

        // Checkpointing. The run recorder lives outside the engine but
        // accumulates history, so it rides along in the checkpoint's
        // extras section and is overlaid again on restore.
        let recorder = job.recorder.clone();
        sim.set_checkpoint_extras(Box::new(move || {
            vec![(
                "recorder".to_string(),
                recorder.lock().unwrap().snapshot_value(),
            )]
        }));
        if let (Some(every), Some(path)) = (self.checkpoint_every, &self.checkpoint_to) {
            sim.set_checkpoint_every(every, path.clone());
        }
        if let Some(from) = &self.restore_from {
            let extras = sim
                .restore_with_extras(from)
                .unwrap_or_else(|e| panic!("restore from {}: {e}", from.display()));
            for (key, value) in extras {
                if key == "recorder" {
                    job.recorder
                        .lock()
                        .unwrap()
                        .restore_value(&value)
                        .unwrap_or_else(|e| panic!("restore recorder state: {}", e.0));
                }
            }
        }

        let horizon = SimTime::ZERO + self.horizon;
        let end = sim.run_until_apps_done(horizon);
        let completed = sim.apps_alive() == 0;
        let events = sim.events_processed();
        RunOutput {
            sim,
            job,
            cosched_eps,
            wall: end.since(SimTime::ZERO),
            completed,
            events,
        }
    }
}

/// Results of one run.
pub struct RunOutput {
    /// The post-run cluster (trace buffers, usage counters).
    pub sim: ClusterSim,
    /// Job handles (recorder, layout, thread ids).
    pub job: Job,
    /// Per-node co-scheduler endpoints (None when not deployed).
    pub cosched_eps: Vec<Option<Endpoint>>,
    /// Job completion time (or the horizon, if it never finished).
    pub wall: SimDur,
    /// Did every rank exit?
    pub completed: bool,
    /// Events the simulator processed.
    pub events: u64,
}

impl RunOutput {
    /// Mean per-rank Allreduce time in µs (the Figure 3/5 y-axis).
    pub fn mean_allreduce_us(&self) -> f64 {
        self.job
            .recorder
            .lock()
            .unwrap()
            .mean_rank_dur_us(OpKind::Allreduce)
    }

    /// Fraction of total CPU time consumed by interference classes.
    pub fn interference_fraction(&self) -> f64 {
        let mut busy = 0u64;
        let mut noise = 0u64;
        for n in 0..self.sim.nodes() {
            for row in self.sim.kernel(n).usage_report() {
                busy += row.cpu_time.nanos();
                if row.class.is_interference() {
                    noise += row.cpu_time.nanos();
                }
            }
        }
        if busy == 0 {
            0.0
        } else {
            noise as f64 / busy as f64
        }
    }

    /// Attribution report for an interval on one node (what stole CPU).
    pub fn attribute(&self, node: u32, start: SimTime, end: SimTime) -> AttributionReport {
        let kernel = self.sim.kernel(node);
        let horizon = SimTime::ZERO + self.wall;
        let timeline = CpuTimeline::build(kernel.trace(), horizon);
        AttributionReport::analyze(kernel.trace(), &timeline, start, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_mpi::{MpiOp, OpList};
    use pa_trace::HookId;

    fn allreduce_workload(n: usize) -> impl FnMut(u32) -> Box<dyn RankWorkload> {
        move |_rank| Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; n]))
    }

    #[test]
    fn vanilla_run_completes() {
        let mut wl = allreduce_workload(16);
        let out = Experiment::new(2, 4)
            .with_cpus_per_node(4)
            .with_noise(pa_noise::NoiseProfile::dedicated())
            .with_seed(11)
            .run(&mut wl);
        assert!(out.completed, "job did not finish");
        assert!(out.mean_allreduce_us() > 0.0);
        assert_eq!(
            out.job.recorder.lock().unwrap().count(OpKind::Allreduce),
            16
        );
        out.job
            .recorder
            .lock()
            .unwrap()
            .verify_complete(8)
            .expect("all ranks in all ops");
    }

    #[test]
    fn cosched_registers_and_boosts_tasks() {
        // Long enough that the co-scheduler (woken lazily, one tick after
        // the registration messages arrive) actually runs before the job
        // exits.
        let mut wl = allreduce_workload(1500);
        let out = Experiment::new(2, 4)
            .with_cpus_per_node(4)
            .with_noise(pa_noise::NoiseProfile::dedicated())
            .with_cosched(CoschedSetup::default())
            .with_trace_node(0)
            .with_seed(12)
            .run(&mut wl);
        assert!(out.completed);
        // Priority changes must have been applied to the ranks.
        let prio_changes = out
            .sim
            .kernel(0)
            .trace()
            .events()
            .filter(|e| e.hook == HookId::PrioChange)
            .count();
        assert!(prio_changes >= 4, "co-scheduler never adjusted priorities");
        // Ranks should have been boosted to FAVORED at some point.
        let favored_seen = out
            .sim
            .kernel(0)
            .trace()
            .events()
            .any(|e| e.hook == HookId::PrioChange && e.aux == u64::from(Prio::FAVORED.0));
        assert!(favored_seen, "no favored boost observed");
    }

    #[test]
    fn cosched_reduces_interference_impact() {
        // With heavy noise, the co-scheduled prototype must beat vanilla
        // on mean Allreduce time. A single seed at this tiny scale can be
        // a coin flip, so compare means over a few seeds; the small
        // cluster keeps the test quick.
        let noisy = pa_noise::NoiseProfile::production()
            .without_cron()
            .scaled(3.0);
        let run = |cosched: bool, kernel: SchedOptions, seed: u64| {
            let mut wl = allreduce_workload(600);
            let mut e = Experiment::new(2, 4)
                .with_cpus_per_node(4)
                .with_kernel(kernel)
                .with_noise(noisy.clone())
                .with_seed(seed);
            if cosched {
                e = e.with_cosched(CoschedSetup::default());
            }
            let out = e.run(&mut wl);
            assert!(out.completed);
            out.mean_allreduce_us()
        };
        let seeds = [13u64, 14, 15];
        let mean = |cosched: bool, kernel: SchedOptions| {
            seeds.iter().map(|&s| run(cosched, kernel, s)).sum::<f64>() / seeds.len() as f64
        };
        let vanilla = mean(false, SchedOptions::vanilla());
        let proto = mean(true, SchedOptions::prototype());
        assert!(
            proto < vanilla,
            "prototype+cosched ({proto:.1}µs) should beat vanilla ({vanilla:.1}µs)"
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let mut wl = allreduce_workload(32);
            let out = Experiment::new(2, 4)
                .with_cpus_per_node(4)
                .with_seed(99)
                .run(&mut wl);
            (out.wall, out.events, out.mean_allreduce_us().to_bits())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fair_dispatchers_complete_and_are_deterministic() {
        for kind in [
            pa_kernel::DispatcherKind::Cfs,
            pa_kernel::DispatcherKind::Eevdf,
        ] {
            let run = |threads: usize| {
                let mut wl = allreduce_workload(32);
                let out = Experiment::new(2, 4)
                    .with_cpus_per_node(4)
                    .with_dispatcher(kind)
                    .with_sim_threads(threads)
                    .with_seed(31)
                    .run(&mut wl);
                assert!(out.completed, "{kind:?} job did not finish");
                (out.wall, out.events, out.mean_allreduce_us().to_bits())
            };
            // Bit-identical across runs and across shard counts.
            assert_eq!(run(1), run(1), "{kind:?} not deterministic");
            assert_eq!(run(1), run(3), "{kind:?} varies with sim-threads");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds CPUs")]
    fn too_many_tasks_rejected() {
        let mut wl = allreduce_workload(1);
        let _ = Experiment::new(1, 8).with_cpus_per_node(4).run(&mut wl);
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let path = std::env::temp_dir().join(format!(
            "pa-core-experiment-ckpt-{}.json",
            std::process::id()
        ));
        let base = || {
            Experiment::new(2, 4)
                .with_cpus_per_node(4)
                .with_cosched(CoschedSetup::default())
                .with_noise(pa_noise::NoiseProfile::dedicated())
                .with_seed(21)
        };
        let fingerprint = |out: &RunOutput| {
            (
                out.wall,
                out.events,
                out.completed,
                out.mean_allreduce_us().to_bits(),
            )
        };

        // Uninterrupted reference (no checkpointing at all).
        let mut wl = allreduce_workload(256);
        let reference = base().run(&mut wl);
        let want = fingerprint(&reference);

        // Same run with periodic checkpoints: history unchanged, and the
        // file left behind captures some mid-run barrier.
        let mut wl = allreduce_workload(256);
        let ckpt = base()
            .with_checkpoint_every(SimDur::from_millis(2), &path)
            .run(&mut wl);
        assert_eq!(fingerprint(&ckpt), want, "checkpointing must not perturb");
        assert!(
            ckpt.sim.checkpoints_written() >= 1,
            "run too short to checkpoint"
        );

        // Resume from that barrier in a rebuilt experiment, serial and
        // parallel: identical final state, recorder included.
        for threads in [1usize, 3] {
            let mut wl = allreduce_workload(256);
            let resumed = base()
                .with_sim_threads(threads)
                .with_restore_from(&path)
                .run(&mut wl);
            assert_eq!(fingerprint(&resumed), want, "threads={threads}");
            assert_eq!(
                resumed.sim.checkpoints_written(),
                ckpt.sim.checkpoints_written()
            );
            assert_eq!(resumed.sim.checkpoint_restores(), 1);
            resumed
                .job
                .recorder
                .lock()
                .unwrap()
                .verify_complete(8)
                .expect("restored recorder covers every op on every rank");
        }
        let _ = std::fs::remove_file(&path);
    }
}
