//! # pa-core — parallel-aware co-scheduling (the paper's contribution)
//!
//! The PACE reproduction of *"Improving the Scalability of Parallel Jobs
//! by adding Parallel Awareness to the Operating System"* (Jones et al.,
//! SC'03). This crate is the paper's system proper, built on the
//! simulated substrates (`pa-kernel`, `pa-cluster`, `pa-mpi`, `pa-noise`):
//!
//! * [`CoschedParams`] / [`CoschedDaemon`] — the POE-style co-scheduler:
//!   per-node priority cycling between favored and unfavored windows,
//!   second-boundary alignment over the switch-synchronized clock,
//!   control-pipe task registration, and the attach/detach escape hatch
//!   for I/O phases (§4);
//! * [`AdminTable`] — the `/etc/poe.priority` administrative interface
//!   and `MP_PRIORITY` request flow;
//! * kernel parallel-awareness options re-exported from `pa-kernel`:
//!   [`SchedOptions::vanilla`] (stock AIX) vs [`SchedOptions::prototype`]
//!   (big ticks, simultaneous ticks, improved RT preemption, global
//!   daemon queue — §3);
//! * [`Experiment`] — the façade that assembles a full study-style run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod admin;
pub mod cosched;
pub mod experiment;
pub mod observe;
pub mod schedtune;

pub use admin::{AdminTable, PriorityGrant, PriorityRecord};
pub use cosched::{CoschedDaemon, CoschedParams};
pub use experiment::{CoschedSetup, Experiment, RunOutput};
pub use observe::{
    blame_input_of, blame_of, blame_totals, categories_of, metrics_of, timeline_from_trace,
    timeline_of,
};
pub use schedtune::{render as schedtune_render, schedtune};

// The two kernels the paper compares, re-exported for discoverability.
pub use pa_kernel::SchedOptions;

use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide default for the cluster engine's worker thread count.
/// [`Experiment::new`] reads it, so every harness that builds experiments
/// (figure binaries, campaign runners, examples) picks it up without
/// plumbing a parameter through each call chain. The engine history is
/// bit-identical at any setting; this only trades wall-clock time.
static DEFAULT_SIM_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Set the process-wide default engine thread count (clamped to ≥ 1).
/// Typically called once at startup from `--sim-threads`.
pub fn set_default_sim_threads(threads: usize) {
    DEFAULT_SIM_THREADS.store(threads.max(1), Ordering::Relaxed);
}

/// The current process-wide default engine thread count.
pub fn default_sim_threads() -> usize {
    DEFAULT_SIM_THREADS.load(Ordering::Relaxed)
}
