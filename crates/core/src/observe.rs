//! Folding a finished run into `pa-obs` artifacts.
//!
//! The hot layers (`pa-simkit`, `pa-kernel`, `pa-cluster`) deliberately do
//! not depend on `pa-obs`: they bump plain counter structs inline
//! ([`pa_kernel::KernelStats`], [`pa_simkit::QueueStats`], per-program
//! [`pa_kernel::Program::metrics`]) and this module folds everything into
//! one [`MetricsRegistry`] / [`SpanTimeline`] after the run.
//!
//! Every value placed in the registry is derived from simulation state
//! only — never wall-clock — so a snapshot is byte-identical across
//! reruns of the same seed regardless of host load or `--jobs`.

use crate::experiment::RunOutput;
use pa_obs::{MetricsRegistry, SpanTimeline};
use pa_simkit::SimTime;
use pa_trace::{HookId, TraceBuffer};

/// Bucket edges (µs) for collective-duration histograms: wide enough for
/// the study's sub-millisecond Allreduces and the multi-second stragglers
/// vanilla kernels produce.
pub const COLL_US_EDGES: [u64; 10] = [
    100, 200, 500, 1_000, 2_000, 5_000, 10_000, 50_000, 200_000, 1_000_000,
];

/// Fold a finished run into a metrics registry.
///
/// Counter namespaces: `engine.*` (event-queue self-profile), `run.*`
/// (completion/wall), `cluster.*` (fabric + clock), `kernel.*` (summed
/// over nodes, including per-band runqueue waits), `trace.*` (ring
/// eviction), `prog.<kind>.<metric>` (per-program counters summed over
/// instances), plus `mpi.<op>.global_us` histograms over recorded
/// collectives.
pub fn metrics_of(out: &RunOutput) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();

    // Engine self-profile (deterministic part; events/sec is wall-clock
    // and therefore lives in BENCH_engine.json, not here).
    let q = out.sim.queue_stats();
    reg.inc("engine.events_scheduled", q.scheduled);
    reg.inc("engine.events_popped", q.popped);
    reg.inc("engine.events_cancelled", q.cancelled);
    reg.set_gauge("engine.queue_high_water", q.max_pending as i64);

    reg.inc("run.events", out.events);
    reg.inc("run.completed", u64::from(out.completed));
    reg.set_gauge("run.wall_ns", out.wall.nanos() as i64);

    reg.inc("cluster.messages_routed", out.sim.messages_routed());
    reg.inc("cluster.bytes_routed", out.sim.bytes_routed());
    reg.inc("cluster.clock_resyncs", out.sim.clock_resyncs());
    reg.inc("fabric.fifo_clamps", out.sim.fifo_clamps());
    reg.inc("fabric.link_waits", out.sim.link_waits());
    reg.inc("fabric.link_wait_ns", out.sim.link_wait_ns());
    // Link queueing-delay histogram, rebuilt from the engine's pre-binned
    // counts: each bucket is replayed at its upper edge (overflow at one
    // past the last edge), so sum/min/max are bucket approximations while
    // the bucket counts themselves are exact. Declared only when the
    // finite-link mode produced waits, keeping unlimited-mode snapshots
    // free of an always-empty histogram.
    let link_hist = out.sim.link_wait_hist();
    if link_hist.iter().any(|&c| c > 0) {
        let name = "fabric.link_wait_ns.hist";
        reg.declare_histogram(name, &pa_cluster::LINK_WAIT_EDGES_NS);
        let last = pa_cluster::LINK_WAIT_EDGES_NS[pa_cluster::LINK_WAIT_EDGES_NS.len() - 1];
        for (i, &c) in link_hist.iter().enumerate() {
            let rep = pa_cluster::LINK_WAIT_EDGES_NS
                .get(i)
                .copied()
                .unwrap_or(last + 1);
            reg.observe_n(name, rep, c);
        }
    }
    reg.set_gauge("cluster.nodes", i64::from(out.sim.nodes()));

    // Checkpointing. `checkpoint.writes` and `checkpoint.bytes` are
    // carried across restore, so they match an uninterrupted run's; the
    // restore count is intentionally local to this process, so it lives
    // in the `local.*` namespace that canonical snapshots omit.
    reg.inc("checkpoint.writes", out.sim.checkpoints_written());
    reg.inc("local.checkpoint.restores", out.sim.checkpoint_restores());
    reg.set_gauge("checkpoint.bytes", out.sim.last_checkpoint_bytes() as i64);

    for node in 0..out.sim.nodes() {
        let kernel = out.sim.kernel(node);
        let s = kernel.stats();
        reg.inc("kernel.dispatches", s.dispatches);
        reg.inc("kernel.ctx_switches", s.ctx_switches);
        reg.inc("kernel.preemptions", s.preemptions);
        reg.inc("kernel.ipis_sent", s.ipis_sent);
        reg.inc("kernel.ipis_taken", s.ipis_taken);
        reg.inc("kernel.ticks", s.ticks);
        reg.inc("kernel.callouts_fired", s.callouts_fired);
        reg.inc("kernel.poll_spin_ns", s.poll_spin_ns);
        for (b, band) in pa_kernel::RUNQ_BANDS.iter().enumerate() {
            reg.inc(&format!("kernel.runq_wait_ns.{band}"), s.runq_wait_ns[b]);
            reg.inc(&format!("kernel.runq_waits.{band}"), s.runq_waits[b]);
        }
        reg.inc("trace.dropped_events", kernel.trace().dropped());
        for (kind, name, value) in kernel.program_metrics() {
            reg.inc(&format!("prog.{kind}.{name}"), value);
        }
    }

    // Collective-phase histograms from the recorder's per-op aggregates
    // (global duration: first entry to last completion across ranks).
    let recorder = out.job.recorder.lock().unwrap();
    for kind in [
        pa_mpi::OpKind::Allreduce,
        pa_mpi::OpKind::Barrier,
        pa_mpi::OpKind::Allgather,
        pa_mpi::OpKind::Reduce,
        pa_mpi::OpKind::Bcast,
        pa_mpi::OpKind::Exchange,
    ] {
        let aggs = recorder.aggs(kind);
        if aggs.is_empty() {
            continue;
        }
        let name = format!("mpi.{}.global_us", format!("{kind:?}").to_lowercase());
        reg.declare_histogram(&name, &COLL_US_EDGES);
        for (_seq, agg) in aggs {
            reg.observe(&name, agg.global_dur().micros());
        }
    }
    reg
}

/// Build a span timeline for one node from its trace ring.
///
/// Tracks (Chrome `tid` within process `node`):
/// * `0..cpus` — per-CPU schedule: one span per dispatch (named after the
///   thread), `tick`/`ipi` instants;
/// * `1000 + tid` — per-thread collective phases from `CollBegin`/`CollEnd`
///   pairs;
/// * `900` — priority-change instants (`setprio <thread> -> <prio>`).
///
/// `horizon` closes any span still open when the trace ends so the JSON
/// has no dangling `B` events.
pub fn timeline_from_trace(node: u32, trace: &TraceBuffer, horizon: SimTime) -> SpanTimeline {
    const PRIO_TRACK: u32 = 900;
    const COLL_BASE: u32 = 1_000;

    let mut tl = SpanTimeline::new();
    tl.name_process(node, format!("node{node}"));
    tl.name_track(node, PRIO_TRACK, "priority changes");

    let mut cpus_seen = 0u32;
    for ev in trace.events() {
        match ev.hook {
            HookId::Dispatch => {
                let cpu = u32::from(ev.cpu);
                cpus_seen = cpus_seen.max(cpu + 1);
                // A ring that lost its Undispatch leaves the previous
                // span open; close it at this dispatch boundary.
                if tl.depth(node, cpu) > 0 {
                    tl.end(node, cpu, ev.time);
                }
                tl.begin(node, cpu, trace.thread_name(ev.tid), ev.time);
            }
            HookId::Undispatch => {
                tl.end(node, u32::from(ev.cpu), ev.time);
            }
            HookId::Tick => {
                tl.instant(node, u32::from(ev.cpu), "tick", ev.time);
            }
            HookId::Ipi => {
                tl.instant(node, u32::from(ev.cpu), "ipi", ev.time);
            }
            HookId::PrioChange => {
                let name = format!("setprio {} -> {}", trace.thread_name(ev.tid), ev.aux);
                tl.instant(node, PRIO_TRACK, name, ev.time);
            }
            HookId::CollBegin => {
                let track = COLL_BASE + ev.tid;
                tl.name_track(node, track, format!("{} coll", trace.thread_name(ev.tid)));
                if tl.depth(node, track) > 0 {
                    tl.end(node, track, ev.time);
                }
                tl.begin(node, track, format!("coll#{}", ev.aux), ev.time);
            }
            HookId::CollEnd => {
                tl.end(node, COLL_BASE + ev.tid, ev.time);
            }
            _ => {}
        }
    }
    for cpu in 0..cpus_seen {
        tl.name_track(node, cpu, format!("cpu{cpu}"));
        while tl.depth(node, cpu) > 0 {
            tl.end(node, cpu, horizon);
        }
    }
    // Close collective spans left open (rank killed at the horizon).
    for ev in trace.events() {
        if ev.hook == HookId::CollBegin {
            let track = COLL_BASE + ev.tid;
            while tl.depth(node, track) > 0 {
                tl.end(node, track, horizon);
            }
        }
    }
    tl
}

/// Span timeline of one traced node of a finished run.
///
/// The node must have been traced ([`crate::Experiment::with_trace_node`])
/// or the timeline will be empty.
pub fn timeline_of(out: &RunOutput, node: u32) -> SpanTimeline {
    timeline_from_trace(node, out.sim.kernel(node).trace(), SimTime::ZERO + out.wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoschedSetup, Experiment};
    use pa_mpi::{MpiOp, OpList, RankWorkload};

    fn run(seed: u64) -> RunOutput {
        let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
            Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 256]))
        };
        // Vanilla kernel: its 10 ms tick fires within this short run, so
        // tick/callout counters are exercised too.
        Experiment::new(2, 4)
            .with_cpus_per_node(4)
            .with_cosched(CoschedSetup::default())
            .with_trace_node(0)
            .with_seed(seed)
            .run(&mut wl)
    }

    #[test]
    fn metrics_cover_all_layers() {
        let out = run(5);
        let reg = metrics_of(&out);
        assert!(reg.counter("engine.events_popped") > 0);
        assert!(reg.counter("kernel.dispatches") > 0);
        assert!(reg.counter("kernel.ctx_switches") > 0);
        assert!(reg.counter("kernel.ticks") > 0);
        assert!(reg.counter("cluster.messages_routed") > 0);
        assert!(reg.counter("cluster.clock_resyncs") > 0);
        assert!(reg.counter("prog.cosched.window_applies") > 0);
        assert!(reg.counter("prog.cosched.setprio_sent") > 0);
        assert!(reg.counter("prog.mpi_rank.collectives") > 0);
        let h = reg.histogram("mpi.allreduce.global_us").expect("histogram");
        assert_eq!(h.count(), 256);
        // Waits were attributed to some band.
        let total_waits: u64 = pa_kernel::RUNQ_BANDS
            .iter()
            .map(|b| reg.counter(&format!("kernel.runq_waits.{b}")))
            .sum();
        assert!(total_waits > 0);
    }

    #[test]
    fn link_contention_metrics_surface() {
        let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
            Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 4096 }; 64]))
        };
        // A 1 MB/s link makes every concurrent cross-node send queue.
        let out = Experiment::new(2, 4)
            .with_cpus_per_node(4)
            .with_link_bandwidth(Some(1e6))
            .with_seed(5)
            .run(&mut wl);
        let reg = metrics_of(&out);
        assert!(reg.counter("fabric.link_waits") > 0);
        assert!(reg.counter("fabric.link_wait_ns") > 0);
        let h = reg
            .histogram("fabric.link_wait_ns.hist")
            .expect("histogram declared under contention");
        assert_eq!(h.count(), reg.counter("fabric.link_waits"));

        // The unlimited default records no waits and no histogram.
        let out = run(5);
        let reg = metrics_of(&out);
        assert_eq!(reg.counter("fabric.link_waits"), 0);
        assert!(reg.histogram("fabric.link_wait_ns.hist").is_none());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let a = metrics_of(&run(5)).snapshot_json();
        let b = metrics_of(&run(5)).snapshot_json();
        assert_eq!(a, b);
        let c = metrics_of(&run(6)).snapshot_json();
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn timeline_has_schedule_and_collectives() {
        let out = run(5);
        let tl = timeline_of(&out, 0);
        assert!(!tl.is_empty());
        // Every track is balanced: no dangling open spans.
        let trace = out.sim.kernel(0).trace();
        for ev in trace.events() {
            if ev.hook == HookId::Dispatch {
                assert_eq!(tl.depth(0, u32::from(ev.cpu)), 0);
            }
        }
        let json = tl.to_chrome_trace();
        let v = serde_json::parse(&json).expect("valid chrome trace JSON");
        let events = serde::value::get(v.as_map().unwrap(), "traceEvents")
            .and_then(|e| e.as_seq())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // An untraced node yields an empty timeline.
        assert!(timeline_of(&out, 1).is_empty());
    }
}
