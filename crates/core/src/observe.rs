//! Folding a finished run into `pa-obs` artifacts.
//!
//! The hot layers (`pa-simkit`, `pa-kernel`, `pa-cluster`) deliberately do
//! not depend on `pa-obs`: they bump plain counter structs inline
//! ([`pa_kernel::KernelStats`], [`pa_simkit::QueueStats`], per-program
//! [`pa_kernel::Program::metrics`]) and this module folds everything into
//! one [`MetricsRegistry`] / [`SpanTimeline`] after the run.
//!
//! Every value placed in the registry is derived from simulation state
//! only — never wall-clock — so a snapshot is byte-identical across
//! reruns of the same seed regardless of host load or `--jobs`.

use crate::experiment::RunOutput;
use pa_blame::{BlameInput, Categories, LinkUsage, NoiseSource, OpSpan, RankAccount, RunBlame};
use pa_obs::{MetricsRegistry, SpanTimeline};
use pa_simkit::SimTime;
use pa_trace::{HookId, TraceBuffer};

/// Bucket edges (µs) for collective-duration histograms: wide enough for
/// the study's sub-millisecond Allreduces and the multi-second stragglers
/// vanilla kernels produce.
pub const COLL_US_EDGES: [u64; 10] = [
    100, 200, 500, 1_000, 2_000, 5_000, 10_000, 50_000, 200_000, 1_000_000,
];

/// Fold a finished run into a metrics registry.
///
/// Counter namespaces: `engine.*` (event-queue self-profile), `run.*`
/// (completion/wall), `cluster.*` (fabric + clock), `kernel.*` (summed
/// over nodes, including per-band runqueue waits), `trace.*` (ring
/// eviction), `prog.<kind>.<metric>` (per-program counters summed over
/// instances), plus `mpi.<op>.global_us` histograms over recorded
/// collectives.
pub fn metrics_of(out: &RunOutput) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();

    // Engine self-profile (deterministic part; events/sec is wall-clock
    // and therefore lives in BENCH_engine.json, not here).
    let q = out.sim.queue_stats();
    reg.inc("engine.events_scheduled", q.scheduled);
    reg.inc("engine.events_popped", q.popped);
    reg.inc("engine.events_cancelled", q.cancelled);
    reg.inc("engine.compactions", q.compactions);
    reg.set_gauge("engine.queue_high_water", q.max_pending as i64);
    reg.set_gauge("engine.queue_tombstones", q.tombstones as i64);
    reg.inc("engine.windows_run", out.sim.windows_run());
    reg.inc("engine.windows_widened", out.sim.widened_windows());

    reg.inc("run.events", out.events);
    reg.inc("run.completed", u64::from(out.completed));
    reg.set_gauge("run.wall_ns", out.wall.nanos() as i64);

    reg.inc("cluster.messages_routed", out.sim.messages_routed());
    reg.inc("cluster.bytes_routed", out.sim.bytes_routed());
    reg.inc("cluster.clock_resyncs", out.sim.clock_resyncs());
    reg.inc("fabric.fifo_clamps", out.sim.fifo_clamps());
    reg.inc("fabric.link_waits", out.sim.link_waits());
    reg.inc("fabric.link_wait_ns", out.sim.link_wait_ns());
    // Link queueing-delay histogram, rebuilt from the engine's pre-binned
    // counts: each bucket is replayed at its upper edge (overflow at one
    // past the last edge), so sum/min/max are bucket approximations while
    // the bucket counts themselves are exact. Declared only when the
    // finite-link mode produced waits, keeping unlimited-mode snapshots
    // free of an always-empty histogram.
    let link_hist = out.sim.link_wait_hist();
    if link_hist.iter().any(|&c| c > 0) {
        let name = "fabric.link_wait_ns.hist";
        reg.declare_histogram(name, &pa_cluster::LINK_WAIT_EDGES_NS);
        let last = pa_cluster::LINK_WAIT_EDGES_NS[pa_cluster::LINK_WAIT_EDGES_NS.len() - 1];
        for (i, &c) in link_hist.iter().enumerate() {
            let rep = pa_cluster::LINK_WAIT_EDGES_NS
                .get(i)
                .copied()
                .unwrap_or(last + 1);
            reg.observe_n(name, rep, c);
        }
    }
    reg.set_gauge("cluster.nodes", i64::from(out.sim.nodes()));

    // Checkpointing. `checkpoint.writes` and `checkpoint.bytes` are
    // carried across restore, so they match an uninterrupted run's; the
    // restore count is intentionally local to this process, so it lives
    // in the `local.*` namespace that canonical snapshots omit.
    reg.inc("checkpoint.writes", out.sim.checkpoints_written());
    reg.inc("local.checkpoint.restores", out.sim.checkpoint_restores());
    reg.set_gauge("checkpoint.bytes", out.sim.last_checkpoint_bytes() as i64);

    for node in 0..out.sim.nodes() {
        let kernel = out.sim.kernel(node);
        let s = kernel.stats();
        reg.inc("kernel.dispatches", s.dispatches);
        reg.inc("kernel.ctx_switches", s.ctx_switches);
        reg.inc("kernel.preemptions", s.preemptions);
        reg.inc("kernel.ipis_sent", s.ipis_sent);
        reg.inc("kernel.ipis_taken", s.ipis_taken);
        reg.inc("kernel.ticks", s.ticks);
        reg.inc("kernel.callouts_fired", s.callouts_fired);
        reg.inc("kernel.poll_spin_ns", s.poll_spin_ns);
        for (b, band) in pa_kernel::RUNQ_BANDS.iter().enumerate() {
            reg.inc(&format!("kernel.runq_wait_ns.{band}"), s.runq_wait_ns[b]);
            reg.inc(&format!("kernel.runq_waits.{band}"), s.runq_waits[b]);
        }
        reg.inc("trace.dropped_events", kernel.trace().dropped());
        for (kind, name, value) in kernel.program_metrics() {
            reg.inc(&format!("prog.{kind}.{name}"), value);
        }
    }

    // Collective-phase histograms from the recorder's per-op aggregates
    // (global duration: first entry to last completion across ranks).
    let recorder = out.job.recorder.lock().unwrap();
    for kind in [
        pa_mpi::OpKind::Allreduce,
        pa_mpi::OpKind::Barrier,
        pa_mpi::OpKind::Allgather,
        pa_mpi::OpKind::Reduce,
        pa_mpi::OpKind::Bcast,
        pa_mpi::OpKind::Exchange,
    ] {
        let aggs = recorder.aggs(kind);
        if aggs.is_empty() {
            continue;
        }
        let name = format!("mpi.{}.global_us", format!("{kind:?}").to_lowercase());
        reg.declare_histogram(&name, &COLL_US_EDGES);
        for (_seq, agg) in aggs {
            reg.observe(&name, agg.global_dur().micros());
        }
    }
    reg
}

/// One rank's six-way wall-time decomposition, built from the kernel's
/// per-thread wait-state account:
///
/// * `compute` — the rank program's completed compute segments;
/// * `coll_wait` — busy-poll spin plus blocked-receive time;
/// * `runq_wait` — ready-queue delay (daemon preemption and gang-stagger
///   idle land here);
/// * `noise` — device-interrupt debt served inside the rank's segments;
/// * `io_wait` — blocked on I/O completions or callout sleeps;
/// * `overhead` — the signed on-CPU residual (send/recv costs,
///   collective-internal reduce work, tick/IPI steal).
///
/// The sum is exact by construction: the kernel guarantees
/// `wall == cpu + runq_wait + blocked_msg + blocked_io + blocked_sleep`
/// and the split here only repartitions `cpu` into
/// `compute + poll_spin + noise_debt + residual`.
fn rank_account(out: &RunOutput, rank: u32, end: SimTime) -> RankAccount {
    let ep = out.job.rank_tids[rank as usize];
    let kernel = out.sim.kernel(ep.node);
    let a = kernel.thread_account(ep.tid, end);
    let compute_ns = kernel
        .thread_program_metrics(ep.tid)
        .iter()
        .find(|(name, _)| *name == "compute_ns")
        .map_or(0, |&(_, v)| v);
    RankAccount {
        rank,
        node: ep.node,
        wall_ns: a.wall.nanos(),
        cats: categories_of(&a, compute_ns),
    }
}

/// Map one kernel [`pa_kernel::ThreadAccount`] plus the program's
/// completed compute onto the six blame categories. The mapping
/// preserves the kernel's exact wall identity: it only repartitions
/// `cpu` into `compute + poll_spin + noise_debt + residual`, so the six
/// categories sum to `wall` to the nanosecond. Shared with the batch
/// engine's per-job aggregation.
pub fn categories_of(a: &pa_kernel::ThreadAccount, compute_ns: u64) -> Categories {
    Categories {
        compute_ns,
        coll_wait_ns: a.poll_spin.nanos() + a.blocked_msg.nanos(),
        runq_wait_ns: a.runq_wait.nanos(),
        noise_ns: a.noise_debt.nanos(),
        io_wait_ns: a.blocked_io.nanos() + a.blocked_sleep.nanos(),
        overhead_ns: a.cpu.nanos() as i64
            - compute_ns as i64
            - a.poll_spin.nanos() as i64
            - a.noise_debt.nanos() as i64,
    }
}

/// Assemble the blame input for a finished run: per-rank accounts,
/// per-node interference and link counters, the recorder's per-op
/// samples (when [`crate::Experiment::with_record_all_ranks`] was on),
/// and the trace-drop tally. Everything is simulation-derived, so the
/// result is bit-identical across `--sim-threads` settings.
pub fn blame_input_of(out: &RunOutput, label: impl Into<String>) -> BlameInput {
    let end = SimTime::ZERO + out.wall;
    let ranks: Vec<RankAccount> = (0..out.job.nranks)
        .map(|r| rank_account(out, r, end))
        .collect();
    // Epoch: earliest rank spawn — the job's accounting origin.
    let epoch_ns = out
        .job
        .rank_tids
        .iter()
        .map(|ep| {
            out.sim
                .kernel(ep.node)
                .thread_account(ep.tid, end)
                .spawned_at
                .since(SimTime::ZERO)
                .nanos()
        })
        .min()
        .unwrap_or(0);

    let mut noise = Vec::new();
    let mut links = Vec::new();
    let mut dropped_events = 0u64;
    for node in 0..out.sim.nodes() {
        let kernel = out.sim.kernel(node);
        for row in kernel.usage_report() {
            if row.class.is_interference() && row.cpu_time > pa_simkit::SimDur::ZERO {
                noise.push(NoiseSource {
                    node,
                    name: row.name,
                    cpu_ns: row.cpu_time.nanos(),
                });
            }
        }
        let (waits, wait_ns) = out.sim.link_wait_of(node);
        links.push(LinkUsage {
            node,
            waits,
            wait_ns,
        });
        dropped_events += kernel.trace().dropped();
    }

    let recorder = out.job.recorder.lock().unwrap();
    let mut samples = Vec::new();
    if recorder.records_all_ranks() {
        let layout = out.job.layout.read().unwrap();
        for rank in 0..out.job.nranks {
            for s in recorder.samples(rank).unwrap_or_default() {
                samples.push(OpSpan {
                    rank,
                    node: layout.node_of(rank),
                    seq: s.seq,
                    start_ns: s.start.since(SimTime::ZERO).nanos(),
                    end_ns: s.end.since(SimTime::ZERO).nanos(),
                });
            }
        }
    }

    BlameInput {
        label: label.into(),
        wall_ns: out.wall.nanos(),
        ranks,
        noise,
        links,
        samples,
        epoch_ns,
        dropped_events,
    }
}

/// Analyze a finished run into a [`RunBlame`] section: verified per-rank
/// decomposition, per-node ranking, the happens-before critical path,
/// and noise/link culprit lists.
pub fn blame_of(out: &RunOutput, label: impl Into<String>) -> RunBlame {
    pa_blame::analyze(&blame_input_of(out, label))
}

/// Category totals summed across a run's ranks — the cheap scalar form
/// campaign caches carry (`blame.*` extras).
pub fn blame_totals(out: &RunOutput) -> Categories {
    let end = SimTime::ZERO + out.wall;
    let mut totals = Categories::default();
    for r in 0..out.job.nranks {
        totals.add(&rank_account(out, r, end).cats);
    }
    totals
}

/// Build a span timeline for one node from its trace ring.
///
/// Tracks (Chrome `tid` within process `node`):
/// * `0..cpus` — per-CPU schedule: one span per dispatch (named after the
///   thread), `tick`/`ipi` instants;
/// * `1000 + tid` — per-thread collective phases from `CollBegin`/`CollEnd`
///   pairs;
/// * `900` — priority-change instants (`setprio <thread> -> <prio>`).
///
/// `horizon` closes any span still open when the trace ends so the JSON
/// has no dangling `B` events.
pub fn timeline_from_trace(node: u32, trace: &TraceBuffer, horizon: SimTime) -> SpanTimeline {
    const PRIO_TRACK: u32 = 900;
    const COLL_BASE: u32 = 1_000;

    let mut tl = SpanTimeline::new();
    tl.name_process(node, format!("node{node}"));
    tl.name_track(node, PRIO_TRACK, "priority changes");

    let mut cpus_seen = 0u32;
    for ev in trace.events() {
        match ev.hook {
            HookId::Dispatch => {
                let cpu = u32::from(ev.cpu);
                cpus_seen = cpus_seen.max(cpu + 1);
                // A ring that lost its Undispatch leaves the previous
                // span open; close it at this dispatch boundary.
                if tl.depth(node, cpu) > 0 {
                    tl.end(node, cpu, ev.time);
                }
                tl.begin(node, cpu, trace.thread_name(ev.tid), ev.time);
            }
            HookId::Undispatch => {
                tl.end(node, u32::from(ev.cpu), ev.time);
            }
            HookId::Tick => {
                tl.instant(node, u32::from(ev.cpu), "tick", ev.time);
            }
            HookId::Ipi => {
                tl.instant(node, u32::from(ev.cpu), "ipi", ev.time);
            }
            HookId::PrioChange => {
                let name = format!("setprio {} -> {}", trace.thread_name(ev.tid), ev.aux);
                tl.instant(node, PRIO_TRACK, name, ev.time);
            }
            HookId::CollBegin => {
                let track = COLL_BASE + ev.tid;
                tl.name_track(node, track, format!("{} coll", trace.thread_name(ev.tid)));
                if tl.depth(node, track) > 0 {
                    tl.end(node, track, ev.time);
                }
                tl.begin(node, track, format!("coll#{}", ev.aux), ev.time);
            }
            HookId::CollEnd => {
                tl.end(node, COLL_BASE + ev.tid, ev.time);
            }
            _ => {}
        }
    }
    for cpu in 0..cpus_seen {
        tl.name_track(node, cpu, format!("cpu{cpu}"));
        while tl.depth(node, cpu) > 0 {
            tl.end(node, cpu, horizon);
        }
    }
    // Close collective spans left open (rank killed at the horizon).
    for ev in trace.events() {
        if ev.hook == HookId::CollBegin {
            let track = COLL_BASE + ev.tid;
            while tl.depth(node, track) > 0 {
                tl.end(node, track, horizon);
            }
        }
    }
    tl
}

/// Span timeline of one traced node of a finished run.
///
/// The node must have been traced ([`crate::Experiment::with_trace_node`])
/// or the timeline will be empty.
pub fn timeline_of(out: &RunOutput, node: u32) -> SpanTimeline {
    timeline_from_trace(node, out.sim.kernel(node).trace(), SimTime::ZERO + out.wall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CoschedSetup, Experiment};
    use pa_mpi::{MpiOp, OpList, RankWorkload};

    fn run(seed: u64) -> RunOutput {
        let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
            Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 256]))
        };
        // Vanilla kernel: its 10 ms tick fires within this short run, so
        // tick/callout counters are exercised too.
        Experiment::new(2, 4)
            .with_cpus_per_node(4)
            .with_cosched(CoschedSetup::default())
            .with_trace_node(0)
            .with_seed(seed)
            .run(&mut wl)
    }

    #[test]
    fn metrics_cover_all_layers() {
        let out = run(5);
        let reg = metrics_of(&out);
        assert!(reg.counter("engine.events_popped") > 0);
        assert!(reg.counter("engine.windows_run") > 0);
        // Indexed queue: cancellation removes entries, nothing lingers.
        assert_eq!(reg.gauge("engine.queue_tombstones"), Some(0));
        assert!(reg.counter("kernel.dispatches") > 0);
        assert!(reg.counter("kernel.ctx_switches") > 0);
        assert!(reg.counter("kernel.ticks") > 0);
        assert!(reg.counter("cluster.messages_routed") > 0);
        assert!(reg.counter("cluster.clock_resyncs") > 0);
        assert!(reg.counter("prog.cosched.window_applies") > 0);
        assert!(reg.counter("prog.cosched.setprio_sent") > 0);
        assert!(reg.counter("prog.mpi_rank.collectives") > 0);
        let h = reg.histogram("mpi.allreduce.global_us").expect("histogram");
        assert_eq!(h.count(), 256);
        // Waits were attributed to some band.
        let total_waits: u64 = pa_kernel::RUNQ_BANDS
            .iter()
            .map(|b| reg.counter(&format!("kernel.runq_waits.{b}")))
            .sum();
        assert!(total_waits > 0);
    }

    #[test]
    fn link_contention_metrics_surface() {
        let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
            Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 4096 }; 64]))
        };
        // A 1 MB/s link makes every concurrent cross-node send queue.
        let out = Experiment::new(2, 4)
            .with_cpus_per_node(4)
            .with_link_bandwidth(Some(1e6))
            .with_seed(5)
            .run(&mut wl);
        let reg = metrics_of(&out);
        assert!(reg.counter("fabric.link_waits") > 0);
        assert!(reg.counter("fabric.link_wait_ns") > 0);
        let h = reg
            .histogram("fabric.link_wait_ns.hist")
            .expect("histogram declared under contention");
        assert_eq!(h.count(), reg.counter("fabric.link_waits"));

        // The unlimited default records no waits and no histogram.
        let out = run(5);
        let reg = metrics_of(&out);
        assert_eq!(reg.counter("fabric.link_waits"), 0);
        assert!(reg.histogram("fabric.link_wait_ns.hist").is_none());
    }

    #[test]
    fn snapshot_is_deterministic() {
        let a = metrics_of(&run(5)).snapshot_json();
        let b = metrics_of(&run(5)).snapshot_json();
        assert_eq!(a, b);
        let c = metrics_of(&run(6)).snapshot_json();
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn blame_accounts_sum_and_path_extracts() {
        let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
            Box::new(OpList::new(
                std::iter::repeat_n(
                    [
                        MpiOp::Compute(pa_simkit::SimDur::from_micros(40)),
                        MpiOp::Allreduce { bytes: 64 },
                    ],
                    128,
                )
                .flatten()
                .collect(),
            ))
        };
        let out = Experiment::new(2, 4)
            .with_cpus_per_node(4)
            .with_cosched(CoschedSetup::default())
            .with_record_all_ranks()
            .with_seed(7)
            .run(&mut wl);
        assert!(out.completed);
        let blame = blame_of(&out, "unit");
        assert_eq!(blame.nranks, 8);
        // The exact-sum invariant is checked (panics otherwise) inside
        // analyze; spot-check the pieces are live too.
        assert!(blame.totals.compute_ns > 0, "compute must be charged");
        assert!(blame.totals.coll_wait_ns > 0, "collectives must wait");
        assert!(blame.totals.noise_ns > 0, "production noise must land");
        let path = blame.path.expect("record-all capture gives a path");
        assert_eq!(path.ops, 128, "every allreduce is on the path");
        assert_eq!(
            path.on_path.total_ns() as u64 + path.coll_release_ns,
            path.span_ns,
            "path decomposition must telescope exactly"
        );
        // Totals match the cheap scalar form used by campaign caches.
        assert_eq!(blame.totals, blame_totals(&out));
    }

    #[test]
    fn blame_is_deterministic_across_sim_threads() {
        let run = |threads: usize| {
            let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
                Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 64]))
            };
            let out = Experiment::new(2, 4)
                .with_cpus_per_node(4)
                .with_record_all_ranks()
                .with_sim_threads(threads)
                .with_seed(9)
                .run(&mut wl);
            let report = pa_blame::BlameReport {
                title: "t".into(),
                runs: vec![blame_of(&out, "x")],
                ..pa_blame::BlameReport::default()
            };
            report.to_json()
        };
        let serial = run(1);
        assert_eq!(serial, run(2));
        assert_eq!(serial, run(4));
    }

    #[test]
    fn silent_noise_and_unlimited_links_blame_nothing() {
        let mut wl = |_rank: u32| -> Box<dyn RankWorkload> {
            Box::new(OpList::new(vec![MpiOp::Allreduce { bytes: 8 }; 32]))
        };
        let out = Experiment::new(2, 4)
            .with_cpus_per_node(4)
            .with_noise(pa_noise::NoiseProfile::silent())
            .with_seed(3)
            .run(&mut wl);
        let blame = blame_of(&out, "quiet");
        assert_eq!(blame.totals.noise_ns, 0, "no noise to blame");
        assert!(blame.noise.is_empty(), "no interference sources");
        assert!(blame.links.is_empty(), "unlimited links never queue");
        assert!(blame.path.is_none(), "no record-all capture, no path");
    }

    #[test]
    fn timeline_has_schedule_and_collectives() {
        let out = run(5);
        let tl = timeline_of(&out, 0);
        assert!(!tl.is_empty());
        // Every track is balanced: no dangling open spans.
        let trace = out.sim.kernel(0).trace();
        for ev in trace.events() {
            if ev.hook == HookId::Dispatch {
                assert_eq!(tl.depth(0, u32::from(ev.cpu)), 0);
            }
        }
        let json = tl.to_chrome_trace();
        let v = serde_json::parse(&json).expect("valid chrome trace JSON");
        let events = serde::value::get(v.as_map().unwrap(), "traceEvents")
            .and_then(|e| e.as_seq())
            .expect("traceEvents array");
        assert!(!events.is_empty());
        // An untraced node yields an empty timeline.
        assert!(timeline_of(&out, 1).is_empty());
    }
}
