//! The co-scheduler daemon (§4).
//!
//! One daemon per node, started with the job, "for the exclusive purpose
//! of scheduling the dispatching priorities of the tasks of the job
//! running on that node. It does this by cycling the process priority of
//! the tasks between a favored and unfavored value at periodic
//! intervals." Key behaviours reproduced:
//!
//! * tasks register their pids through the MPI control pipe at init, and
//!   are actively co-scheduled as soon as they register;
//! * the operation cycle is aligned so the period ends on a (local-clock)
//!   second boundary — with clocks synchronized to the switch clock, all
//!   nodes flip priority windows at the same instant *with no inter-node
//!   communication*;
//! * the daemon itself runs at an even more favored priority but sleeps
//!   most of the time;
//! * the application can detach (I/O phases) and re-attach; the daemon
//!   acts on requests when it sees them at its next wakeup.

use pa_kernel::{Action, Prio, Program, SrcSel, StepCtx, TagSel, Tid, WaitMode};
use pa_mpi::CtrlOp;
use pa_simkit::{SimDur, SimTime};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Checkpointable daemon state (everything mutated after construction).
#[derive(Debug, Serialize, Deserialize)]
struct CoschedSnap {
    tasks: Vec<Tid>,
    detached: bool,
    queue: Vec<Action>,
    mode: Mode,
    probe_outstanding: bool,
    adjustments: u64,
    attaches: u64,
    detaches: u64,
    setprio_sent: u64,
}

/// Priority-cycling parameters (one record of `/etc/poe.priority`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoschedParams {
    /// Priority during the favored window (§5.3 benchmark runs: 30).
    pub favored: Prio,
    /// Priority during the unfavored window (§5.3: 100).
    pub unfavored: Prio,
    /// Priority restored while the application is detached.
    pub base: Prio,
    /// Overall scheduling period (§5.3: 5 s; §4 suggests ~10 s works well
    /// on 16-way nodes).
    pub period: SimDur,
    /// Fraction of the period at favored priority (§5.3: 0.9).
    pub duty: f64,
    /// Fixed CPU cost of one adjustment pass.
    pub adjust_cost: SimDur,
    /// Additional cost per task adjusted.
    pub adjust_cost_per_task: SimDur,
    /// Offset of this job's window grid from the local-clock origin. The
    /// single-job study always uses zero (windows aligned to second
    /// boundaries, §4); the batch layer hands co-resident gangs distinct
    /// phases so their favored windows interleave instead of colliding.
    pub phase: SimDur,
}

impl CoschedParams {
    /// The settings the study settled on for the benchmark runs (§5.3):
    /// favored 30, unfavored 100, 5 s window, 90% favored.
    pub fn benchmark() -> CoschedParams {
        CoschedParams {
            favored: Prio::FAVORED,
            unfavored: Prio::UNFAVORED,
            base: Prio::USER,
            period: SimDur::from_secs(5),
            duty: 0.9,
            adjust_cost: SimDur::from_micros(30),
            adjust_cost_per_task: SimDur::from_micros(3),
            phase: SimDur::ZERO,
        }
    }

    /// The I/O-aware variant that fixed the ALE3D slowdown (§5.3): mmfsd
    /// pinned at 40, tasks favored at 41 so the I/O daemon may always
    /// preempt them while every other daemon still cannot.
    pub fn io_aware() -> CoschedParams {
        CoschedParams {
            favored: Prio(41),
            ..CoschedParams::benchmark()
        }
    }

    /// Duration of the favored window.
    pub fn favored_len(&self) -> SimDur {
        self.period.mul_f64(self.duty.clamp(0.0, 1.0))
    }

    /// Validate.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..=1.0).contains(&self.duty) {
            return Err(format!("duty cycle {} out of [0,1]", self.duty));
        }
        if self.period.is_zero() {
            return Err("period must be nonzero".into());
        }
        if !self.favored.beats(self.unfavored) {
            return Err("favored priority must beat unfavored".into());
        }
        if self.phase >= self.period {
            return Err(format!(
                "phase {} must be less than the period {}",
                self.phase, self.period
            ));
        }
        Ok(())
    }

    /// This job's window grid runs `phase` later than the local clock's
    /// period grid; shifting time *back* by the phase maps it onto the
    /// canonical zero-phase grid. Adding `period` first keeps the
    /// subtraction in range for local times inside the first period.
    fn onto_grid(&self, local: SimTime) -> SimTime {
        local + self.period - self.phase
    }

    /// Is local time `t` inside a favored window?
    pub fn in_favored(&self, local: SimTime) -> bool {
        (self.onto_grid(local) % self.period) < self.favored_len()
    }

    /// Next window edge strictly after `local`.
    pub fn next_edge(&self, local: SimTime) -> SimTime {
        let shifted = self.onto_grid(local);
        let pos = shifted % self.period;
        let fav = self.favored_len();
        let edge = if pos < fav {
            shifted - pos + fav
        } else {
            shifted - pos + self.period
        };
        edge + self.phase - self.period
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Mode {
    /// Waiting (blocking) for task registrations.
    Register,
    /// Non-blocking drain of the control pipe at a wakeup.
    Drain,
    /// Emit the priority adjustments for the current phase.
    Apply,
    /// Sleep to the next window edge.
    Sleep,
}

/// The per-node co-scheduler daemon program.
pub struct CoschedDaemon {
    params: CoschedParams,
    expected_tasks: u32,
    tasks: Vec<Tid>,
    detached: bool,
    queue: VecDeque<Action>,
    mode: Mode,
    /// A non-blocking pipe probe has been issued and not yet answered.
    probe_outstanding: bool,
    adjustments: u64,
    attaches: u64,
    detaches: u64,
    setprio_sent: u64,
}

impl CoschedDaemon {
    /// New daemon expecting `expected_tasks` registrations on its node.
    ///
    /// # Panics
    /// Panics on invalid parameters.
    pub fn new(params: CoschedParams, expected_tasks: u32) -> CoschedDaemon {
        params
            .validate()
            .unwrap_or_else(|e| panic!("invalid CoschedParams: {e}"));
        CoschedDaemon {
            params,
            expected_tasks,
            tasks: Vec::new(),
            detached: false,
            queue: VecDeque::new(),
            mode: if expected_tasks == 0 {
                Mode::Apply
            } else {
                Mode::Register
            },
            probe_outstanding: false,
            adjustments: 0,
            attaches: 0,
            detaches: 0,
            setprio_sent: 0,
        }
    }

    fn current_prio(&self, local: SimTime) -> Prio {
        if self.detached {
            self.params.base
        } else if self.params.in_favored(local) {
            self.params.favored
        } else {
            self.params.unfavored
        }
    }

    fn queue_apply(&mut self, local: SimTime) {
        let prio = self.current_prio(local);
        self.queue.push_back(Action::Compute(
            self.params.adjust_cost + self.params.adjust_cost_per_task * self.tasks.len() as u64,
        ));
        for &t in &self.tasks {
            self.queue
                .push_back(Action::SetPriority { target: t, prio });
        }
        self.setprio_sent += self.tasks.len() as u64;
        self.adjustments += 1;
    }

    fn handle_ctrl(&mut self, tag: u64, payload: u64, local: SimTime) {
        match CtrlOp::from_tag(tag) {
            Some(CtrlOp::Register) => {
                let tid = Tid(payload as u32);
                if !self.tasks.contains(&tid) {
                    self.tasks.push(tid);
                    // "As soon as a process registers, it is actively
                    // co-scheduled."
                    let prio = self.current_prio(local);
                    self.queue
                        .push_back(Action::SetPriority { target: tid, prio });
                    self.setprio_sent += 1;
                }
            }
            Some(CtrlOp::Detach) if !self.detached => {
                self.detached = true;
                self.detaches += 1;
                self.queue_apply(local);
            }
            Some(CtrlOp::Attach) if self.detached => {
                self.detached = false;
                self.attaches += 1;
                self.queue_apply(local);
            }
            Some(CtrlOp::Shutdown) => {
                // Job teardown: put every task back at base priority (a
                // straggling SetPriority to an exited thread is a no-op in
                // the kernel), then leave. The Exit rides the action queue
                // so pending adjustments drain first.
                let n = self.tasks.len() as u64;
                self.queue.push_back(Action::Compute(
                    self.params.adjust_cost + self.params.adjust_cost_per_task * n,
                ));
                for &t in &self.tasks {
                    self.queue.push_back(Action::SetPriority {
                        target: t,
                        prio: self.params.base,
                    });
                }
                self.setprio_sent += n;
                self.adjustments += 1;
                self.queue.push_back(Action::Exit);
            }
            // Redundant detach/attach requests (every rank sends one).
            Some(CtrlOp::Detach) | Some(CtrlOp::Attach) => {}
            None => {} // stray message: ignored
        }
    }
}

impl Program for CoschedDaemon {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        // A completed receive must be consumed before anything else, or
        // the message would be dropped when queued actions are pending.
        let got = ctx.try_received();
        if let Some(m) = &got {
            self.handle_ctrl(m.tag, m.payload, ctx.local_now);
            self.probe_outstanding = false;
        }
        loop {
            if let Some(a) = self.queue.pop_front() {
                return a;
            }
            match self.mode {
                Mode::Register => {
                    if self.tasks.len() as u32 >= self.expected_tasks {
                        self.mode = Mode::Apply;
                        continue;
                    }
                    return Action::Recv {
                        tag: TagSel::Any,
                        src: SrcSel::Any,
                        wait: WaitMode::Block,
                    };
                }
                Mode::Drain => {
                    if self.probe_outstanding {
                        // The probe came back empty (a matched probe was
                        // consumed at the top of this call).
                        self.probe_outstanding = false;
                        self.mode = Mode::Apply;
                        continue;
                    }
                    self.probe_outstanding = true;
                    return Action::Recv {
                        tag: TagSel::Any,
                        src: SrcSel::Any,
                        wait: WaitMode::Try,
                    };
                }
                Mode::Apply => {
                    self.queue_apply(ctx.local_now);
                    self.mode = Mode::Sleep;
                }
                Mode::Sleep => {
                    self.mode = Mode::Drain;
                    self.probe_outstanding = false;
                    return Action::SleepUntil(self.params.next_edge(ctx.local_now));
                }
            }
        }
    }

    fn kind(&self) -> &'static str {
        "cosched"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("window_applies", self.adjustments),
            ("attaches", self.attaches),
            ("detaches", self.detaches),
            ("setprio_sent", self.setprio_sent),
        ]
    }

    fn snapshot_state(&self) -> Value {
        CoschedSnap {
            tasks: self.tasks.clone(),
            detached: self.detached,
            queue: self.queue.iter().cloned().collect(),
            mode: self.mode,
            probe_outstanding: self.probe_outstanding,
            adjustments: self.adjustments,
            attaches: self.attaches,
            detaches: self.detaches,
            setprio_sent: self.setprio_sent,
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let snap = CoschedSnap::from_value(state)?;
        self.tasks = snap.tasks;
        self.detached = snap.detached;
        self.queue = snap.queue.into();
        self.mode = snap.mode;
        self.probe_outstanding = snap.probe_outstanding;
        self.adjustments = snap.adjustments;
        self.attaches = snap.attaches;
        self.detaches = snap.detaches;
        self.setprio_sent = snap.setprio_sent;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_params_match_paper() {
        let p = CoschedParams::benchmark();
        assert_eq!(p.favored, Prio(30));
        assert_eq!(p.unfavored, Prio(100));
        assert_eq!(p.period, SimDur::from_secs(5));
        assert!((p.duty - 0.9).abs() < 1e-12);
        assert!(p.validate().is_ok());
        assert_eq!(p.favored_len(), SimDur::from_millis(4500));
    }

    #[test]
    fn io_aware_sandwiches_mmfsd() {
        let p = CoschedParams::io_aware();
        assert!(Prio::MMFSD.beats(p.favored));
        assert!(p.favored.beats(Prio::DAEMON_OBSERVED));
    }

    #[test]
    fn window_phase_math() {
        let p = CoschedParams::benchmark();
        assert!(p.in_favored(SimTime::from_secs(0)));
        assert!(p.in_favored(SimTime::from_millis(4_499)));
        assert!(!p.in_favored(SimTime::from_millis(4_500)));
        assert!(!p.in_favored(SimTime::from_millis(4_999)));
        assert!(p.in_favored(SimTime::from_secs(5)));
        assert_eq!(
            p.next_edge(SimTime::from_secs(0)),
            SimTime::from_millis(4_500)
        );
        assert_eq!(
            p.next_edge(SimTime::from_millis(4_500)),
            SimTime::from_secs(5)
        );
        assert_eq!(
            p.next_edge(SimTime::from_millis(4_700)),
            SimTime::from_secs(5)
        );
        // Period boundaries land on whole seconds (§4's alignment rule).
        assert_eq!(
            p.next_edge(SimTime::from_millis(9_999)).nanos() % 1_000_000_000,
            0
        );
    }

    #[test]
    fn validation_rejects_bad_params() {
        let mut p = CoschedParams::benchmark();
        p.duty = 1.5;
        assert!(p.validate().is_err());
        let mut p = CoschedParams::benchmark();
        p.period = SimDur::ZERO;
        assert!(p.validate().is_err());
        let mut p = CoschedParams::benchmark();
        p.favored = Prio(110);
        assert!(p.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid CoschedParams")]
    fn daemon_rejects_bad_params() {
        let mut p = CoschedParams::benchmark();
        p.duty = -0.1;
        CoschedDaemon::new(p, 16);
    }

    #[test]
    fn zero_task_daemon_starts_in_apply() {
        let d = CoschedDaemon::new(CoschedParams::benchmark(), 0);
        assert_eq!(d.mode, Mode::Apply);
        let d = CoschedDaemon::new(CoschedParams::benchmark(), 4);
        assert_eq!(d.mode, Mode::Register);
    }
}
