//! The `schedtune` administrative command.
//!
//! §3.2.1: *"implementing these changes as options in a production
//! operating system such as AIX requires some mechanism for selecting
//! these options. We accomplished this by adding options to the
//! 'schedtune' command of AIX, which provides a consistent mechanism for
//! invoking kernel options."*
//!
//! This module is that mechanism: a textual `option=value` interface over
//! [`SchedOptions`], so experiment scripts and the examples can configure
//! kernels the way an SP administrator would have.

use pa_kernel::{DaemonQueuePolicy, PreemptMode, SchedOptions, TickAlign};
use pa_simkit::SimDur;

/// Apply a `schedtune`-style settings string to an option block.
///
/// Grammar: whitespace-separated `key=value` pairs. Keys:
///
/// | key | values | §3 mechanism |
/// |---|---|---|
/// | `bigtick` | 1..=1000 | tick divisor (§3.1.1; the study used 25) |
/// | `tickalign` | `staggered` \| `simultaneous` | tick phasing (§3.2.1) |
/// | `preempt` | `lazy` \| `rt` \| `rtplus` | cross-CPU preemption (§3) |
/// | `daemonq` | `percpu` \| `global` | daemon queueing (§3.1.2) |
/// | `timeslice_ms` | 1..=1000 | round-robin quantum |
/// | `idlesteal` | `on` \| `off` | idle CPUs steal pinned work |
///
/// Unknown keys and malformed values are errors (an administrator's typo
/// must not silently run the wrong kernel).
pub fn schedtune(base: SchedOptions, settings: &str) -> Result<SchedOptions, String> {
    let mut opts = base;
    for pair in settings.split_whitespace() {
        let (key, value) = pair
            .split_once('=')
            .ok_or_else(|| format!("'{pair}' is not key=value"))?;
        match key {
            "bigtick" => {
                let v: u32 = value
                    .parse()
                    .map_err(|e| format!("bigtick '{value}': {e}"))?;
                if !(1..=1000).contains(&v) {
                    return Err(format!("bigtick {v} out of range 1..=1000"));
                }
                opts.big_tick = v;
            }
            "tickalign" => {
                opts.tick_align = match value {
                    "staggered" => TickAlign::Staggered,
                    "simultaneous" | "aligned" => TickAlign::Aligned,
                    other => return Err(format!("tickalign '{other}' unknown")),
                };
            }
            "preempt" => {
                opts.preempt = match value {
                    "lazy" => PreemptMode::Lazy,
                    "rt" => PreemptMode::RtIpi,
                    "rtplus" => PreemptMode::RtIpiImproved,
                    other => return Err(format!("preempt '{other}' unknown")),
                };
            }
            "daemonq" => {
                opts.daemon_queue = match value {
                    "percpu" => DaemonQueuePolicy::PerCpu,
                    "global" => DaemonQueuePolicy::Global,
                    other => return Err(format!("daemonq '{other}' unknown")),
                };
            }
            "timeslice_ms" => {
                let v: u64 = value
                    .parse()
                    .map_err(|e| format!("timeslice_ms '{value}': {e}"))?;
                if !(1..=1000).contains(&v) {
                    return Err(format!("timeslice_ms {v} out of range 1..=1000"));
                }
                opts.timeslice = SimDur::from_millis(v);
            }
            "idlesteal" => {
                opts.idle_steal = match value {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("idlesteal '{other}' unknown")),
                };
            }
            other => return Err(format!("unknown schedtune option '{other}'")),
        }
    }
    opts.validate()?;
    Ok(opts)
}

/// Render an option block as a `schedtune` settings string (round-trips
/// through [`schedtune`]).
pub fn render(opts: &SchedOptions) -> String {
    format!(
        "bigtick={} tickalign={} preempt={} daemonq={} timeslice_ms={} idlesteal={}",
        opts.big_tick,
        match opts.tick_align {
            TickAlign::Staggered => "staggered",
            TickAlign::Aligned => "simultaneous",
        },
        match opts.preempt {
            PreemptMode::Lazy => "lazy",
            PreemptMode::RtIpi => "rt",
            PreemptMode::RtIpiImproved => "rtplus",
        },
        match opts.daemon_queue {
            DaemonQueuePolicy::PerCpu => "percpu",
            DaemonQueuePolicy::Global => "global",
        },
        opts.timeslice.as_millis_f64() as u64,
        if opts.idle_steal { "on" } else { "off" },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_settings_string() {
        let opts = schedtune(
            SchedOptions::vanilla(),
            "bigtick=25 tickalign=simultaneous preempt=rtplus daemonq=global",
        )
        .expect("valid settings");
        assert_eq!(opts.big_tick, 25);
        assert_eq!(opts.tick_align, TickAlign::Aligned);
        assert_eq!(opts.preempt, PreemptMode::RtIpiImproved);
        assert_eq!(opts.daemon_queue, DaemonQueuePolicy::Global);
        // Same as the built-in preset.
        assert_eq!(opts, SchedOptions::prototype());
    }

    #[test]
    fn empty_string_is_identity() {
        assert_eq!(
            schedtune(SchedOptions::vanilla(), "").unwrap(),
            SchedOptions::vanilla()
        );
    }

    #[test]
    fn roundtrip_render_parse() {
        for base in [SchedOptions::vanilla(), SchedOptions::prototype()] {
            let rendered = render(&base);
            let parsed = schedtune(SchedOptions::vanilla(), &rendered).unwrap();
            assert_eq!(parsed, base, "roundtrip failed for '{rendered}'");
        }
    }

    #[test]
    fn typos_are_rejected() {
        assert!(schedtune(SchedOptions::vanilla(), "bigtik=25").is_err());
        assert!(schedtune(SchedOptions::vanilla(), "bigtick=zero").is_err());
        assert!(schedtune(SchedOptions::vanilla(), "bigtick=0").is_err());
        assert!(schedtune(SchedOptions::vanilla(), "bigtick").is_err());
        assert!(schedtune(SchedOptions::vanilla(), "preempt=turbo").is_err());
        assert!(schedtune(SchedOptions::vanilla(), "tickalign=diagonal").is_err());
        assert!(schedtune(SchedOptions::vanilla(), "timeslice_ms=0").is_err());
        assert!(schedtune(SchedOptions::vanilla(), "idlesteal=maybe").is_err());
    }

    #[test]
    fn partial_overrides_keep_the_rest() {
        let opts = schedtune(SchedOptions::prototype(), "bigtick=1").unwrap();
        assert_eq!(opts.big_tick, 1);
        assert_eq!(
            opts.preempt,
            PreemptMode::RtIpiImproved,
            "unrelated options kept"
        );
    }
}
