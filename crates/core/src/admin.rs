//! The administrative interface (`/etc/poe.priority`).
//!
//! §4: *"The POE administrative interface is a file (/etc/poe.priority)
//! that is root-only writable, and is assumed to be the same on each
//! node. Each record in the file identifies a priority class name, user
//! ID, and scheduling parameters ... A user wishing to have a job
//! controlled by the co-scheduler sets the POE environment variable
//! `MP_PRIORITY=<class>`. At job start, the administrative file is searched
//! for a match of priority class and user ID. If there is a match, the
//! co-scheduler is started. Otherwise, an attention message is printed
//! and the job runs as if no priority had been requested."*

use crate::cosched::CoschedParams;
use pa_kernel::Prio;
use pa_simkit::SimDur;
use serde::{Deserialize, Serialize};

/// One record of the priority file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PriorityRecord {
    /// Class name (matched against `MP_PRIORITY`).
    pub class: String,
    /// Authorized user id.
    pub uid: u32,
    /// The scheduling parameters granted.
    pub params: CoschedParams,
}

/// The parsed administrative table.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct AdminTable {
    records: Vec<PriorityRecord>,
}

/// Outcome of a job's `MP_PRIORITY` request.
#[derive(Debug, Clone, PartialEq)]
pub enum PriorityGrant {
    /// Matched: the co-scheduler starts with these parameters.
    Granted(CoschedParams),
    /// No match: "an attention message is printed and the job runs as if
    /// no priority had been requested."
    Refused {
        /// The attention message.
        attention: String,
    },
}

impl AdminTable {
    /// Empty table.
    pub fn new() -> AdminTable {
        AdminTable::default()
    }

    /// Add a record.
    pub fn add(&mut self, record: PriorityRecord) -> &mut Self {
        self.records.push(record);
        self
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff the table has no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Job-start lookup.
    pub fn request(&self, class: &str, uid: u32) -> PriorityGrant {
        match self
            .records
            .iter()
            .find(|r| r.class == class && r.uid == uid)
        {
            Some(r) => PriorityGrant::Granted(r.params),
            None => PriorityGrant::Refused {
                attention: format!(
                    "ATTENTION: no priority class '{class}' authorized for uid {uid}; \
                     running without co-scheduling"
                ),
            },
        }
    }

    /// Parse the file format: one record per line,
    /// `class:uid:favored:unfavored:period_seconds:duty_percent`,
    /// `#` comments and blank lines ignored.
    pub fn parse(text: &str) -> Result<AdminTable, String> {
        let mut table = AdminTable::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(':').collect();
            if fields.len() != 6 {
                return Err(format!(
                    "line {}: expected 6 ':'-separated fields, got {}",
                    lineno + 1,
                    fields.len()
                ));
            }
            let parse_u32 = |s: &str, what: &str| {
                s.parse::<u32>()
                    .map_err(|e| format!("line {}: bad {what} '{s}': {e}", lineno + 1))
            };
            let uid = parse_u32(fields[1], "uid")?;
            let favored = parse_u32(fields[2], "favored priority")?;
            let unfavored = parse_u32(fields[3], "unfavored priority")?;
            let period_s = parse_u32(fields[4], "period")?;
            let duty_pct = parse_u32(fields[5], "duty percent")?;
            if favored > 127 || unfavored > 127 {
                return Err(format!("line {}: priorities must be 0-127", lineno + 1));
            }
            if duty_pct > 100 {
                return Err(format!("line {}: duty percent must be 0-100", lineno + 1));
            }
            let params = CoschedParams {
                favored: Prio(favored as u8),
                unfavored: Prio(unfavored as u8),
                period: SimDur::from_secs(u64::from(period_s)),
                duty: f64::from(duty_pct) / 100.0,
                ..CoschedParams::benchmark()
            };
            params
                .validate()
                .map_err(|e| format!("line {}: {e}", lineno + 1))?;
            table.add(PriorityRecord {
                class: fields[0].to_string(),
                uid,
                params,
            });
        }
        Ok(table)
    }

    /// Render back to the file format.
    pub fn render(&self) -> String {
        let mut out = String::from("# class:uid:favored:unfavored:period_s:duty_pct\n");
        for r in &self.records {
            out.push_str(&format!(
                "{}:{}:{}:{}:{}:{}\n",
                r.class,
                r.uid,
                r.params.favored.0,
                r.params.unfavored.0,
                r.params.period.as_secs_f64() as u64,
                (r.params.duty * 100.0).round() as u64
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# site priority classes
BENCH:1001:30:100:5:90
PROD:1002:41:100:10:95
";

    #[test]
    fn parse_and_lookup() {
        let t = AdminTable::parse(SAMPLE).expect("parses");
        assert_eq!(t.len(), 2);
        match t.request("BENCH", 1001) {
            PriorityGrant::Granted(p) => {
                assert_eq!(p.favored, Prio(30));
                assert_eq!(p.unfavored, Prio(100));
                assert_eq!(p.period, SimDur::from_secs(5));
                assert!((p.duty - 0.9).abs() < 1e-12);
            }
            PriorityGrant::Refused { .. } => panic!("should match"),
        }
    }

    #[test]
    fn refusal_prints_attention() {
        let t = AdminTable::parse(SAMPLE).unwrap();
        // Wrong uid for the class: the paper notes dissatisfaction with
        // exactly this uid-keyed behaviour.
        match t.request("BENCH", 9999) {
            PriorityGrant::Refused { attention } => {
                assert!(attention.contains("ATTENTION"));
                assert!(attention.contains("BENCH"));
            }
            PriorityGrant::Granted(_) => panic!("should refuse"),
        }
    }

    #[test]
    fn roundtrip_render_parse() {
        let t = AdminTable::parse(SAMPLE).unwrap();
        let t2 = AdminTable::parse(&t.render()).unwrap();
        assert_eq!(t, t2);
    }

    #[test]
    fn bad_lines_rejected() {
        assert!(
            AdminTable::parse("BENCH:1001:30:100:5").is_err(),
            "field count"
        );
        assert!(AdminTable::parse("BENCH:x:30:100:5:90").is_err(), "uid");
        assert!(
            AdminTable::parse("BENCH:1001:200:100:5:90").is_err(),
            "prio range"
        );
        assert!(
            AdminTable::parse("BENCH:1001:30:100:5:150").is_err(),
            "duty range"
        );
        assert!(
            AdminTable::parse("BENCH:1001:110:100:5:90").is_err(),
            "favored must beat unfavored"
        );
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let t = AdminTable::parse("\n# just a comment\n\n").unwrap();
        assert!(t.is_empty());
    }
}
