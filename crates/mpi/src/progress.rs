//! MPI progress ("timer") threads.
//!
//! §5.3: *"These auxiliary threads were identified as the MPI timer
//! threads. They are the 'progress engine' in IBM's MPI implementation.
//! The default behavior is that these threads run every 400 msec ...
//! their influence was strong enough to disrupt the tightly synchronized
//! Allreduce code."* The documented mitigation is
//! `MP_POLLING_INTERVAL=400000000` (a 400 s period).
//!
//! Each rank gets one timer thread pinned to its CPU at a slightly more
//! favored priority (the mostly-sleeping service thread wins the dynamic
//! priority comparison against its CPU-bound rank on real AIX).

use pa_kernel::{Action, Program, StepCtx};
use pa_simkit::{RngState, SimDur, SimRng};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Progress-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgressSpec {
    /// Firing period (`MP_POLLING_INTERVAL`; IBM default 400 ms).
    pub interval: SimDur,
    /// CPU burst per firing (message-queue scan and retransmit checks).
    pub burst: SimDur,
    /// Multiplicative burst jitter fraction.
    pub jitter: f64,
}

impl Default for ProgressSpec {
    fn default() -> Self {
        ProgressSpec {
            interval: SimDur::from_millis(400),
            burst: SimDur::from_micros(350),
            jitter: 0.4,
        }
    }
}

impl ProgressSpec {
    /// The §5.3 mitigation: a period so long the thread effectively never
    /// fires during a benchmark run.
    pub fn mitigated() -> ProgressSpec {
        ProgressSpec {
            interval: SimDur::from_secs(400),
            ..ProgressSpec::default()
        }
    }
}

/// The timer-thread program: sleep one interval, burn one burst, repeat.
#[derive(Debug)]
pub struct ProgressThread {
    spec: ProgressSpec,
    rng: SimRng,
    phase: SimDur,
    fired: bool,
    firings: u64,
}

impl ProgressThread {
    /// New timer thread with its own RNG stream and a random phase.
    pub fn new(spec: ProgressSpec, mut rng: SimRng) -> ProgressThread {
        let phase = SimDur::from_nanos(rng.range(0, spec.interval.nanos().max(1)));
        ProgressThread {
            spec,
            rng,
            phase,
            fired: true, // sleep to phase first; do not burst at spawn
            firings: 0,
        }
    }

    /// New timer thread with an explicit phase. The job installer passes
    /// one common phase to every rank's timer: the real threads are armed
    /// relative to MPI_Init, so a job's timers fire (nearly) in lockstep —
    /// which is why "their influence was strong enough to disrupt the
    /// tightly synchronized Allreduce code" (§5.3) even at 15 tasks/node,
    /// where a single stray thread would just ride the idle CPU.
    pub fn with_phase(spec: ProgressSpec, phase: SimDur, rng: SimRng) -> ProgressThread {
        ProgressThread {
            spec,
            rng,
            phase,
            fired: true, // sleep to phase first; do not burst at spawn
            firings: 0,
        }
    }
}

impl Program for ProgressThread {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        if self.fired {
            self.fired = false;
            Action::SleepUntil(ctx.local_now.next_boundary(self.spec.interval, self.phase))
        } else {
            self.fired = true;
            self.firings += 1;
            Action::Compute(self.rng.jitter(self.spec.burst, self.spec.jitter))
        }
    }

    fn kind(&self) -> &'static str {
        "mpi_timer"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![("firings", self.firings)]
    }

    fn snapshot_state(&self) -> Value {
        // `phase` is fixed at construction (same rng stream on rebuild),
        // so only the alternation flag, counter, and rng position move.
        (self.fired, self.firings, self.rng.save_state()).to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let (fired, firings, rng): (bool, u64, RngState) = Deserialize::from_value(state)?;
        self.fired = fired;
        self.firings = firings;
        self.rng.load_state(&rng).map_err(serde::Error)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::{ClockModel, CpuId, Kernel, Prio, SchedOptions, SoloRunner, ThreadSpec};
    use pa_simkit::SimTime;
    use pa_trace::{HookMask, ThreadClass};

    #[test]
    fn default_matches_paper() {
        let s = ProgressSpec::default();
        assert_eq!(s.interval, SimDur::from_millis(400));
        assert_eq!(ProgressSpec::mitigated().interval, SimDur::from_secs(400));
    }

    #[test]
    fn fires_at_its_interval() {
        let mut k = Kernel::new(
            0,
            1,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(1),
            1 << 12,
        );
        k.trace_mut().set_mask(HookMask::NONE);
        let tid = k.spawn(
            ThreadSpec::new("mpi_timer", ThreadClass::MpiAux, Prio(85)).on_cpu(CpuId(0)),
            Box::new(ProgressThread::new(
                ProgressSpec::default(),
                SimRng::from_seed(2),
            )),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_secs(4));
        // ~10 firings of ~350µs: 2-6ms total CPU.
        let t = r.kernel.thread_cpu_time(tid);
        assert!(
            t >= SimDur::from_millis(2) && t <= SimDur::from_millis(7),
            "timer thread consumed {t}"
        );
    }

    #[test]
    fn mitigated_never_fires_in_short_runs() {
        let mut k = Kernel::new(
            0,
            1,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(1),
            1 << 12,
        );
        k.trace_mut().set_mask(HookMask::NONE);
        let tid = k.spawn(
            ThreadSpec::new("mpi_timer", ThreadClass::MpiAux, Prio(85)).on_cpu(CpuId(0)),
            Box::new(ProgressThread::new(
                ProgressSpec::mitigated(),
                SimRng::from_seed(2),
            )),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_secs(4));
        // At most the single boot-time burst.
        let t = r.kernel.thread_cpu_time(tid);
        assert!(
            t <= SimDur::from_micros(600),
            "mitigated thread consumed {t}"
        );
    }
}
