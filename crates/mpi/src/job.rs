//! Job installation: spawning ranks and their timer threads on a cluster.
//!
//! Mirrors POE's job start (§4): on each node the partition manager
//! spawns one task per CPU (or `tasks_per_node` of them), each task's pid
//! becomes known as it is created, and the MPI library registers tasks
//! with the node co-scheduler at init time. Here, the installer records
//! actual kernel thread ids into the shared [`JobLayout`].

use crate::layout::{JobLayout, LayoutHandle};
use crate::progress::{ProgressSpec, ProgressThread};
use crate::rank::{MpiConfig, RankProgram, RankWorkload};
use crate::recorder::{RecorderHandle, RunRecorder};
use pa_cluster::ClusterSim;
use pa_kernel::{CpuId, Endpoint, Prio, ThreadSpec, Tid};
use pa_simkit::SeedSpace;
use pa_trace::ThreadClass;

/// Shape and configuration of a parallel job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Tasks per node (16 to fill the node, 15 to leave the reserve CPU —
    /// the §2 workaround the paper aims to retire).
    pub tasks_per_node: u32,
    /// MPI library configuration.
    pub mpi: MpiConfig,
    /// Spawn per-rank MPI timer threads with this spec (None = no
    /// progress engine, an idealization).
    pub progress: Option<ProgressSpec>,
    /// Task priority at job start (AIX user processes: 90–120).
    pub rank_prio: Prio,
}

impl Default for JobSpec {
    fn default() -> Self {
        JobSpec {
            tasks_per_node: 16,
            mpi: MpiConfig::default(),
            progress: Some(ProgressSpec::default()),
            rank_prio: Prio::USER,
        }
    }
}

/// Handles to an installed job.
#[derive(Debug)]
pub struct Job {
    /// Rank addresses (shared with the rank programs).
    pub layout: LayoutHandle,
    /// Timing collector (shared with the rank programs).
    pub recorder: RecorderHandle,
    /// Rank thread ids, rank order.
    pub rank_tids: Vec<Endpoint>,
    /// Timer-thread ids, rank order (empty when no progress engine).
    pub timer_tids: Vec<Endpoint>,
    /// Total ranks.
    pub nranks: u32,
}

/// Spawn a job across all nodes of `sim`.
///
/// `make_workload` is called once per global rank. Pre-registered
/// co-scheduler endpoints (from `pa-core`) must already be present in
/// `layout` — pass [`JobLayout::empty`]'s handle through the co-scheduler
/// installer first, or leave it fresh for an uncontrolled job.
pub fn install_job(
    sim: &mut ClusterSim,
    layout: LayoutHandle,
    spec: &JobSpec,
    seeds: &SeedSpace,
    make_workload: &mut dyn FnMut(u32) -> Box<dyn RankWorkload>,
) -> Job {
    let nodes = sim.nodes();
    let tpn = spec.tasks_per_node;
    assert!(tpn > 0, "a job needs at least one task per node");
    let nranks = nodes * tpn;
    let recorder = RunRecorder::shared();
    let mut rank_tids = Vec::with_capacity(nranks as usize);
    let mut timer_tids = Vec::new();
    let aux_prio = Prio(spec.rank_prio.0.saturating_sub(5));
    // One firing phase for the whole job: timer threads are armed at
    // MPI_Init, so they tick (nearly) together across every rank.
    let timer_phase = spec.progress.map(|ps| {
        let mut rng = seeds.stream_at("mpi/timer-phase", 0, 0);
        pa_simkit::SimDur::from_nanos(rng.range(0, ps.interval.nanos().max(1)))
    });

    for node in 0..nodes {
        let kernel = sim.kernel_mut(node);
        assert!(
            tpn <= u32::from(kernel.ncpus()),
            "more tasks per node than CPUs is not the paper's regime"
        );
        for local in 0..tpn {
            let rank = node * tpn + local;
            let program = RankProgram::new(
                rank,
                nranks,
                layout.clone(),
                make_workload(rank),
                recorder.clone(),
                spec.mpi,
            );
            let tid = kernel.spawn(
                ThreadSpec::new(format!("mpi_rank_{rank}"), ThreadClass::App, spec.rank_prio)
                    .on_cpu(CpuId(local as u8)),
                Box::new(program),
            );
            rank_tids.push(Endpoint { node, tid });
            if let Some(ps) = spec.progress {
                let rng = seeds.stream_at("mpi/timer", u64::from(node), u64::from(local));
                let phase = timer_phase.expect("phase drawn when progress is set");
                let ttid: Tid = kernel.spawn(
                    ThreadSpec::new(format!("mpi_timer_{rank}"), ThreadClass::MpiAux, aux_prio)
                        .on_cpu(CpuId(local as u8)),
                    Box::new(ProgressThread::with_phase(ps, phase, rng)),
                );
                timer_tids.push(Endpoint { node, tid: ttid });
            }
        }
    }
    layout.write().unwrap().set_ranks(rank_tids.clone(), tpn);
    Job {
        layout,
        recorder,
        rank_tids,
        timer_tids,
        nranks,
    }
}

/// Spawn a job on an explicit subset of nodes of a *booted* cluster — the
/// batch layer's job launch. Differences from [`install_job`]:
///
/// * ranks are numbered by position in `nodes` (`idx * tpn + local`), so
///   a job on nodes `[2, 5]` has ranks 0..2·tpn with endpoints carrying
///   the physical node ids — collectives route by endpoint and need no
///   remapping;
/// * threads are spawned through [`ClusterSim::spawn_thread`] at the
///   current window barrier, so the launch instant is identical at any
///   `--sim-threads`;
/// * thread names carry `name_prefix` (e.g. `j3_rank_0`) so traces from
///   co-resident jobs stay distinguishable.
///
/// Rank CPU slots restart at 0 on each node: two jobs time-sharing a node
/// pin their local rank *i* to the same CPU *i* and the per-job gang
/// windows arbitrate between them.
pub fn install_job_on(
    sim: &mut ClusterSim,
    layout: LayoutHandle,
    spec: &JobSpec,
    seeds: &SeedSpace,
    nodes: &[u32],
    name_prefix: &str,
    make_workload: &mut dyn FnMut(u32) -> Box<dyn RankWorkload>,
) -> Job {
    let tpn = spec.tasks_per_node;
    assert!(tpn > 0, "a job needs at least one task per node");
    assert!(!nodes.is_empty(), "a job needs at least one node");
    let nranks = nodes.len() as u32 * tpn;
    let recorder = RunRecorder::shared();
    let mut rank_tids = Vec::with_capacity(nranks as usize);
    let mut timer_tids = Vec::new();
    let aux_prio = Prio(spec.rank_prio.0.saturating_sub(5));
    let timer_phase = spec.progress.map(|ps| {
        let mut rng = seeds.stream_at("mpi/timer-phase", 0, 0);
        pa_simkit::SimDur::from_nanos(rng.range(0, ps.interval.nanos().max(1)))
    });

    for (idx, &node) in nodes.iter().enumerate() {
        assert!(
            tpn <= u32::from(sim.kernel(node).ncpus()),
            "more tasks per node than CPUs is not the paper's regime"
        );
        for local in 0..tpn {
            let rank = idx as u32 * tpn + local;
            let program = RankProgram::new(
                rank,
                nranks,
                layout.clone(),
                make_workload(rank),
                recorder.clone(),
                spec.mpi,
            );
            let tid = sim.spawn_thread(
                node,
                ThreadSpec::new(
                    format!("{name_prefix}rank_{rank}"),
                    ThreadClass::App,
                    spec.rank_prio,
                )
                .on_cpu(CpuId(local as u8)),
                Box::new(program),
            );
            rank_tids.push(Endpoint { node, tid });
            if let Some(ps) = spec.progress {
                let rng = seeds.stream_at("mpi/timer", u64::from(node), u64::from(local));
                let phase = timer_phase.expect("phase drawn when progress is set");
                let ttid: Tid = sim.spawn_thread(
                    node,
                    ThreadSpec::new(
                        format!("{name_prefix}timer_{rank}"),
                        ThreadClass::MpiAux,
                        aux_prio,
                    )
                    .on_cpu(CpuId(local as u8)),
                    Box::new(ProgressThread::with_phase(ps, phase, rng)),
                );
                timer_tids.push(Endpoint { node, tid: ttid });
            }
        }
    }
    layout.write().unwrap().set_ranks(rank_tids.clone(), tpn);
    Job {
        layout,
        recorder,
        rank_tids,
        timer_tids,
        nranks,
    }
}

/// Convenience: an empty layout handle (no co-scheduler registered).
pub fn fresh_layout() -> LayoutHandle {
    JobLayout::empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::{MpiOp, OpList};
    use crate::recorder::OpKind;
    use pa_cluster::ClusterSpec;
    use pa_simkit::{SimDur, SimTime};

    fn tiny_cluster(nodes: u32, cpus: u8) -> ClusterSim {
        let spec = ClusterSpec {
            nodes,
            cpus_per_node: cpus,
            skew_max: SimDur::ZERO,
            ..ClusterSpec::sp_system(nodes)
        };
        ClusterSim::build(&spec, &SeedSpace::new(7))
    }

    #[test]
    fn whole_job_barrier_completes() {
        let mut sim = tiny_cluster(2, 4);
        let spec = JobSpec {
            tasks_per_node: 4,
            progress: None,
            ..JobSpec::default()
        };
        let job = install_job(
            &mut sim,
            fresh_layout(),
            &spec,
            &SeedSpace::new(7),
            &mut |_r| Box::new(OpList::new(vec![MpiOp::Barrier])),
        );
        sim.boot();
        let end = sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0, "deadlock: barrier never completed");
        let rec = job.recorder.lock().unwrap();
        assert_eq!(rec.count(OpKind::Barrier), 1);
        rec.verify_complete(8).expect("all ranks completed");
        assert!(end < SimTime::from_millis(5), "barrier took {end}");
    }

    #[test]
    fn allreduce_takes_log_time_on_quiet_cluster() {
        // 4 nodes × 4 tasks, no noise, no timer threads: the allreduce
        // should complete in O(log n) network hops — order 100-400µs —
        // and all ops complete on all ranks.
        let mut sim = tiny_cluster(4, 4);
        let spec = JobSpec {
            tasks_per_node: 4,
            progress: None,
            ..JobSpec::default()
        };
        let job = install_job(
            &mut sim,
            fresh_layout(),
            &spec,
            &SeedSpace::new(7),
            &mut |_r| {
                Box::new(OpList::new(vec![
                    MpiOp::Allreduce { bytes: 8 },
                    MpiOp::Allreduce { bytes: 8 },
                ]))
            },
        );
        sim.boot();
        sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        let rec = job.recorder.lock().unwrap();
        assert_eq!(rec.count(OpKind::Allreduce), 2);
        rec.verify_complete(16).expect("complete");
        let mean = rec.mean_rank_dur_us(OpKind::Allreduce);
        assert!(mean > 20.0, "implausibly fast: {mean}µs");
        assert!(mean < 1000.0, "implausibly slow: {mean}µs");
    }

    #[test]
    fn exchange_pairs_complete() {
        let mut sim = tiny_cluster(2, 2);
        let spec = JobSpec {
            tasks_per_node: 2,
            progress: None,
            ..JobSpec::default()
        };
        let job = install_job(
            &mut sim,
            fresh_layout(),
            &spec,
            &SeedSpace::new(7),
            &mut |_r| Box::new(RingExchange { left: 2 }),
        );
        sim.boot();
        sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
        let rec = job.recorder.lock().unwrap();
        assert_eq!(rec.count(OpKind::Exchange), 2);
        rec.verify_complete(4).expect("complete");
    }

    /// Each rank exchanges with both ring neighbours, `left` times.
    struct RingExchange {
        left: u32,
    }
    impl RankWorkload for RingExchange {
        fn next_op(&mut self, rank: u32, nranks: u32) -> MpiOp {
            if self.left == 0 {
                return MpiOp::Done;
            }
            self.left -= 1;
            let l = (rank + nranks - 1) % nranks;
            let r = (rank + 1) % nranks;
            MpiOp::Exchange {
                peers: vec![l, r],
                bytes: 1024,
            }
        }
    }

    #[test]
    fn timer_threads_spawn_per_rank() {
        let mut sim = tiny_cluster(2, 2);
        let spec = JobSpec {
            tasks_per_node: 2,
            progress: Some(ProgressSpec::default()),
            ..JobSpec::default()
        };
        let job = install_job(
            &mut sim,
            fresh_layout(),
            &spec,
            &SeedSpace::new(7),
            &mut |_r| Box::new(OpList::new(vec![MpiOp::Compute(SimDur::from_millis(1))])),
        );
        assert_eq!(job.timer_tids.len(), 4);
        assert_eq!(job.rank_tids.len(), 4);
        sim.boot();
        sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
    }

    #[test]
    fn fifteen_of_sixteen_layout() {
        let mut sim = tiny_cluster(1, 16);
        let spec = JobSpec {
            tasks_per_node: 15,
            progress: None,
            ..JobSpec::default()
        };
        let job = install_job(
            &mut sim,
            fresh_layout(),
            &spec,
            &SeedSpace::new(7),
            &mut |_r| Box::new(OpList::new(vec![MpiOp::Barrier])),
        );
        assert_eq!(job.nranks, 15);
        sim.boot();
        sim.run_until_apps_done(SimTime::from_secs(1));
        assert_eq!(sim.apps_alive(), 0);
    }
}
