//! Collective-operation communication schedules.
//!
//! §5.1 of the paper: *"The standard tree algorithm for MPI_Allreduce does
//! no more than 2·log₂(N) separate point-to-point communications to
//! complete the reduction"* — that is a binomial reduce-to-root followed
//! by a binomial broadcast, which we implement as the default
//! ([`binomial_allreduce`]). A recursive-doubling variant and the
//! dissemination barrier and ring/recursive-doubling allgathers used by
//! the workloads are provided as well.
//!
//! A schedule is the *per-rank* ordered list of [`CollStep`]s; the data
//! dependencies between ranks' steps are what turn one delayed rank into
//! a cluster-wide stall (§2's cascading effect).

use serde::{Deserialize, Serialize};

/// One step of a rank's collective schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CollStep {
    /// Send the current partial result to `peer` in round `phase`.
    Send {
        /// Destination rank.
        peer: u32,
        /// Round number (part of the message tag).
        phase: u16,
    },
    /// Receive from `peer` in round `phase`.
    Recv {
        /// Source rank.
        peer: u32,
        /// Round number.
        phase: u16,
        /// Combine into the local value (true) or replace it (false, for
        /// broadcast-style moves). Combining costs reduction compute.
        reduce: bool,
    },
}

/// Number of rounds of a binomial tree over `n` ranks.
fn tree_rounds(n: u32) -> u16 {
    if n <= 1 {
        0
    } else {
        (32 - (n - 1).leading_zeros()) as u16
    }
}

/// Binomial-tree Allreduce: reduce to rank 0, then broadcast back.
/// Works for any `n`; 2·⌈log₂ n⌉ rounds total, the paper's "standard
/// tree algorithm".
pub fn binomial_allreduce(rank: u32, n: u32) -> Vec<CollStep> {
    assert!(rank < n, "rank {rank} out of range for {n} ranks");
    let mut steps = Vec::new();
    let rounds = tree_rounds(n);
    // Reduce phase: in round k, ranks with (rank % 2^(k+1)) == 2^k send to
    // rank - 2^k; ranks with (rank % 2^(k+1)) == 0 receive from rank + 2^k
    // when that peer exists.
    for k in 0..rounds {
        let bit = 1u32 << k;
        let span = bit << 1;
        if rank % span == bit {
            steps.push(CollStep::Send {
                peer: rank - bit,
                phase: k,
            });
            break; // after sending up, this rank waits for the broadcast
        } else if rank % span == 0 && rank + bit < n {
            steps.push(CollStep::Recv {
                peer: rank + bit,
                phase: k,
                reduce: true,
            });
        }
    }
    // Broadcast phase: mirror image, rounds counted downward; phases are
    // offset so they never collide with reduce-phase tags.
    let bcast_base = rounds;
    for k in (0..rounds).rev() {
        let bit = 1u32 << k;
        let span = bit << 1;
        let phase = bcast_base + (rounds - 1 - k);
        if rank % span == bit {
            steps.push(CollStep::Recv {
                peer: rank - bit,
                phase,
                reduce: false,
            });
        } else if rank % span == 0 && rank + bit < n {
            steps.push(CollStep::Send {
                peer: rank + bit,
                phase,
            });
        }
    }
    // Receives of the broadcast must come before that rank's own
    // broadcast sends: fix ordering for non-root ranks (their Recv is
    // generated in the loop above at the round where they receive, which
    // precedes their sends in lower rounds — but the loop emits higher
    // rounds first, and a rank receives exactly once, in the highest
    // round where its bit pattern matches, so ordering is already
    // correct).
    steps
}

/// Binomial reduce-to-root (the first half of the paper's "standard
/// tree"). Any `n`, any `root` (ranks are rotated so the virtual root is
/// 0).
pub fn binomial_reduce(rank: u32, n: u32, root: u32) -> Vec<CollStep> {
    assert!(rank < n && root < n, "rank/root out of range");
    let vrank = (rank + n - root) % n;
    let unmap = |v: u32| (v + root) % n;
    let mut steps = Vec::new();
    let rounds = tree_rounds(n);
    for k in 0..rounds {
        let bit = 1u32 << k;
        let span = bit << 1;
        if vrank % span == bit {
            steps.push(CollStep::Send {
                peer: unmap(vrank - bit),
                phase: k,
            });
            break;
        } else if vrank % span == 0 && vrank + bit < n {
            steps.push(CollStep::Recv {
                peer: unmap(vrank + bit),
                phase: k,
                reduce: true,
            });
        }
    }
    steps
}

/// Binomial broadcast from `root` (the second half of the standard tree).
pub fn binomial_bcast(rank: u32, n: u32, root: u32) -> Vec<CollStep> {
    assert!(rank < n && root < n, "rank/root out of range");
    let vrank = (rank + n - root) % n;
    let unmap = |v: u32| (v + root) % n;
    let mut steps = Vec::new();
    let rounds = tree_rounds(n);
    for k in (0..rounds).rev() {
        let bit = 1u32 << k;
        let span = bit << 1;
        let phase = rounds - 1 - k;
        if vrank % span == bit {
            steps.push(CollStep::Recv {
                peer: unmap(vrank - bit),
                phase,
                reduce: false,
            });
        } else if vrank % span == 0 && vrank + bit < n {
            steps.push(CollStep::Send {
                peer: unmap(vrank + bit),
                phase,
            });
        }
    }
    steps
}

/// Recursive-doubling Allreduce. For non-powers of two the standard
/// fold-in/fold-out adaptation is used: the first `2·rem` ranks pair up,
/// odd members fold into even ones, the resulting power-of-two set does
/// recursive doubling, and folded ranks get the result back at the end.
pub fn recursive_doubling_allreduce(rank: u32, n: u32) -> Vec<CollStep> {
    assert!(rank < n, "rank {rank} out of range for {n} ranks");
    let mut steps = Vec::new();
    if n == 1 {
        return steps;
    }
    let pow2 = 1u32 << (31 - n.leading_zeros()); // largest power of two ≤ n
    let rem = n - pow2;
    let rounds = pow2.trailing_zeros() as u16;
    // Pre-fold: ranks < 2*rem pair (even, odd); odd sends to even.
    let (active, active_rank) = if rank < 2 * rem {
        if rank % 2 == 1 {
            steps.push(CollStep::Send {
                peer: rank - 1,
                phase: 0,
            });
            (false, 0)
        } else {
            steps.push(CollStep::Recv {
                peer: rank + 1,
                phase: 0,
                reduce: true,
            });
            (true, rank / 2)
        }
    } else {
        (true, rank - rem)
    };
    if active {
        // Recursive doubling among `pow2` active ranks; each round is a
        // pairwise exchange. Send before recv: sends are buffered/eager so
        // this cannot deadlock and halves the critical path.
        for k in 0..rounds {
            let partner_active = active_rank ^ (1 << k);
            // Map active rank back to the real rank space.
            let partner = if partner_active < rem {
                partner_active * 2
            } else {
                partner_active + rem
            };
            let phase = 1 + k;
            steps.push(CollStep::Send {
                peer: partner,
                phase,
            });
            steps.push(CollStep::Recv {
                peer: partner,
                phase,
                reduce: true,
            });
        }
    }
    // Post-fold: even partners send the final result to their odd mates.
    let post_phase = 1 + rounds;
    if rank < 2 * rem {
        if rank % 2 == 0 {
            steps.push(CollStep::Send {
                peer: rank + 1,
                phase: post_phase,
            });
        } else {
            steps.push(CollStep::Recv {
                peer: rank - 1,
                phase: post_phase,
                reduce: false,
            });
        }
    }
    steps
}

/// Dissemination barrier: ⌈log₂ n⌉ rounds; in round k, rank r signals
/// `(r + 2^k) mod n` and waits for `(r - 2^k) mod n`.
pub fn dissemination_barrier(rank: u32, n: u32) -> Vec<CollStep> {
    assert!(rank < n);
    let mut steps = Vec::new();
    if n == 1 {
        return steps;
    }
    let rounds = tree_rounds(n);
    for k in 0..rounds {
        let dist = 1u32 << k;
        let to = (rank + dist) % n;
        let from = (rank + n - (dist % n)) % n;
        steps.push(CollStep::Send { peer: to, phase: k });
        steps.push(CollStep::Recv {
            peer: from,
            phase: k,
            reduce: true, // barrier "combines" knowledge, no data cost
        });
    }
    steps
}

/// Ring allgather: n−1 rounds; each round passes one block to the right
/// neighbour and receives one from the left.
pub fn ring_allgather(rank: u32, n: u32) -> Vec<CollStep> {
    assert!(rank < n);
    let mut steps = Vec::new();
    if n == 1 {
        return steps;
    }
    let right = (rank + 1) % n;
    let left = (rank + n - 1) % n;
    for k in 0..(n - 1) as u16 {
        steps.push(CollStep::Send {
            peer: right,
            phase: k,
        });
        steps.push(CollStep::Recv {
            peer: left,
            phase: k,
            reduce: true, // accumulates blocks
        });
    }
    steps
}

/// Recursive-doubling allgather (powers of two only; callers fall back to
/// [`ring_allgather`] otherwise): log₂ n rounds of pairwise exchange with
/// doubling payloads.
pub fn recursive_doubling_allgather(rank: u32, n: u32) -> Option<Vec<CollStep>> {
    if !n.is_power_of_two() {
        return None;
    }
    let mut steps = Vec::new();
    let rounds = n.trailing_zeros() as u16;
    for k in 0..rounds {
        let partner = rank ^ (1 << k);
        steps.push(CollStep::Send {
            peer: partner,
            phase: k,
        });
        steps.push(CollStep::Recv {
            peer: partner,
            phase: k,
            reduce: true,
        });
    }
    Some(steps)
}

/// Which collective algorithm an operation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// Binomial reduce + broadcast (the paper's "standard tree").
    BinomialTree,
    /// Recursive doubling (with non-power-of-two folding).
    RecursiveDoubling,
}

/// Total messages a schedule set sends (test/diagnostic helper).
pub fn total_messages(schedules: &[Vec<CollStep>]) -> usize {
    schedules
        .iter()
        .flat_map(|s| s.iter())
        .filter(|s| matches!(s, CollStep::Send { .. }))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::{HashMap, HashSet, VecDeque};

    /// Execute a schedule set abstractly: each rank runs its steps in
    /// order; a Recv blocks until the matching Send has executed. Carried
    /// values are sets of contributing ranks; a reducing Recv unions, a
    /// replacing Recv overwrites. Returns each rank's final set, or None
    /// on deadlock.
    fn simulate(schedules: &[Vec<CollStep>]) -> Option<Vec<HashSet<u32>>> {
        let n = schedules.len();
        let mut values: Vec<HashSet<u32>> = (0..n as u32).map(|r| HashSet::from([r])).collect();
        let mut pc = vec![0usize; n];
        // (src, dst, phase) -> queue of sent value-sets.
        let mut in_flight: HashMap<(u32, u32, u16), VecDeque<HashSet<u32>>> = HashMap::new();
        loop {
            let mut progressed = false;
            for r in 0..n {
                while pc[r] < schedules[r].len() {
                    match schedules[r][pc[r]] {
                        CollStep::Send { peer, phase } => {
                            let v = values[r].clone();
                            in_flight
                                .entry((r as u32, peer, phase))
                                .or_default()
                                .push_back(v);
                            pc[r] += 1;
                            progressed = true;
                        }
                        CollStep::Recv {
                            peer,
                            phase,
                            reduce,
                        } => {
                            let key = (peer, r as u32, phase);
                            let Some(q) = in_flight.get_mut(&key) else {
                                break;
                            };
                            let Some(v) = q.pop_front() else { break };
                            if reduce {
                                values[r].extend(v);
                            } else {
                                values[r] = v;
                            }
                            pc[r] += 1;
                            progressed = true;
                        }
                    }
                }
            }
            if pc.iter().enumerate().all(|(r, &p)| p == schedules[r].len()) {
                return Some(values);
            }
            if !progressed {
                return None; // deadlock
            }
        }
    }

    fn check_allreduce(n: u32, f: fn(u32, u32) -> Vec<CollStep>) {
        let schedules: Vec<_> = (0..n).map(|r| f(r, n)).collect();
        let result = simulate(&schedules).unwrap_or_else(|| panic!("deadlock at n={n}"));
        let full: HashSet<u32> = (0..n).collect();
        for (r, v) in result.iter().enumerate() {
            assert_eq!(v, &full, "rank {r} of {n} missing contributions");
        }
    }

    #[test]
    fn binomial_allreduce_all_sizes() {
        for n in 1..=66 {
            check_allreduce(n, binomial_allreduce);
        }
        for n in [128, 255, 256, 944, 1024] {
            check_allreduce(n, binomial_allreduce);
        }
    }

    #[test]
    fn recursive_doubling_allreduce_all_sizes() {
        for n in 1..=66 {
            check_allreduce(n, recursive_doubling_allreduce);
        }
        for n in [128, 255, 256, 944, 1024] {
            check_allreduce(n, recursive_doubling_allreduce);
        }
    }

    #[test]
    fn binomial_reduce_gathers_all_at_root() {
        for n in [1u32, 2, 3, 7, 16, 33, 100] {
            for root in [0, n / 2, n - 1] {
                let schedules: Vec<_> = (0..n).map(|r| binomial_reduce(r, n, root)).collect();
                let result = simulate(&schedules)
                    .unwrap_or_else(|| panic!("reduce deadlock n={n} root={root}"));
                let full: HashSet<u32> = (0..n).collect();
                assert_eq!(result[root as usize], full, "root missing contributions");
            }
        }
    }

    #[test]
    fn binomial_bcast_reaches_everyone() {
        // Broadcast moves the root's value set to all ranks: run reduce
        // first conceptually — here we just check the replace-semantics
        // propagation gives every rank a set containing the root.
        for n in [1u32, 2, 5, 16, 33] {
            for root in [0, n - 1] {
                let schedules: Vec<_> = (0..n).map(|r| binomial_bcast(r, n, root)).collect();
                let result = simulate(&schedules)
                    .unwrap_or_else(|| panic!("bcast deadlock n={n} root={root}"));
                for (r, v) in result.iter().enumerate() {
                    assert!(
                        v.contains(&root),
                        "rank {r} of {n} did not receive the root's data"
                    );
                }
            }
        }
    }

    #[test]
    fn barrier_disseminates_everyone() {
        for n in [1u32, 2, 3, 5, 8, 13, 16, 100] {
            let schedules: Vec<_> = (0..n).map(|r| dissemination_barrier(r, n)).collect();
            let result = simulate(&schedules).expect("barrier deadlock");
            let full: HashSet<u32> = (0..n).collect();
            for v in result {
                assert_eq!(v, full, "dissemination incomplete at n={n}");
            }
        }
    }

    #[test]
    fn ring_allgather_collects_all_blocks() {
        for n in [1u32, 2, 3, 7, 16, 33] {
            let schedules: Vec<_> = (0..n).map(|r| ring_allgather(r, n)).collect();
            let result = simulate(&schedules).expect("ring deadlock");
            let full: HashSet<u32> = (0..n).collect();
            for v in result {
                assert_eq!(v, full);
            }
        }
    }

    #[test]
    fn rd_allgather_powers_of_two_only() {
        assert!(recursive_doubling_allgather(0, 12).is_none());
        for n in [2u32, 4, 16, 64] {
            let schedules: Vec<_> = (0..n)
                .map(|r| recursive_doubling_allgather(r, n).unwrap())
                .collect();
            let result = simulate(&schedules).expect("rd allgather deadlock");
            let full: HashSet<u32> = (0..n).collect();
            for v in result {
                assert_eq!(v, full);
            }
        }
    }

    #[test]
    fn binomial_message_count_matches_paper() {
        // "no more than 2·log2(N) separate point to point communications"
        // — per *rank on the critical path*; totals are 2(N-1) messages.
        for n in [2u32, 16, 944, 1024] {
            let schedules: Vec<_> = (0..n).map(|r| binomial_allreduce(r, n)).collect();
            assert_eq!(total_messages(&schedules), 2 * (n as usize - 1));
            // No rank does more than 2·ceil(log2 n) communications.
            let max_steps = schedules.iter().map(|s| s.len()).max().unwrap();
            assert!(max_steps <= 2 * tree_rounds(n) as usize + 2);
        }
    }

    #[test]
    fn single_rank_schedules_are_empty() {
        assert!(binomial_allreduce(0, 1).is_empty());
        assert!(recursive_doubling_allreduce(0, 1).is_empty());
        assert!(dissemination_barrier(0, 1).is_empty());
        assert!(ring_allgather(0, 1).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_bounds_checked() {
        binomial_allreduce(5, 5);
    }

    #[test]
    fn tree_rounds_values() {
        assert_eq!(tree_rounds(1), 0);
        assert_eq!(tree_rounds(2), 1);
        assert_eq!(tree_rounds(3), 2);
        assert_eq!(tree_rounds(944), 10);
        assert_eq!(tree_rounds(1024), 10);
        assert_eq!(tree_rounds(1025), 11);
    }
}
