//! Message-tag encoding.
//!
//! The kernel matches messages by a single `u64` tag plus source filter;
//! this module packs MPI-level envelopes into that space:
//!
//! ```text
//! bits 60..64  kind   (1 = collective, 2 = point-to-point, 3 = control)
//! bits 12..60  seq    (per-job operation sequence number)
//! bits  0..12  phase  (round within the collective)
//! ```
//!
//! Control messages model the POE "control pipe" of §4: task registration
//! with the co-scheduler at MPI init, and the attach/detach requests the
//! prototype MPI library exposes for I/O phases.

/// Tag kind: collective traffic.
pub const KIND_COLL: u64 = 1;
/// Tag kind: point-to-point traffic.
pub const KIND_P2P: u64 = 2;
/// Tag kind: control-pipe traffic.
pub const KIND_CTRL: u64 = 3;

const SEQ_BITS: u32 = 48;
const PHASE_BITS: u32 = 12;
const SEQ_MASK: u64 = (1 << SEQ_BITS) - 1;
const PHASE_MASK: u64 = (1 << PHASE_BITS) - 1;

/// Pack a collective-message tag.
pub fn coll_tag(seq: u64, phase: u16) -> u64 {
    debug_assert!(seq <= SEQ_MASK, "collective sequence overflow");
    debug_assert!(u64::from(phase) <= PHASE_MASK, "phase overflow");
    (KIND_COLL << 60) | ((seq & SEQ_MASK) << PHASE_BITS) | u64::from(phase)
}

/// Pack a point-to-point tag (phase distinguishes concurrent exchanges).
pub fn p2p_tag(seq: u64, phase: u16) -> u64 {
    debug_assert!(seq <= SEQ_MASK);
    (KIND_P2P << 60) | ((seq & SEQ_MASK) << PHASE_BITS) | u64::from(phase)
}

/// Control-pipe opcodes (§4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlOp {
    /// A task reports its kernel tid to the co-scheduler at MPI init.
    Register,
    /// The application requests release from co-scheduling (I/O phase).
    Detach,
    /// The application requests co-scheduling be resumed.
    Attach,
    /// The batch layer retires a finished job's co-scheduler: restore base
    /// priorities and exit. (POE's partition manager tears the daemon down
    /// with the job; the 2003 single-job runs never send this.)
    Shutdown,
}

impl CtrlOp {
    /// Encode as a tag.
    pub fn tag(self) -> u64 {
        let code = match self {
            CtrlOp::Register => 1,
            CtrlOp::Detach => 2,
            CtrlOp::Attach => 3,
            CtrlOp::Shutdown => 4,
        };
        (KIND_CTRL << 60) | code
    }

    /// Decode from a tag (None for non-control tags).
    pub fn from_tag(tag: u64) -> Option<CtrlOp> {
        if tag >> 60 != KIND_CTRL {
            return None;
        }
        match tag & 0xfff {
            1 => Some(CtrlOp::Register),
            2 => Some(CtrlOp::Detach),
            3 => Some(CtrlOp::Attach),
            4 => Some(CtrlOp::Shutdown),
            _ => None,
        }
    }
}

/// Extract the kind field of any tag.
pub fn tag_kind(tag: u64) -> u64 {
    tag >> 60
}

/// Extract the sequence field of a collective/p2p tag.
pub fn tag_seq(tag: u64) -> u64 {
    (tag >> PHASE_BITS) & SEQ_MASK
}

/// Extract the phase field of a collective/p2p tag.
pub fn tag_phase(tag: u64) -> u16 {
    (tag & PHASE_MASK) as u16
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coll_roundtrip() {
        let t = coll_tag(4095, 17);
        assert_eq!(tag_kind(t), KIND_COLL);
        assert_eq!(tag_seq(t), 4095);
        assert_eq!(tag_phase(t), 17);
    }

    #[test]
    fn p2p_roundtrip() {
        let t = p2p_tag(99, 3);
        assert_eq!(tag_kind(t), KIND_P2P);
        assert_eq!(tag_seq(t), 99);
        assert_eq!(tag_phase(t), 3);
    }

    #[test]
    fn kinds_do_not_collide() {
        assert_ne!(coll_tag(1, 1), p2p_tag(1, 1));
        assert_ne!(coll_tag(0, 1), CtrlOp::Register.tag());
    }

    #[test]
    fn ctrl_roundtrip() {
        for op in [
            CtrlOp::Register,
            CtrlOp::Detach,
            CtrlOp::Attach,
            CtrlOp::Shutdown,
        ] {
            assert_eq!(CtrlOp::from_tag(op.tag()), Some(op));
        }
        assert_eq!(CtrlOp::from_tag(coll_tag(1, 1)), None);
        assert_eq!(CtrlOp::from_tag((KIND_CTRL << 60) | 99), None);
    }

    #[test]
    fn distinct_seqs_distinct_tags() {
        let mut seen = std::collections::HashSet::new();
        for seq in 0..100 {
            for phase in 0..30 {
                assert!(seen.insert(coll_tag(seq, phase)));
            }
        }
    }
}
