//! # pa-mpi — the MPI-like runtime on the PACE simulator
//!
//! Implements the message-passing layer the study's benchmarks exercise:
//!
//! * [`coll`] — real collective communication schedules (the paper's
//!   binomial "standard tree" Allreduce, recursive doubling, dissemination
//!   barrier, ring/recursive-doubling allgather);
//! * [`RankProgram`] / [`RankWorkload`] — MPI ranks as kernel threads that
//!   busy-poll their receives (IBM MPI user-space polling) and register
//!   with the node co-scheduler through the control pipe (§4);
//! * [`ProgressThread`] — the 400 ms MPI timer threads §5.3 identifies as
//!   a residual interference source, with the `MP_POLLING_INTERVAL`
//!   mitigation;
//! * [`RunRecorder`] — per-operation timing capture (mean per-task times
//!   for Figures 3/5/6, per-call series for Figure 4);
//! * [`install_job`] — POE-style job start across a [`ClusterSim`](pa_cluster::ClusterSim).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod coll;
pub mod job;
pub mod layout;
pub mod progress;
pub mod rank;
pub mod recorder;
pub mod tags;

pub use coll::{Algorithm, CollStep};
pub use job::{fresh_layout, install_job, install_job_on, Job, JobSpec};
pub use layout::{JobLayout, LayoutHandle};
pub use progress::{ProgressSpec, ProgressThread};
pub use rank::{MpiConfig, MpiOp, OpList, RankProgram, RankWorkload};
pub use recorder::{OpAgg, OpKind, OpSample, RecorderHandle, RunRecorder};
pub use tags::CtrlOp;
