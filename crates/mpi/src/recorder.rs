//! Collective-operation timing capture.
//!
//! The `aggregate_trace` methodology measures (a) per-task average
//! Allreduce time over thousands of calls (Figures 3, 5, 6) and (b)
//! individual per-call times on selected nodes (Figure 4). Keeping every
//! (rank × call) sample for a 1936-rank sweep would be gigabytes, so the
//! recorder aggregates per operation in O(1) memory and additionally keeps
//! full per-call series for an explicit *watch list* of ranks.

use pa_simkit::{SimDur, SimTime, Summary};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Kind of a recorded operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// MPI_Allreduce.
    Allreduce,
    /// MPI_Barrier.
    Barrier,
    /// MPI_Allgather.
    Allgather,
    /// MPI_Reduce (to a root).
    Reduce,
    /// MPI_Bcast (from a root).
    Bcast,
    /// Halo exchange (grouped point-to-point).
    Exchange,
}

/// Aggregate view of one collective call across all ranks.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpAgg {
    /// Operation kind.
    pub kind: OpKind,
    /// Earliest entry across ranks.
    pub first_start: SimTime,
    /// Latest completion across ranks.
    pub last_end: SimTime,
    /// Ranks that completed the call.
    pub completions: u32,
    /// Sum of per-rank durations (for mean-per-task metrics).
    pub sum_rank_dur_ns: u64,
}

impl OpAgg {
    /// Global duration: last completion minus first entry.
    pub fn global_dur(&self) -> SimDur {
        self.last_end - self.first_start
    }

    /// Mean per-rank duration.
    pub fn mean_rank_dur(&self) -> SimDur {
        if self.completions == 0 {
            SimDur::ZERO
        } else {
            SimDur::from_nanos(self.sum_rank_dur_ns / u64::from(self.completions))
        }
    }
}

/// One watched rank's per-call sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpSample {
    /// Operation sequence number.
    pub seq: u64,
    /// Kind.
    pub kind: OpKind,
    /// Rank-local entry time.
    pub start: SimTime,
    /// Rank-local completion time.
    pub end: SimTime,
}

impl OpSample {
    /// Rank-local duration.
    pub fn dur(&self) -> SimDur {
        self.end - self.start
    }
}

/// The collector. Rank programs hold `Arc` clones and record on each
/// collective completion; the experiment harness reads it after the run.
///
/// Under the sharded engine, ranks on different worker threads record
/// concurrently. Every update is commutative — min/max folds, integer
/// sums, and per-rank sample lists that are sorted by sequence number on
/// read — so the recorder's observable state is independent of the order
/// in which ranks got the lock, and snapshots stay byte-identical at any
/// thread count.
#[derive(Debug, Default)]
pub struct RunRecorder {
    ops: HashMap<u64, OpAgg>,
    watch: Vec<u32>,
    detailed: HashMap<u32, Vec<OpSample>>,
    /// Keep per-call samples for *every* rank (critical-path analysis).
    /// Off by default: a 1936-rank sweep would hold gigabytes; blame
    /// analysis re-runs one representative point with this on.
    record_all: bool,
}

/// Shared handle to a [`RunRecorder`].
pub type RecorderHandle = Arc<Mutex<RunRecorder>>;

impl RunRecorder {
    /// New empty recorder.
    pub fn new() -> RunRecorder {
        RunRecorder::default()
    }

    /// New shared handle.
    pub fn shared() -> RecorderHandle {
        Arc::new(Mutex::new(RunRecorder::new()))
    }

    /// Record full per-call series for these ranks (e.g. the 16 ranks of
    /// one node, as in Figure 4).
    pub fn watch_ranks(&mut self, ranks: &[u32]) {
        self.watch = ranks.to_vec();
        for &r in ranks {
            self.detailed.entry(r).or_default();
        }
    }

    /// Keep full per-call series for every rank that records (the
    /// critical-path input). Memory-heavy; see the field note.
    pub fn record_all_ranks(&mut self) {
        self.record_all = true;
    }

    /// Is every-rank sample capture on?
    pub fn records_all_ranks(&self) -> bool {
        self.record_all
    }

    /// Record one rank's completion of one operation.
    pub fn record(&mut self, rank: u32, seq: u64, kind: OpKind, start: SimTime, end: SimTime) {
        debug_assert!(end >= start, "operation ended before it started");
        let agg = self.ops.entry(seq).or_insert(OpAgg {
            kind,
            first_start: start,
            last_end: end,
            completions: 0,
            sum_rank_dur_ns: 0,
        });
        debug_assert_eq!(agg.kind, kind, "sequence number reused across kinds");
        agg.first_start = agg.first_start.min(start);
        agg.last_end = agg.last_end.max(end);
        agg.completions += 1;
        agg.sum_rank_dur_ns += (end - start).nanos();
        let sample = OpSample {
            seq,
            kind,
            start,
            end,
        };
        if self.record_all {
            self.detailed.entry(rank).or_default().push(sample);
        } else if let Some(v) = self.detailed.get_mut(&rank) {
            v.push(sample);
        }
    }

    /// All aggregates of one kind, in sequence order.
    pub fn aggs(&self, kind: OpKind) -> Vec<(u64, OpAgg)> {
        let mut v: Vec<(u64, OpAgg)> = self
            .ops
            .iter()
            .filter(|(_, a)| a.kind == kind)
            .map(|(&s, &a)| (s, a))
            .collect();
        v.sort_by_key(|(s, _)| *s);
        v
    }

    /// Number of recorded operations of one kind.
    pub fn count(&self, kind: OpKind) -> usize {
        self.ops.values().filter(|a| a.kind == kind).count()
    }

    /// Mean per-rank duration over all calls of `kind`, in microseconds —
    /// the Figure 3/5 y-axis ("average wall clock time per Allreduce").
    pub fn mean_rank_dur_us(&self, kind: OpKind) -> f64 {
        let (sum, n): (u64, u64) = self
            .ops
            .values()
            .filter(|a| a.kind == kind)
            .fold((0, 0), |(s, n), a| {
                (s + a.sum_rank_dur_ns, n + u64::from(a.completions))
            });
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64 / 1e3
        }
    }

    /// Summary of per-call *global* durations (µs) of `kind`.
    pub fn global_dur_summary_us(&self, kind: OpKind) -> Summary {
        let xs: Vec<f64> = self
            .aggs(kind)
            .iter()
            .map(|(_, a)| a.global_dur().as_micros_f64())
            .collect();
        Summary::of(&xs)
    }

    /// A watched rank's per-call samples (seq order).
    pub fn samples(&self, rank: u32) -> Option<Vec<OpSample>> {
        self.detailed.get(&rank).map(|v| {
            let mut v = v.clone();
            v.sort_by_key(|s| s.seq);
            v
        })
    }

    /// Serialize the full recorder state for a checkpoint. Hash maps are
    /// emitted as key-sorted pair lists so the encoding is canonical
    /// (byte-identical regardless of insertion order or thread count).
    pub fn snapshot_value(&self) -> Value {
        let mut ops: Vec<(u64, OpAgg)> = self.ops.iter().map(|(&s, &a)| (s, a)).collect();
        ops.sort_by_key(|(s, _)| *s);
        let mut detailed: Vec<(u32, Vec<OpSample>)> = self
            .detailed
            .iter()
            .map(|(&r, v)| {
                let mut v = v.clone();
                v.sort_by_key(|s| s.seq);
                (r, v)
            })
            .collect();
        detailed.sort_by_key(|(r, _)| *r);
        (ops, self.watch.clone(), detailed, self.record_all).to_value()
    }

    /// Replace this recorder's state with a checkpointed snapshot.
    pub fn restore_value(&mut self, state: &Value) -> Result<(), serde::Error> {
        type Snap = (Vec<(u64, OpAgg)>, Vec<u32>, Vec<(u32, Vec<OpSample>)>, bool);
        let (ops, watch, detailed, record_all): Snap = Deserialize::from_value(state)?;
        self.ops = ops.into_iter().collect();
        self.watch = watch;
        self.detailed = detailed.into_iter().collect();
        self.record_all = record_all;
        Ok(())
    }

    /// Check every recorded op completed on exactly `nranks` ranks —
    /// a structural invariant of correct collectives.
    pub fn verify_complete(&self, nranks: u32) -> Result<(), String> {
        for (seq, agg) in &self.ops {
            if agg.completions != nranks {
                return Err(format!(
                    "op {seq} completed on {}/{} ranks",
                    agg.completions, nranks
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn aggregates_across_ranks() {
        let mut r = RunRecorder::new();
        r.record(0, 1, OpKind::Allreduce, t(100), t(450));
        r.record(1, 1, OpKind::Allreduce, t(110), t(460));
        r.record(2, 1, OpKind::Allreduce, t(90), t(440));
        let aggs = r.aggs(OpKind::Allreduce);
        assert_eq!(aggs.len(), 1);
        let (_, a) = aggs[0];
        assert_eq!(a.first_start, t(90));
        assert_eq!(a.last_end, t(460));
        assert_eq!(a.completions, 3);
        assert_eq!(a.global_dur(), SimDur::from_micros(370));
        assert_eq!(a.mean_rank_dur(), SimDur::from_micros(350));
    }

    #[test]
    fn mean_rank_dur_us_spans_ops() {
        let mut r = RunRecorder::new();
        r.record(0, 1, OpKind::Allreduce, t(0), t(300));
        r.record(0, 2, OpKind::Allreduce, t(400), t(900));
        assert!((r.mean_rank_dur_us(OpKind::Allreduce) - 400.0).abs() < 1e-9);
        assert_eq!(r.count(OpKind::Allreduce), 2);
        assert_eq!(r.count(OpKind::Barrier), 0);
    }

    #[test]
    fn kinds_are_separated() {
        let mut r = RunRecorder::new();
        r.record(0, 1, OpKind::Allreduce, t(0), t(10));
        r.record(0, 2, OpKind::Barrier, t(20), t(30));
        assert_eq!(r.aggs(OpKind::Allreduce).len(), 1);
        assert_eq!(r.aggs(OpKind::Barrier).len(), 1);
    }

    #[test]
    fn watch_list_keeps_samples() {
        let mut r = RunRecorder::new();
        r.watch_ranks(&[5]);
        r.record(5, 1, OpKind::Allreduce, t(0), t(10));
        r.record(6, 1, OpKind::Allreduce, t(0), t(12));
        r.record(5, 2, OpKind::Allreduce, t(20), t(35));
        let s = r.samples(5).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].dur(), SimDur::from_micros(10));
        assert_eq!(s[1].dur(), SimDur::from_micros(15));
        assert!(r.samples(6).is_none());
    }

    #[test]
    fn verify_complete_catches_missing_ranks() {
        let mut r = RunRecorder::new();
        r.record(0, 1, OpKind::Allreduce, t(0), t(10));
        r.record(1, 1, OpKind::Allreduce, t(0), t(11));
        assert!(r.verify_complete(2).is_ok());
        r.record(0, 2, OpKind::Allreduce, t(20), t(30));
        assert!(r.verify_complete(2).is_err());
    }

    #[test]
    fn summary_of_global_durations() {
        let mut r = RunRecorder::new();
        for (i, d) in [300u64, 400, 500].iter().enumerate() {
            r.record(
                0,
                i as u64,
                OpKind::Allreduce,
                t(1000 * i as u64),
                t(1000 * i as u64 + d),
            );
        }
        let s = r.global_dur_summary_us(OpKind::Allreduce);
        assert_eq!(s.count, 3);
        assert!((s.mean - 400.0).abs() < 1e-9);
        assert_eq!(s.min, 300.0);
        assert_eq!(s.max, 500.0);
    }
}
