//! The MPI rank program.
//!
//! Each rank is a kernel thread whose [`Program`] translates a
//! [`RankWorkload`]'s high-level operations (compute, Allreduce, halo
//! exchange, I/O, co-scheduler attach/detach) into kernel actions: sends,
//! busy-poll receives following the collective schedules of
//! [`coll`], trace markers, and I/O submissions.
//!
//! Per the study's IBM MPI configuration, waits busy-poll by default
//! (user-space polling), and each rank registers its process id with the
//! node's co-scheduler at MPI-init time through the control pipe (§4).

use crate::coll::{self, Algorithm, CollStep};
use crate::layout::LayoutHandle;
use crate::recorder::{OpKind, RecorderHandle};
use crate::tags::{coll_tag, p2p_tag, CtrlOp};
use pa_kernel::{Action, Endpoint, Message, SrcSel, TagSel, WaitMode};
use pa_kernel::{Program, StepCtx};
use pa_simkit::{SimDur, SimTime};
use pa_trace::HookId;
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// One high-level operation of a rank's workload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MpiOp {
    /// Local computation.
    Compute(SimDur),
    /// Global Allreduce of a payload of `bytes`.
    Allreduce {
        /// Payload size per message.
        bytes: u32,
    },
    /// Global barrier.
    Barrier,
    /// Allgather with per-rank blocks of `bytes`.
    Allgather {
        /// Block size.
        bytes: u32,
    },
    /// Reduce to rank 0 (binomial tree).
    Reduce {
        /// Payload size per message.
        bytes: u32,
    },
    /// Broadcast from rank 0 (binomial tree).
    Bcast {
        /// Payload size per message.
        bytes: u32,
    },
    /// Halo exchange: one message to and from each peer.
    Exchange {
        /// Neighbour ranks.
        peers: Vec<u32>,
        /// Message size per neighbour.
        bytes: u32,
    },
    /// Read through the I/O daemon (blocks the rank).
    IoRead {
        /// Transfer size.
        bytes: u64,
    },
    /// Write through the I/O daemon (blocks the rank).
    IoWrite {
        /// Transfer size.
        bytes: u64,
    },
    /// Ask the co-scheduler to stop boosting this job (I/O phases, §4).
    DetachCosched,
    /// Ask the co-scheduler to resume boosting.
    AttachCosched,
    /// Write an application trace marker (`aggregate_trace` brackets every
    /// 64th Allreduce this way).
    Mark(u64),
    /// Workload finished; the rank exits.
    Done,
}

/// Supplies a rank's operation stream.
///
/// `Send` is required because rank programs (which own their workload)
/// migrate across the sharded engine's worker threads between windows.
pub trait RankWorkload: Send {
    /// The next operation for `rank` of `nranks`. Must eventually return
    /// [`MpiOp::Done`].
    fn next_op(&mut self, rank: u32, nranks: u32) -> MpiOp;

    /// Serialize this workload's mutable state for a checkpoint. Same
    /// contract as [`pa_kernel::Program::snapshot_state`]: restore rebuilds
    /// the workload from the experiment spec and overlays this value.
    fn snapshot_state(&self) -> Value {
        Value::Null
    }

    /// Overlay checkpointed state onto a freshly rebuilt workload.
    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let _ = state;
        Ok(())
    }
}

/// MPI library configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MpiConfig {
    /// Collective algorithm.
    pub algorithm: Algorithm,
    /// Busy-poll (IBM MPI default) or block while waiting.
    pub polling: bool,
    /// Reduction compute cost per combining receive.
    pub reduce_cost: SimDur,
    /// Register ranks with the node co-scheduler at init.
    pub register_with_cosched: bool,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            algorithm: Algorithm::BinomialTree,
            polling: true,
            reduce_cost: SimDur::from_nanos(300),
            register_with_cosched: true,
        }
    }
}

impl MpiConfig {
    fn wait_mode(&self) -> WaitMode {
        if self.polling {
            WaitMode::Poll
        } else {
            WaitMode::Block
        }
    }
}

/// An in-flight collective on this rank.
#[derive(Debug)]
struct CurOp {
    kind: OpKind,
    seq: u64,
    start: SimTime,
}

/// Checkpointed mutable state of a [`RankProgram`]. The schedule cache is
/// deliberately absent: it is a pure function of (rank, nranks, algorithm)
/// and is lazily rebuilt after restore.
#[derive(Debug, Serialize, Deserialize)]
struct RankSnap {
    registered: bool,
    next_seq: u64,
    next_io: u64,
    compute_ns: u64,
    pending_compute: SimDur,
    cur: Option<(OpKind, u64, SimTime)>,
    queue: Vec<Action>,
    workload: Value,
}

/// The rank program. See module docs.
pub struct RankProgram {
    rank: u32,
    nranks: u32,
    layout: LayoutHandle,
    workload: Box<dyn RankWorkload>,
    recorder: RecorderHandle,
    cfg: MpiConfig,
    registered: bool,
    /// Collective/exchange sequence counter. Every rank of a correct BSP
    /// workload issues the same communication ops in the same order, so
    /// this advances in lockstep across ranks and tags match.
    next_seq: u64,
    /// I/O transaction counter — deliberately separate: I/O is *not*
    /// collective (a single plot-writing rank must not desynchronize its
    /// collective tags from everyone else's).
    next_io: u64,
    /// Useful application compute completed, ns. Charged when the *next*
    /// step arrives (the kernel steps again only after the segment is
    /// fully served), so a horizon cut never counts a half-served
    /// segment. Collective-internal reduce costs are excluded: they are
    /// protocol overhead, not workload compute.
    compute_ns: u64,
    /// The workload Compute issued by the last step, not yet confirmed
    /// complete.
    pending_compute: SimDur,
    cur: Option<CurOp>,
    queue: VecDeque<Action>,
    sched_cache: HashMap<OpKind, Vec<CollStep>>,
}

impl RankProgram {
    /// Build a rank program. `layout` may still be unfilled at
    /// construction; it must be complete before the cluster boots.
    pub fn new(
        rank: u32,
        nranks: u32,
        layout: LayoutHandle,
        workload: Box<dyn RankWorkload>,
        recorder: RecorderHandle,
        cfg: MpiConfig,
    ) -> RankProgram {
        RankProgram {
            rank,
            nranks,
            layout,
            workload,
            recorder,
            cfg,
            registered: false,
            next_seq: 0,
            next_io: 0,
            compute_ns: 0,
            pending_compute: SimDur::ZERO,
            cur: None,
            queue: VecDeque::new(),
            sched_cache: HashMap::new(),
        }
    }

    fn me(&self, ctx: &StepCtx<'_>) -> Endpoint {
        Endpoint {
            node: ctx.node,
            tid: ctx.tid,
        }
    }

    fn schedule_for(&mut self, kind: OpKind) -> Vec<CollStep> {
        let rank = self.rank;
        let n = self.nranks;
        let alg = self.cfg.algorithm;
        self.sched_cache
            .entry(kind)
            .or_insert_with(|| match kind {
                OpKind::Allreduce => match alg {
                    Algorithm::BinomialTree => coll::binomial_allreduce(rank, n),
                    Algorithm::RecursiveDoubling => coll::recursive_doubling_allreduce(rank, n),
                },
                OpKind::Barrier => coll::dissemination_barrier(rank, n),
                OpKind::Allgather => coll::recursive_doubling_allgather(rank, n)
                    .unwrap_or_else(|| coll::ring_allgather(rank, n)),
                OpKind::Reduce => coll::binomial_reduce(rank, n, 0),
                OpKind::Bcast => coll::binomial_bcast(rank, n, 0),
                OpKind::Exchange => unreachable!("exchanges are built ad hoc"),
            })
            .clone()
    }

    fn begin_collective(&mut self, kind: OpKind, bytes: u32, ctx: &StepCtx<'_>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.cur = Some(CurOp {
            kind,
            seq,
            start: ctx.now,
        });
        self.queue.push_back(Action::Trace {
            hook: HookId::CollBegin,
            aux: seq,
        });
        let me = self.me(ctx);
        let wait = self.cfg.wait_mode();
        let reduce_cost = self.cfg.reduce_cost;
        let steps = self.schedule_for(kind);
        let layout = self.layout.read().unwrap();
        for step in steps {
            match step {
                CollStep::Send { peer, phase } => {
                    self.queue.push_back(Action::Send(Message {
                        src: me,
                        dst: layout.endpoint(peer),
                        tag: coll_tag(seq, phase),
                        bytes,
                        sent_at: SimTime::ZERO,
                        payload: 0,
                    }));
                }
                CollStep::Recv {
                    peer,
                    phase,
                    reduce,
                } => {
                    self.queue.push_back(Action::Recv {
                        tag: TagSel::Exact(coll_tag(seq, phase)),
                        src: SrcSel::Exact(layout.endpoint(peer)),
                        wait,
                    });
                    if reduce && !reduce_cost.is_zero() {
                        self.queue.push_back(Action::Compute(reduce_cost));
                    }
                }
            }
        }
        drop(layout);
        self.queue.push_back(Action::Trace {
            hook: HookId::CollEnd,
            aux: seq,
        });
    }

    fn begin_exchange(&mut self, peers: &[u32], bytes: u32, ctx: &StepCtx<'_>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.cur = Some(CurOp {
            kind: OpKind::Exchange,
            seq,
            start: ctx.now,
        });
        let me = self.me(ctx);
        let wait = self.cfg.wait_mode();
        let layout = self.layout.read().unwrap();
        // Eager sends first (buffered by the fabric), then the receives:
        // the standard deadlock-free exchange.
        for &p in peers {
            self.queue.push_back(Action::Send(Message {
                src: me,
                dst: layout.endpoint(p),
                tag: p2p_tag(seq, 0),
                bytes,
                sent_at: SimTime::ZERO,
                payload: 0,
            }));
        }
        for &p in peers {
            self.queue.push_back(Action::Recv {
                tag: TagSel::Exact(p2p_tag(seq, 0)),
                src: SrcSel::Exact(layout.endpoint(p)),
                wait,
            });
        }
    }

    fn ctrl_message(&self, op: CtrlOp, ctx: &StepCtx<'_>) -> Option<Action> {
        let layout = self.layout.read().unwrap();
        let cosched = layout.cosched(ctx.node)?;
        Some(Action::Send(Message {
            src: self.me(ctx),
            dst: cosched,
            tag: op.tag(),
            bytes: 16,
            sent_at: SimTime::ZERO,
            payload: u64::from(ctx.tid.0),
        }))
    }
}

impl Program for RankProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        // Being stepped again means the previously issued workload
        // Compute (if any) was served to completion.
        let done = core::mem::take(&mut self.pending_compute);
        self.compute_ns += done.nanos();
        // MPI init: report our pid to the co-scheduler's control pipe.
        if !self.registered {
            self.registered = true;
            if self.cfg.register_with_cosched {
                if let Some(a) = self.ctrl_message(CtrlOp::Register, ctx) {
                    return a;
                }
            }
        }
        loop {
            if let Some(a) = self.queue.pop_front() {
                return a;
            }
            // Queue drained: the in-flight collective (if any) finished at
            // the step that brought us here.
            if let Some(cur) = self.cur.take() {
                self.recorder
                    .lock()
                    .unwrap()
                    .record(self.rank, cur.seq, cur.kind, cur.start, ctx.now);
            }
            match self.workload.next_op(self.rank, self.nranks) {
                MpiOp::Compute(d) => {
                    self.pending_compute = d;
                    return Action::Compute(d);
                }
                MpiOp::Allreduce { bytes } => self.begin_collective(OpKind::Allreduce, bytes, ctx),
                MpiOp::Barrier => self.begin_collective(OpKind::Barrier, 8, ctx),
                MpiOp::Allgather { bytes } => self.begin_collective(OpKind::Allgather, bytes, ctx),
                MpiOp::Reduce { bytes } => self.begin_collective(OpKind::Reduce, bytes, ctx),
                MpiOp::Bcast { bytes } => self.begin_collective(OpKind::Bcast, bytes, ctx),
                MpiOp::Exchange { peers, bytes } => self.begin_exchange(&peers, bytes, ctx),
                MpiOp::IoRead { bytes } | MpiOp::IoWrite { bytes } => {
                    // Preferred path: GPFS request to a (possibly remote)
                    // server node; the rank blocks on the reply, freeing
                    // its CPU, while the *server's* mmfsd must win a CPU
                    // there. Falls back to the node-local kernel I/O queue
                    // when no GPFS servers are registered.
                    let token = self.next_io;
                    self.next_io += 1;
                    let server = self
                        .layout
                        .read()
                        .unwrap()
                        .gpfs_server_for(self.rank, token);
                    match server {
                        Some(server) => {
                            use pa_kernel::msg::ioproto;
                            self.queue.push_back(Action::Send(Message {
                                src: self.me(ctx),
                                dst: server,
                                tag: ioproto::req_tag(token),
                                bytes: 64,
                                sent_at: SimTime::ZERO,
                                payload: bytes,
                            }));
                            self.queue.push_back(Action::Recv {
                                tag: TagSel::Exact(ioproto::resp_tag(token)),
                                src: SrcSel::Exact(server),
                                wait: WaitMode::Block,
                            });
                        }
                        None => return Action::IoSubmit { bytes },
                    }
                }
                MpiOp::DetachCosched => {
                    if let Some(a) = self.ctrl_message(CtrlOp::Detach, ctx) {
                        return a;
                    }
                }
                MpiOp::AttachCosched => {
                    if let Some(a) = self.ctrl_message(CtrlOp::Attach, ctx) {
                        return a;
                    }
                }
                MpiOp::Mark(aux) => {
                    return Action::Trace {
                        hook: HookId::AppMarker,
                        aux,
                    }
                }
                MpiOp::Done => return Action::Exit,
            }
        }
    }

    fn kind(&self) -> &'static str {
        "mpi_rank"
    }

    fn metrics(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("collectives", self.next_seq),
            ("io_ops", self.next_io),
            ("compute_ns", self.compute_ns),
        ]
    }

    fn snapshot_state(&self) -> Value {
        RankSnap {
            registered: self.registered,
            next_seq: self.next_seq,
            next_io: self.next_io,
            compute_ns: self.compute_ns,
            pending_compute: self.pending_compute,
            cur: self.cur.as_ref().map(|c| (c.kind, c.seq, c.start)),
            queue: self.queue.iter().cloned().collect(),
            workload: self.workload.snapshot_state(),
        }
        .to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let snap: RankSnap = Deserialize::from_value(state)?;
        self.registered = snap.registered;
        self.next_seq = snap.next_seq;
        self.next_io = snap.next_io;
        self.compute_ns = snap.compute_ns;
        self.pending_compute = snap.pending_compute;
        self.cur = snap
            .cur
            .map(|(kind, seq, start)| CurOp { kind, seq, start });
        self.queue = snap.queue.into();
        self.sched_cache.clear();
        self.workload.restore_state(&snap.workload)
    }
}

/// A workload defined by a fixed operation list (tests and simple cases).
pub struct OpList {
    ops: std::vec::IntoIter<MpiOp>,
}

impl OpList {
    /// Workload that performs `ops` then finishes.
    pub fn new(ops: Vec<MpiOp>) -> OpList {
        OpList {
            ops: ops.into_iter(),
        }
    }
}

impl RankWorkload for OpList {
    fn next_op(&mut self, _rank: u32, _nranks: u32) -> MpiOp {
        self.ops.next().unwrap_or(MpiOp::Done)
    }

    fn snapshot_state(&self) -> Value {
        self.ops.as_slice().to_vec().to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let remaining: Vec<MpiOp> = Deserialize::from_value(state)?;
        self.ops = remaining.into_iter();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oplist_terminates_with_done() {
        let mut w = OpList::new(vec![MpiOp::Barrier]);
        assert_eq!(w.next_op(0, 4), MpiOp::Barrier);
        assert_eq!(w.next_op(0, 4), MpiOp::Done);
        assert_eq!(w.next_op(0, 4), MpiOp::Done);
    }

    #[test]
    fn config_defaults_match_study() {
        let c = MpiConfig::default();
        assert!(c.polling, "IBM MPI busy-polls by default");
        assert_eq!(c.algorithm, Algorithm::BinomialTree);
        assert!(c.register_with_cosched);
        assert_eq!(c.wait_mode(), WaitMode::Poll);
        let blocking = MpiConfig {
            polling: false,
            ..c
        };
        assert_eq!(blocking.wait_mode(), WaitMode::Block);
    }
}
