//! Job layout: the rank ↔ thread address map.
//!
//! Built by the job installer after spawning (thread ids are assigned by
//! each node's kernel), and read by rank programs at run time through a
//! shared handle — mirroring how POE's partition manager daemon learns
//! task pids after fork and distributes them (§4).

use pa_kernel::Endpoint;
use std::sync::{Arc, RwLock};

/// Addresses of every rank and of each node's co-scheduler control pipe.
#[derive(Debug, Default, Clone)]
pub struct JobLayout {
    endpoints: Vec<Endpoint>,
    tasks_per_node: u32,
    cosched: Vec<Option<Endpoint>>,
    gpfs: Vec<Option<Endpoint>>,
}

/// Shared layout handle. An `RwLock` (not `RefCell`): rank programs on
/// different shards of the parallel cluster engine read the layout
/// concurrently. It is written only during job installation — before the
/// cluster boots, or (batch-layer launches) at a quiescent window barrier
/// while no worker threads run — so runtime reads never contend with a
/// writer.
pub type LayoutHandle = Arc<RwLock<JobLayout>>;

impl JobLayout {
    /// Empty layout to be filled by the installer.
    pub fn empty() -> LayoutHandle {
        Arc::new(RwLock::new(JobLayout::default()))
    }

    /// Fill in rank endpoints (rank order) and block shape.
    pub fn set_ranks(&mut self, endpoints: Vec<Endpoint>, tasks_per_node: u32) {
        assert!(tasks_per_node > 0);
        assert!(
            endpoints.len() as u32 % tasks_per_node == 0,
            "ragged layouts are not modeled"
        );
        self.endpoints = endpoints;
        self.tasks_per_node = tasks_per_node;
    }

    /// Register a node's co-scheduler endpoint.
    pub fn set_cosched(&mut self, node: u32, ep: Endpoint) {
        if self.cosched.len() <= node as usize {
            self.cosched.resize(node as usize + 1, None);
        }
        self.cosched[node as usize] = Some(ep);
    }

    /// Total ranks.
    pub fn nranks(&self) -> u32 {
        self.endpoints.len() as u32
    }

    /// Tasks per node.
    pub fn tasks_per_node(&self) -> u32 {
        self.tasks_per_node
    }

    /// A rank's address.
    ///
    /// # Panics
    /// Panics if the layout has not been filled or the rank is out of
    /// range — both are installer bugs.
    pub fn endpoint(&self, rank: u32) -> Endpoint {
        self.endpoints[rank as usize]
    }

    /// The node hosting a rank.
    pub fn node_of(&self, rank: u32) -> u32 {
        self.endpoint(rank).node
    }

    /// Ranks hosted on `node`, in rank order.
    pub fn ranks_on(&self, node: u32) -> Vec<u32> {
        (0..self.nranks())
            .filter(|&r| self.node_of(r) == node)
            .collect()
    }

    /// The co-scheduler control endpoint on `node`, if any.
    pub fn cosched(&self, node: u32) -> Option<Endpoint> {
        self.cosched.get(node as usize).copied().flatten()
    }

    /// Register a node's GPFS (mmfsd) service endpoint.
    pub fn set_gpfs(&mut self, node: u32, ep: Endpoint) {
        if self.gpfs.len() <= node as usize {
            self.gpfs.resize(node as usize + 1, None);
        }
        self.gpfs[node as usize] = Some(ep);
    }

    /// The GPFS service endpoint on `node`, if any.
    pub fn gpfs(&self, node: u32) -> Option<Endpoint> {
        self.gpfs.get(node as usize).copied().flatten()
    }

    /// Pick the GPFS server for transaction `token` issued by `rank`:
    /// GPFS spreads blocks (and therefore metanode/NSD service) across the
    /// cluster, so requests hash over the nodes that run a server.
    pub fn gpfs_server_for(&self, rank: u32, token: u64) -> Option<Endpoint> {
        let servers: Vec<Endpoint> = self.gpfs.iter().flatten().copied().collect();
        if servers.is_empty() {
            return None;
        }
        let idx = (u64::from(rank).wrapping_mul(31).wrapping_add(token)) % servers.len() as u64;
        Some(servers[idx as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::Tid;

    fn ep(node: u32, tid: u32) -> Endpoint {
        Endpoint {
            node,
            tid: Tid(tid),
        }
    }

    #[test]
    fn block_layout_queries() {
        let mut l = JobLayout::default();
        l.set_ranks(vec![ep(0, 1), ep(0, 2), ep(1, 1), ep(1, 2)], 2);
        assert_eq!(l.nranks(), 4);
        assert_eq!(l.tasks_per_node(), 2);
        assert_eq!(l.endpoint(2), ep(1, 1));
        assert_eq!(l.node_of(3), 1);
        assert_eq!(l.ranks_on(0), vec![0, 1]);
        assert_eq!(l.ranks_on(1), vec![2, 3]);
    }

    #[test]
    fn cosched_registration() {
        let mut l = JobLayout::default();
        assert_eq!(l.cosched(0), None);
        l.set_cosched(1, ep(1, 0));
        assert_eq!(l.cosched(1), Some(ep(1, 0)));
        assert_eq!(l.cosched(0), None);
        assert_eq!(l.cosched(7), None);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_layout_rejected() {
        let mut l = JobLayout::default();
        l.set_ranks(vec![ep(0, 1), ep(0, 2), ep(1, 1)], 2);
    }
}
