//! Trace hook identifiers and thread classification.
//!
//! AIX `trace` records kernel events tagged with *hook ids*; the study in
//! §5 of the paper enabled a specific set of hooks plus event records
//! written by the `aggregate` benchmark itself. This module defines the
//! equivalent vocabulary for the simulator.

use serde::{Deserialize, Serialize};

/// What kind of event a trace record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HookId {
    /// A thread was placed on a CPU.
    Dispatch,
    /// A thread left a CPU (blocked, preempted, exited, or yielded).
    Undispatch,
    /// Periodic timer ("decrementer") interrupt processed on a CPU.
    Tick,
    /// Inter-processor interrupt delivered (preemption request).
    Ipi,
    /// A message was handed to the fabric.
    MsgSend,
    /// A message was consumed by its destination thread.
    MsgRecv,
    /// An I/O request was submitted to the I/O daemon.
    IoStart,
    /// An I/O request completed.
    IoDone,
    /// A thread's priority was changed (aux = new priority).
    PrioChange,
    /// A page fault inflated a burst (aux = extra nanoseconds).
    PageFault,
    /// Application marker written by the workload (e.g. every 64th
    /// Allreduce in `aggregate_trace`); aux = marker value.
    AppMarker,
    /// A collective operation began on this rank (aux = sequence number).
    CollBegin,
    /// A collective operation completed on this rank (aux = sequence number).
    CollEnd,
}

impl HookId {
    /// All hook ids, for building enable masks.
    pub const ALL: [HookId; 13] = [
        HookId::Dispatch,
        HookId::Undispatch,
        HookId::Tick,
        HookId::Ipi,
        HookId::MsgSend,
        HookId::MsgRecv,
        HookId::IoStart,
        HookId::IoDone,
        HookId::PrioChange,
        HookId::PageFault,
        HookId::AppMarker,
        HookId::CollBegin,
        HookId::CollEnd,
    ];

    /// Stable small index for bitmask use.
    pub fn index(self) -> usize {
        match self {
            HookId::Dispatch => 0,
            HookId::Undispatch => 1,
            HookId::Tick => 2,
            HookId::Ipi => 3,
            HookId::MsgSend => 4,
            HookId::MsgRecv => 5,
            HookId::IoStart => 6,
            HookId::IoDone => 7,
            HookId::PrioChange => 8,
            HookId::PageFault => 9,
            HookId::AppMarker => 10,
            HookId::CollBegin => 11,
            HookId::CollEnd => 12,
        }
    }
}

/// Coarse classification of a schedulable entity, used by the attribution
/// reports ("what stole the CPU during this Allreduce?").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ThreadClass {
    /// A task of the parallel application (an MPI rank).
    App,
    /// An MPI auxiliary/progress ("timer") thread.
    MpiAux,
    /// A system daemon (syncd, mmfsd, hatsd, ...).
    Daemon,
    /// A transient interrupt-handler-like activity (caddpin, phxentdd).
    Interrupt,
    /// Components of the periodic administrative cron job.
    Cron,
    /// The co-scheduler daemon itself.
    Cosched,
    /// Kernel-internal bookkeeping (idle loop shows up as this).
    Kernel,
}

impl ThreadClass {
    /// True for the classes the paper counts as *interference* to the
    /// parallel job (everything that is not the application itself).
    pub fn is_interference(self) -> bool {
        !matches!(self, ThreadClass::App | ThreadClass::Kernel)
    }
}

/// Set of enabled hooks (AIX lets the operator enable hook subsets; the
/// study enabled tracing "only during the time that the loop of calls to
/// MPI_Allreduce was active").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HookMask(u32);

impl HookMask {
    /// No hooks enabled.
    pub const NONE: HookMask = HookMask(0);
    /// Every hook enabled.
    pub const ALL: HookMask = HookMask((1 << 13) - 1);

    /// Mask with exactly the given hooks.
    pub fn of(hooks: &[HookId]) -> HookMask {
        let mut m = 0u32;
        for h in hooks {
            m |= 1 << h.index();
        }
        HookMask(m)
    }

    /// The hooks the §5 methodology used: dispatching, ticks, IPIs and the
    /// application's own markers.
    pub fn study() -> HookMask {
        HookMask::of(&[
            HookId::Dispatch,
            HookId::Undispatch,
            HookId::Tick,
            HookId::Ipi,
            HookId::AppMarker,
            HookId::CollBegin,
            HookId::CollEnd,
            HookId::PageFault,
            HookId::PrioChange,
        ])
    }

    /// Is `hook` enabled?
    pub fn contains(self, hook: HookId) -> bool {
        self.0 & (1 << hook.index()) != 0
    }

    /// Enable `hook` in a copy of the mask.
    pub fn with(self, hook: HookId) -> HookMask {
        HookMask(self.0 | (1 << hook.index()))
    }

    /// Disable `hook` in a copy of the mask.
    pub fn without(self, hook: HookId) -> HookMask {
        HookMask(self.0 & !(1 << hook.index()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 13];
        for h in HookId::ALL {
            assert!(!seen[h.index()], "duplicate index for {h:?}");
            seen[h.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mask_membership() {
        let m = HookMask::of(&[HookId::Tick, HookId::Ipi]);
        assert!(m.contains(HookId::Tick));
        assert!(m.contains(HookId::Ipi));
        assert!(!m.contains(HookId::Dispatch));
    }

    #[test]
    fn mask_all_and_none() {
        for h in HookId::ALL {
            assert!(HookMask::ALL.contains(h));
            assert!(!HookMask::NONE.contains(h));
        }
    }

    #[test]
    fn with_without_roundtrip() {
        let m = HookMask::NONE.with(HookId::Dispatch);
        assert!(m.contains(HookId::Dispatch));
        assert!(!m.without(HookId::Dispatch).contains(HookId::Dispatch));
    }

    #[test]
    fn interference_classes() {
        assert!(!ThreadClass::App.is_interference());
        assert!(!ThreadClass::Kernel.is_interference());
        assert!(ThreadClass::Daemon.is_interference());
        assert!(ThreadClass::Cron.is_interference());
        assert!(ThreadClass::MpiAux.is_interference());
        assert!(ThreadClass::Cosched.is_interference());
        assert!(ThreadClass::Interrupt.is_interference());
    }

    #[test]
    fn study_mask_has_dispatch_pairs() {
        let m = HookMask::study();
        assert!(m.contains(HookId::Dispatch));
        assert!(m.contains(HookId::Undispatch));
        assert!(!m.contains(HookId::MsgSend));
    }
}
