//! # pa-trace — AIX-trace-style event tracing for the PACE simulator
//!
//! The SC'03 study's methodology (§5.2) leans on the AIX `trace` facility:
//! hook-selectable kernel event records, application-written markers, and
//! post-hoc analysis of "what else ran during this Allreduce". This crate
//! reproduces that tooling for the simulated cluster:
//!
//! * [`HookId`] / [`HookMask`] — the event vocabulary and enable masks;
//! * [`TraceBuffer`] — a bounded per-node ring of [`TraceEvent`] records
//!   plus the thread-name/class registry;
//! * [`CpuTimeline`] / [`AttributionReport`] — occupancy reconstruction and
//!   the outlier culprit analysis used for Figure 4.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attribution;
pub mod buffer;
pub mod hooks;

pub use attribution::{AttributionReport, CpuTimeline, Culprit, Segment};
pub use buffer::{ThreadMeta, TraceBuffer, TraceEvent};
pub use hooks::{HookId, HookMask, ThreadClass};
