//! Interval attribution: "what ran while this Allreduce was delayed?"
//!
//! The paper's Figure-4 analysis extracts individual Allreduce times from
//! AIX trace logs and, for the outliers, lists the daemons and interrupt
//! handlers that commandeered CPUs during the operation (§5.3: the 600 ms
//! cron job, syncd, mmfsd, hatsd, ...). This module reconstructs per-CPU
//! occupancy timelines from Dispatch/Undispatch records and charges overlap
//! to each thread.

use crate::buffer::TraceBuffer;
use crate::hooks::{HookId, ThreadClass};
use pa_simkit::{SimDur, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A contiguous run of one thread on one CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Segment {
    /// CPU index.
    pub cpu: u8,
    /// Thread occupying the CPU.
    pub tid: u32,
    /// Dispatch time.
    pub start: SimTime,
    /// Undispatch time (or the timeline horizon for still-running threads).
    pub end: SimTime,
}

/// Per-CPU occupancy reconstructed from a trace buffer.
#[derive(Debug, Clone, Default)]
pub struct CpuTimeline {
    segments: Vec<Segment>,
}

impl CpuTimeline {
    /// Build from a buffer's Dispatch/Undispatch records.
    ///
    /// `horizon` closes any segment still open at the end of the trace
    /// (typically the simulation end time). Unmatched Undispatch records
    /// (their Dispatch was evicted from the ring) are ignored.
    pub fn build(buffer: &TraceBuffer, horizon: SimTime) -> CpuTimeline {
        let mut open: HashMap<u8, (u32, SimTime)> = HashMap::new();
        let mut segments = Vec::new();
        for ev in buffer.events() {
            match ev.hook {
                HookId::Dispatch => {
                    // An implicit undispatch if the previous occupant never
                    // logged one (defensive; the kernel always pairs them).
                    if let Some((tid, start)) = open.insert(ev.cpu, (ev.tid, ev.time)) {
                        segments.push(Segment {
                            cpu: ev.cpu,
                            tid,
                            start,
                            end: ev.time,
                        });
                    }
                }
                HookId::Undispatch => {
                    if let Some((tid, start)) = open.remove(&ev.cpu) {
                        debug_assert_eq!(
                            tid, ev.tid,
                            "undispatch for a thread that was not running"
                        );
                        segments.push(Segment {
                            cpu: ev.cpu,
                            tid,
                            start,
                            end: ev.time,
                        });
                    }
                }
                _ => {}
            }
        }
        for (cpu, (tid, start)) in open {
            if horizon > start {
                segments.push(Segment {
                    cpu,
                    tid,
                    start,
                    end: horizon,
                });
            }
        }
        segments.sort_by_key(|s| (s.start, s.cpu));
        CpuTimeline { segments }
    }

    /// All segments in start order.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Total time `tid` held any CPU within `[start, end)`.
    pub fn busy_time(&self, tid: u32, start: SimTime, end: SimTime) -> SimDur {
        let mut total = SimDur::ZERO;
        for s in &self.segments {
            if s.tid != tid {
                continue;
            }
            total += overlap(s, start, end);
        }
        total
    }

    /// Per-thread CPU time within `[start, end)`, all threads.
    pub fn busy_by_tid(&self, start: SimTime, end: SimTime) -> HashMap<u32, SimDur> {
        let mut map: HashMap<u32, SimDur> = HashMap::new();
        for s in &self.segments {
            let o = overlap(s, start, end);
            if !o.is_zero() {
                *map.entry(s.tid).or_default() += o;
            }
        }
        map
    }
}

fn overlap(s: &Segment, start: SimTime, end: SimTime) -> SimDur {
    let lo = s.start.max(start);
    let hi = s.end.min(end);
    if hi > lo {
        hi - lo
    } else {
        SimDur::ZERO
    }
}

/// One line of a culprit report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Culprit {
    /// Thread name from the registry.
    pub name: String,
    /// Thread class.
    pub class: ThreadClass,
    /// CPU time consumed inside the queried interval.
    pub cpu_time: SimDur,
}

/// Attribution of an interval: interference ranked by stolen CPU time.
///
/// This is the §5.3 analysis: for the slowest Allreduce the report names
/// the cron job; for milder outliers it names daemons and the MPI timer
/// threads.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributionReport {
    /// Interval start.
    pub start: SimTime,
    /// Interval end.
    pub end: SimTime,
    /// Interfering threads (non-App classes), largest first.
    pub culprits: Vec<Culprit>,
    /// Total interference time.
    pub total_interference: SimDur,
    /// Events the source ring evicted over its whole lifetime. Nonzero
    /// means the buffer wrapped at least once; whether *this* query is
    /// affected is what [`AttributionReport::spans_evicted`] says.
    pub dropped_events: u64,
    /// True when `[start, end)` overlaps the evicted region of the ring:
    /// the report may silently under-attribute (PR 1 deflaked a test whose
    /// real bug was exactly this).
    pub spans_evicted: bool,
}

impl AttributionReport {
    /// Build a report for `[start, end)` on one node.
    pub fn analyze(
        buffer: &TraceBuffer,
        timeline: &CpuTimeline,
        start: SimTime,
        end: SimTime,
    ) -> AttributionReport {
        let mut culprits: Vec<Culprit> = timeline
            .busy_by_tid(start, end)
            .into_iter()
            .filter_map(|(tid, dur)| {
                let class = buffer.thread_class(tid);
                class.is_interference().then(|| Culprit {
                    name: buffer.thread_name(tid),
                    class,
                    cpu_time: dur,
                })
            })
            .collect();
        culprits.sort_by(|a, b| b.cpu_time.cmp(&a.cpu_time).then(a.name.cmp(&b.name)));
        let total = culprits
            .iter()
            .fold(SimDur::ZERO, |acc, c| acc + c.cpu_time);
        AttributionReport {
            start,
            end,
            culprits,
            total_interference: total,
            dropped_events: buffer.dropped(),
            spans_evicted: buffer.evicted_until().is_some_and(|t| start <= t),
        }
    }

    /// A human-readable warning when this report queried an interval the
    /// ring had partially evicted, else `None`. Figure harnesses print
    /// this so silent eviction is no longer silent.
    pub fn eviction_warning(&self) -> Option<String> {
        self.spans_evicted.then(|| {
            format!(
                "attribution over [{}, {}) overlaps evicted trace region \
                 ({} events dropped); interference may be under-counted",
                self.start, self.end, self.dropped_events
            )
        })
    }

    /// The single largest interferer, if any.
    pub fn worst(&self) -> Option<&Culprit> {
        self.culprits.first()
    }

    /// Sum of interference charged to one class.
    pub fn class_total(&self, class: ThreadClass) -> SimDur {
        self.culprits
            .iter()
            .filter(|c| c.class == class)
            .fold(SimDur::ZERO, |acc, c| acc + c.cpu_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::HookMask;

    fn dispatch(b: &mut TraceBuffer, us: u64, cpu: u8, tid: u32) {
        b.emit(SimTime::from_micros(us), cpu, HookId::Dispatch, tid, 0);
    }
    fn undispatch(b: &mut TraceBuffer, us: u64, cpu: u8, tid: u32) {
        b.emit(SimTime::from_micros(us), cpu, HookId::Undispatch, tid, 0);
    }

    fn sample_buffer() -> TraceBuffer {
        let mut b = TraceBuffer::new(64);
        b.set_mask(HookMask::ALL);
        b.register_thread(1, "mpi_rank_0", ThreadClass::App);
        b.register_thread(2, "syncd", ThreadClass::Daemon);
        b.register_thread(3, "cron.perl", ThreadClass::Cron);
        // CPU0: app 0..100, syncd 100..130, app 130..200
        // CPU1: cron 50..650
        // (emitted in global time order, as the kernel does)
        dispatch(&mut b, 0, 0, 1);
        dispatch(&mut b, 50, 1, 3);
        undispatch(&mut b, 100, 0, 1);
        dispatch(&mut b, 100, 0, 2);
        undispatch(&mut b, 130, 0, 2);
        dispatch(&mut b, 130, 0, 1);
        undispatch(&mut b, 200, 0, 1);
        undispatch(&mut b, 650, 1, 3);
        b
    }

    #[test]
    fn timeline_reconstructs_segments() {
        let b = sample_buffer();
        let tl = CpuTimeline::build(&b, SimTime::from_micros(1000));
        assert_eq!(tl.segments().len(), 4);
        assert_eq!(
            tl.busy_time(1, SimTime::ZERO, SimTime::from_micros(1000)),
            SimDur::from_micros(170)
        );
        assert_eq!(
            tl.busy_time(2, SimTime::ZERO, SimTime::from_micros(1000)),
            SimDur::from_micros(30)
        );
    }

    #[test]
    fn busy_time_clips_to_interval() {
        let b = sample_buffer();
        let tl = CpuTimeline::build(&b, SimTime::from_micros(1000));
        // Interval [110, 120) lies inside the syncd segment.
        assert_eq!(
            tl.busy_time(2, SimTime::from_micros(110), SimTime::from_micros(120)),
            SimDur::from_micros(10)
        );
        // Interval entirely before dispatch.
        assert_eq!(
            tl.busy_time(2, SimTime::ZERO, SimTime::from_micros(50)),
            SimDur::ZERO
        );
    }

    #[test]
    fn open_segments_close_at_horizon() {
        let mut b = TraceBuffer::new(8);
        b.set_mask(HookMask::ALL);
        b.register_thread(9, "mmfsd", ThreadClass::Daemon);
        dispatch(&mut b, 10, 0, 9);
        let tl = CpuTimeline::build(&b, SimTime::from_micros(60));
        assert_eq!(
            tl.busy_time(9, SimTime::ZERO, SimTime::from_micros(100)),
            SimDur::from_micros(50)
        );
    }

    #[test]
    fn report_ranks_culprits_and_skips_app() {
        let b = sample_buffer();
        let tl = CpuTimeline::build(&b, SimTime::from_micros(1000));
        let r = AttributionReport::analyze(&b, &tl, SimTime::ZERO, SimTime::from_micros(700));
        assert_eq!(r.culprits.len(), 2);
        assert_eq!(r.worst().unwrap().name, "cron.perl");
        assert_eq!(r.worst().unwrap().cpu_time, SimDur::from_micros(600));
        assert_eq!(r.class_total(ThreadClass::Daemon), SimDur::from_micros(30));
        assert_eq!(r.total_interference, SimDur::from_micros(630));
        assert_eq!(r.dropped_events, 0);
        assert!(!r.spans_evicted);
        assert!(r.eviction_warning().is_none());
    }

    #[test]
    fn report_flags_queries_over_evicted_regions() {
        let mut b = TraceBuffer::new(4);
        b.set_mask(HookMask::ALL);
        b.register_thread(2, "syncd", ThreadClass::Daemon);
        // Six paired events into a 4-slot ring: the first pair is evicted.
        dispatch(&mut b, 0, 0, 2);
        undispatch(&mut b, 10, 0, 2);
        dispatch(&mut b, 20, 0, 2);
        undispatch(&mut b, 30, 0, 2);
        dispatch(&mut b, 40, 0, 2);
        undispatch(&mut b, 50, 0, 2);
        assert_eq!(b.dropped(), 2);
        let tl = CpuTimeline::build(&b, SimTime::from_micros(60));
        // Query starting inside the evicted region is flagged...
        let r = AttributionReport::analyze(&b, &tl, SimTime::ZERO, SimTime::from_micros(60));
        assert!(r.spans_evicted);
        assert_eq!(r.dropped_events, 2);
        let warn = r.eviction_warning().expect("warning expected");
        assert!(warn.contains("2 events dropped"), "got: {warn}");
        // ...a query wholly after the eviction horizon is not.
        let r =
            AttributionReport::analyze(&b, &tl, SimTime::from_micros(20), SimTime::from_micros(60));
        assert!(!r.spans_evicted);
        assert_eq!(r.dropped_events, 2, "lifetime drop count still reported");
    }

    #[test]
    fn report_empty_when_only_app_runs() {
        let mut b = TraceBuffer::new(8);
        b.set_mask(HookMask::ALL);
        b.register_thread(1, "mpi_rank_0", ThreadClass::App);
        dispatch(&mut b, 0, 0, 1);
        undispatch(&mut b, 100, 0, 1);
        let tl = CpuTimeline::build(&b, SimTime::from_micros(100));
        let r = AttributionReport::analyze(&b, &tl, SimTime::ZERO, SimTime::from_micros(100));
        assert!(r.culprits.is_empty());
        assert!(r.worst().is_none());
        assert_eq!(r.total_interference, SimDur::ZERO);
    }

    #[test]
    fn back_to_back_dispatch_closes_previous() {
        let mut b = TraceBuffer::new(8);
        b.set_mask(HookMask::ALL);
        dispatch(&mut b, 0, 0, 1);
        dispatch(&mut b, 40, 0, 2); // no explicit undispatch for tid 1
        undispatch(&mut b, 90, 0, 2);
        let tl = CpuTimeline::build(&b, SimTime::from_micros(100));
        assert_eq!(
            tl.busy_time(1, SimTime::ZERO, SimTime::from_micros(100)),
            SimDur::from_micros(40)
        );
        assert_eq!(
            tl.busy_time(2, SimTime::ZERO, SimTime::from_micros(100)),
            SimDur::from_micros(50)
        );
    }
}
