//! Per-node trace buffers.
//!
//! Each simulated node owns one [`TraceBuffer`]: a bounded ring of
//! [`TraceEvent`] records plus a registry mapping thread ids to names and
//! classes. Hooks can be enabled/disabled at runtime, mirroring how the
//! study turned AIX tracing on only around the Allreduce loops.

use crate::hooks::{HookId, HookMask, ThreadClass};
use pa_simkit::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::collections::VecDeque;

/// One trace record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Global simulation time of the event.
    pub time: SimTime,
    /// CPU index on the node (u8::MAX when not CPU-specific).
    pub cpu: u8,
    /// What happened.
    pub hook: HookId,
    /// The thread involved (node-local id), 0 when not thread-specific.
    pub tid: u32,
    /// Hook-specific auxiliary value (new priority, marker id, ...).
    pub aux: u64,
}

/// Thread metadata registered with the buffer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadMeta {
    /// Node-local thread id.
    pub tid: u32,
    /// Human-readable name ("syncd", "mpi_rank_17", "cron.perl", ...).
    pub name: String,
    /// Coarse class for attribution.
    pub class: ThreadClass,
}

/// A bounded per-node trace ring.
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    mask: HookMask,
    threads: HashMap<u32, ThreadMeta>,
    dropped: u64,
    /// Timestamp of the newest evicted event: everything at or before this
    /// time may be missing from the ring.
    evicted_until: Option<SimTime>,
}

impl TraceBuffer {
    /// Buffer with room for `capacity` events. Older events are dropped
    /// once full (counted in [`TraceBuffer::dropped`]).
    pub fn new(capacity: usize) -> TraceBuffer {
        assert!(capacity > 0, "trace buffer needs nonzero capacity");
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(1 << 16)),
            capacity,
            mask: HookMask::NONE,
            threads: HashMap::new(),
            dropped: 0,
            evicted_until: None,
        }
    }

    /// Set the enabled-hook mask (returns the previous mask).
    pub fn set_mask(&mut self, mask: HookMask) -> HookMask {
        core::mem::replace(&mut self.mask, mask)
    }

    /// The current enabled-hook mask.
    pub fn mask(&self) -> HookMask {
        self.mask
    }

    /// Register thread metadata (idempotent; re-registration overwrites).
    pub fn register_thread(&mut self, tid: u32, name: impl Into<String>, class: ThreadClass) {
        self.threads.insert(
            tid,
            ThreadMeta {
                tid,
                name: name.into(),
                class,
            },
        );
    }

    /// Metadata for a thread id, if registered.
    pub fn thread(&self, tid: u32) -> Option<&ThreadMeta> {
        self.threads.get(&tid)
    }

    /// Display name of `tid` (`tid<N>` if unregistered).
    pub fn thread_name(&self, tid: u32) -> String {
        self.threads
            .get(&tid)
            .map(|m| m.name.clone())
            .unwrap_or_else(|| format!("tid{tid}"))
    }

    /// Class of `tid` (Kernel if unregistered).
    pub fn thread_class(&self, tid: u32) -> ThreadClass {
        self.threads
            .get(&tid)
            .map(|m| m.class)
            .unwrap_or(ThreadClass::Kernel)
    }

    /// Record an event if its hook is enabled.
    pub fn record(&mut self, ev: TraceEvent) {
        if !self.mask.contains(ev.hook) {
            return;
        }
        if self.events.len() == self.capacity {
            let evicted = self.events.pop_front().expect("capacity is nonzero");
            self.dropped += 1;
            self.evicted_until = Some(evicted.time);
        }
        debug_assert!(
            self.events.back().is_none_or(|last| last.time <= ev.time),
            "trace events must be recorded in time order"
        );
        self.events.push_back(ev);
    }

    /// Convenience: record with explicit fields.
    pub fn emit(&mut self, time: SimTime, cpu: u8, hook: HookId, tid: u32, aux: u64) {
        self.record(TraceEvent {
            time,
            cpu,
            hook,
            tid,
            aux,
        });
    }

    /// All retained events in time order.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events within `[start, end)`.
    pub fn events_in(&self, start: SimTime, end: SimTime) -> impl Iterator<Item = &TraceEvent> {
        self.events
            .iter()
            .filter(move |e| e.time >= start && e.time < end)
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff no events retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Timestamp of the newest evicted event, if any were evicted. A query
    /// over `[start, end)` with `start <= evicted_until()` overlaps a
    /// region the ring has silently forgotten — callers should surface
    /// that (see `AttributionReport::spans_evicted`).
    pub fn evicted_until(&self) -> Option<SimTime> {
        self.evicted_until
    }

    /// Discard all retained events (keeps registrations and mask).
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
        self.evicted_until = None;
    }

    /// Ring contents for a checkpoint: retained events in order, the
    /// dropped count, and the eviction horizon. Capacity, mask, and thread
    /// registrations are construction-time state and are rebuilt from the
    /// experiment spec instead of being snapshotted.
    pub fn snapshot_ring(&self) -> (Vec<TraceEvent>, u64, Option<SimTime>) {
        (
            self.events.iter().copied().collect(),
            self.dropped,
            self.evicted_until,
        )
    }

    /// Restore ring contents captured by [`TraceBuffer::snapshot_ring`]
    /// into a freshly rebuilt buffer. Errors if the event list exceeds
    /// this buffer's capacity or is not in time order.
    pub fn restore_ring(
        &mut self,
        events: Vec<TraceEvent>,
        dropped: u64,
        evicted_until: Option<SimTime>,
    ) -> Result<(), String> {
        if events.len() > self.capacity {
            return Err(format!(
                "checkpointed trace ring holds {} events but capacity is {}",
                events.len(),
                self.capacity
            ));
        }
        if events.windows(2).any(|w| w[0].time > w[1].time) {
            return Err("checkpointed trace ring is not in time order".into());
        }
        self.events = events.into();
        self.dropped = dropped;
        self.evicted_until = evicted_until;
        Ok(())
    }

    /// Times of `AppMarker` events with the given marker value, in order.
    /// The aggregate benchmark brackets every 64-call block with markers,
    /// so this is how the figure harness finds block boundaries.
    pub fn marker_times(&self, marker: u64) -> Vec<SimTime> {
        self.events
            .iter()
            .filter(|e| e.hook == HookId::AppMarker && e.aux == marker)
            .map(|e| e.time)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_simkit::SimTime;

    fn ev(us: u64, hook: HookId, tid: u32) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_micros(us),
            cpu: 0,
            hook,
            tid,
            aux: 0,
        }
    }

    #[test]
    fn disabled_hooks_are_not_recorded() {
        let mut b = TraceBuffer::new(16);
        b.set_mask(HookMask::of(&[HookId::Tick]));
        b.record(ev(1, HookId::Dispatch, 1));
        b.record(ev(2, HookId::Tick, 1));
        assert_eq!(b.len(), 1);
        assert_eq!(b.events().next().unwrap().hook, HookId::Tick);
    }

    #[test]
    fn ring_drops_oldest() {
        let mut b = TraceBuffer::new(3);
        b.set_mask(HookMask::ALL);
        for i in 0..5 {
            b.record(ev(i, HookId::Tick, 0));
        }
        assert_eq!(b.len(), 3);
        assert_eq!(b.dropped(), 2);
        assert_eq!(b.evicted_until(), Some(SimTime::from_micros(1)));
        let times: Vec<u64> = b.events().map(|e| e.time.micros()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn eviction_horizon_absent_until_full() {
        let mut b = TraceBuffer::new(8);
        b.set_mask(HookMask::ALL);
        for i in 0..8 {
            b.record(ev(i, HookId::Tick, 0));
        }
        assert_eq!(b.evicted_until(), None);
        b.record(ev(8, HookId::Tick, 0));
        assert_eq!(b.evicted_until(), Some(SimTime::from_micros(0)));
    }

    #[test]
    fn interval_query() {
        let mut b = TraceBuffer::new(16);
        b.set_mask(HookMask::ALL);
        for i in 0..10 {
            b.record(ev(i, HookId::Tick, 0));
        }
        let got: Vec<u64> = b
            .events_in(SimTime::from_micros(3), SimTime::from_micros(7))
            .map(|e| e.time.micros())
            .collect();
        assert_eq!(got, vec![3, 4, 5, 6]);
    }

    #[test]
    fn registry_lookup() {
        let mut b = TraceBuffer::new(4);
        b.register_thread(7, "syncd", ThreadClass::Daemon);
        assert_eq!(b.thread_name(7), "syncd");
        assert_eq!(b.thread_class(7), ThreadClass::Daemon);
        assert_eq!(b.thread_name(8), "tid8");
        assert_eq!(b.thread_class(8), ThreadClass::Kernel);
        assert_eq!(b.thread(7).unwrap().tid, 7);
    }

    #[test]
    fn clear_keeps_registrations() {
        let mut b = TraceBuffer::new(4);
        b.set_mask(HookMask::ALL);
        b.register_thread(1, "app", ThreadClass::App);
        b.record(ev(1, HookId::Dispatch, 1));
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.dropped(), 0);
        assert_eq!(b.evicted_until(), None);
        assert_eq!(b.thread_name(1), "app");
        assert!(b.mask().contains(HookId::Dispatch));
    }

    #[test]
    fn ring_snapshot_round_trip() {
        let mut b = TraceBuffer::new(3);
        b.set_mask(HookMask::ALL);
        b.register_thread(1, "app", ThreadClass::App);
        for i in 0..5 {
            b.record(ev(i, HookId::Tick, 1));
        }
        let (events, dropped, horizon) = b.snapshot_ring();

        let mut r = TraceBuffer::new(3);
        r.set_mask(HookMask::ALL);
        r.register_thread(1, "app", ThreadClass::App);
        r.restore_ring(events, dropped, horizon).unwrap();
        assert_eq!(r.dropped(), b.dropped());
        assert_eq!(r.evicted_until(), b.evicted_until());
        let got: Vec<_> = r.events().copied().collect();
        let want: Vec<_> = b.events().copied().collect();
        assert_eq!(got, want);
        // The restored ring keeps evicting correctly.
        r.record(ev(9, HookId::Tick, 1));
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 3);
    }

    #[test]
    fn restore_ring_validates() {
        let mut small = TraceBuffer::new(2);
        let too_many = vec![
            ev(1, HookId::Tick, 0),
            ev(2, HookId::Tick, 0),
            ev(3, HookId::Tick, 0),
        ];
        assert!(small.restore_ring(too_many, 0, None).is_err());
        let out_of_order = vec![ev(5, HookId::Tick, 0), ev(4, HookId::Tick, 0)];
        assert!(small.restore_ring(out_of_order, 0, None).is_err());
    }

    #[test]
    fn marker_times_filters_by_value() {
        let mut b = TraceBuffer::new(16);
        b.set_mask(HookMask::ALL);
        b.emit(SimTime::from_micros(1), 0, HookId::AppMarker, 1, 64);
        b.emit(SimTime::from_micros(2), 0, HookId::AppMarker, 1, 128);
        b.emit(SimTime::from_micros(3), 0, HookId::AppMarker, 1, 64);
        assert_eq!(
            b.marker_times(64),
            vec![SimTime::from_micros(1), SimTime::from_micros(3)]
        );
    }
}
