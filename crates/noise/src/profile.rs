//! Calibrated noise profiles.
//!
//! A [`NoiseProfile`] bundles everything that interferes with the parallel
//! job on one node: the periodic daemon zoo, device-interrupt sources, the
//! administrative cron job, and the GPFS service daemon. The `production`
//! preset is calibrated so that the long-run background load lands in the
//! paper's measured band: *"typical operating system and daemon activity
//! consumes 0.2% to 1.1% of each CPU for large dedicated RS/6000 SP
//! systems with 16 processors per node"* (§2, \[Jones03\]) — verified by the
//! `tab_overhead` experiment.

use crate::cron::{CronJob, CronSpec};
use crate::daemons::{DaemonProgram, DaemonSpec};

use pa_kernel::{InterruptSourceSpec, Kernel, Prio, ThreadSpec, Tid};
use pa_simkit::{SeedSpace, SimDur};
use pa_trace::ThreadClass;
use serde::{Deserialize, Serialize};

/// Everything noisy about one node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseProfile {
    /// Periodic daemons.
    pub daemons: Vec<DaemonSpec>,
    /// Device-interrupt sources (spec name, mean interval, burst range).
    pub interrupts: Vec<InterruptDesc>,
    /// The administrative cron job, if present.
    pub cron: Option<CronSpec>,
    /// Spawn a GPFS (mmfsd) I/O service daemon at this priority.
    pub gpfs_prio: Option<Prio>,
}

/// Serializable stand-in for [`InterruptSourceSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterruptDesc {
    /// Handler name.
    pub name: String,
    /// Mean inter-arrival.
    pub mean_interval: SimDur,
    /// Burst lower bound.
    pub burst_min: SimDur,
    /// Burst upper bound.
    pub burst_max: SimDur,
}

impl InterruptDesc {
    fn to_spec(&self) -> InterruptSourceSpec {
        InterruptSourceSpec::new(
            self.name.clone(),
            self.mean_interval,
            self.burst_min,
            self.burst_max,
        )
    }

    /// Long-run utilization of one CPU.
    pub fn utilization(&self) -> f64 {
        self.to_spec().utilization()
    }
}

/// Handles to what [`NoiseProfile::install`] spawned on a node.
#[derive(Debug, Clone, Default)]
pub struct InstalledNoise {
    /// Daemon thread ids, in profile order.
    pub daemons: Vec<Tid>,
    /// Cron thread, if configured.
    pub cron: Option<Tid>,
    /// The GPFS service daemon, if configured (also registered as the
    /// kernel's I/O daemon).
    pub gpfs: Option<Tid>,
}

impl NoiseProfile {
    /// No interference at all (for calibration baselines).
    pub fn silent() -> NoiseProfile {
        NoiseProfile {
            daemons: Vec::new(),
            interrupts: Vec::new(),
            cron: None,
            gpfs_prio: None,
        }
    }

    /// A dedicated system pared to the minimum the study could not remove
    /// (§5.2.2 baseline): syncd, the switch-fabric mld, and NIC interrupts.
    pub fn dedicated() -> NoiseProfile {
        NoiseProfile {
            daemons: vec![
                DaemonSpec {
                    name: "syncd".into(),
                    prio: Prio::NORMAL,
                    period: SimDur::from_secs(60),
                    burst_median: SimDur::from_millis(20),
                    burst_sigma: 0.5,
                    page_fault_prob: 0.1,
                    page_fault_extra: SimDur::from_millis(4),
                },
                DaemonSpec {
                    name: "mld".into(),
                    prio: Prio::DAEMON_OBSERVED,
                    period: SimDur::from_millis(100),
                    burst_median: SimDur::from_micros(60),
                    burst_sigma: 0.3,
                    page_fault_prob: 0.0,
                    page_fault_extra: SimDur::ZERO,
                },
            ],
            interrupts: vec![InterruptDesc {
                name: "phxentdd".into(),
                mean_interval: SimDur::from_millis(20),
                burst_min: SimDur::from_micros(4),
                burst_max: SimDur::from_micros(12),
            }],
            cron: None,
            // GPFS stays mounted even on a dedicated system; application
            // I/O needs it (§5.2.4 limited its *use*, not its presence).
            gpfs_prio: Some(Prio::MMFSD),
        }
    }

    /// The full production SP node of §5.3's traces: the named daemon zoo,
    /// disk and NIC interrupt handlers, the 15-minute health-check cron
    /// job, and GPFS.
    pub fn production() -> NoiseProfile {
        NoiseProfile {
            daemons: vec![
                DaemonSpec {
                    name: "syncd".into(),
                    prio: Prio::NORMAL,
                    period: SimDur::from_secs(60),
                    burst_median: SimDur::from_millis(50),
                    burst_sigma: 0.6,
                    page_fault_prob: 0.25,
                    page_fault_extra: SimDur::from_millis(8),
                },
                DaemonSpec {
                    name: "mmfsd_bg".into(),
                    prio: Prio::MMFSD,
                    period: SimDur::from_millis(500),
                    burst_median: SimDur::from_micros(2_200),
                    burst_sigma: 0.5,
                    page_fault_prob: 0.05,
                    page_fault_extra: SimDur::from_millis(2),
                },
                DaemonSpec {
                    name: "hatsd".into(),
                    prio: Prio::DAEMON_OBSERVED,
                    period: SimDur::from_millis(400),
                    burst_median: SimDur::from_micros(3_500),
                    burst_sigma: 0.5,
                    page_fault_prob: 0.1,
                    page_fault_extra: SimDur::from_millis(4),
                },
                DaemonSpec {
                    name: "hats_nim".into(),
                    prio: Prio::DAEMON_OBSERVED,
                    period: SimDur::from_millis(250),
                    burst_median: SimDur::from_micros(800),
                    burst_sigma: 0.4,
                    page_fault_prob: 0.05,
                    page_fault_extra: SimDur::from_millis(2),
                },
                DaemonSpec {
                    name: "mld".into(),
                    prio: Prio::DAEMON_OBSERVED,
                    period: SimDur::from_millis(50),
                    burst_median: SimDur::from_micros(350),
                    burst_sigma: 0.3,
                    page_fault_prob: 0.0,
                    page_fault_extra: SimDur::ZERO,
                },
                DaemonSpec {
                    name: "LoadL_startd".into(),
                    prio: Prio::DAEMON_OBSERVED,
                    period: SimDur::from_secs(15),
                    burst_median: SimDur::from_millis(40),
                    burst_sigma: 0.6,
                    page_fault_prob: 0.3,
                    page_fault_extra: SimDur::from_millis(8),
                },
                DaemonSpec {
                    name: "inetd".into(),
                    prio: Prio::NORMAL,
                    period: SimDur::from_secs(5),
                    burst_median: SimDur::from_millis(2),
                    burst_sigma: 0.5,
                    page_fault_prob: 0.05,
                    page_fault_extra: SimDur::from_millis(1),
                },
                DaemonSpec {
                    name: "hostmibd".into(),
                    prio: Prio::NORMAL,
                    period: SimDur::from_secs(30),
                    burst_median: SimDur::from_millis(15),
                    burst_sigma: 0.5,
                    page_fault_prob: 0.2,
                    page_fault_extra: SimDur::from_millis(4),
                },
            ],
            interrupts: vec![
                InterruptDesc {
                    name: "caddpin".into(),
                    mean_interval: SimDur::from_millis(25),
                    burst_min: SimDur::from_micros(8),
                    burst_max: SimDur::from_micros(30),
                },
                InterruptDesc {
                    name: "phxentdd".into(),
                    mean_interval: SimDur::from_millis(12),
                    burst_min: SimDur::from_micros(4),
                    burst_max: SimDur::from_micros(15),
                },
            ],
            cron: Some(CronSpec::default()),
            gpfs_prio: Some(Prio::MMFSD),
        }
    }

    /// Scale all daemon bursts and cron components by `k` (sweep knob for
    /// the sensitivity experiments).
    pub fn scaled(mut self, k: f64) -> NoiseProfile {
        self.daemons = self.daemons.into_iter().map(|d| d.scaled(k)).collect();
        if let Some(c) = &mut self.cron {
            c.component_median = c.component_median.mul_f64(k);
        }
        self
    }

    /// Remove the cron job (Fig-4 control runs).
    pub fn without_cron(mut self) -> NoiseProfile {
        self.cron = None;
        self
    }

    /// Expected long-run background utilization of one CPU — daemons plus
    /// interrupts plus cron, assuming they were spread evenly. The paper's
    /// band is per-CPU on a 16-way node where interference concentrates on
    /// whichever CPU hosts it, so the audit experiment reports both views.
    pub fn expected_node_utilization(&self) -> f64 {
        let d: f64 = self.daemons.iter().map(|s| s.utilization()).sum();
        let i: f64 = self.interrupts.iter().map(|s| s.utilization()).sum();
        let c = self.cron.as_ref().map_or(0.0, |c| c.utilization());
        d + i + c
    }

    /// Spawn everything on a node. `node` seeds per-node RNG streams so no
    /// two nodes share daemon phases.
    pub fn install(&self, kernel: &mut Kernel, seeds: &SeedSpace, node: u32) -> InstalledNoise {
        let mut installed = InstalledNoise::default();
        for (i, spec) in self.daemons.iter().enumerate() {
            let rng = seeds.stream_at("noise/daemon", u64::from(node), i as u64);
            let tid = kernel.spawn(
                ThreadSpec::new(spec.name.clone(), ThreadClass::Daemon, spec.prio),
                Box::new(DaemonProgram::new(spec.clone(), rng)),
            );
            installed.daemons.push(tid);
        }
        for desc in &self.interrupts {
            kernel.add_interrupt_source(desc.to_spec());
        }
        if let Some(cron) = &self.cron {
            let rng = seeds.stream_at("noise/cron", u64::from(node), 0);
            let tid = kernel.spawn(
                ThreadSpec::new("cron", ThreadClass::Cron, cron.prio),
                Box::new(CronJob::new(cron.clone(), rng)),
            );
            installed.cron = Some(tid);
        }
        if let Some(prio) = self.gpfs_prio {
            // The cluster configuration: a message-served mmfsd reachable
            // from every node (GPFS metanode/NSD semantics). The caller
            // registers the endpoint with the job layout so ranks route
            // their I/O here.
            let model = *kernel.io_model();
            let tid = kernel.spawn(
                ThreadSpec::new("mmfsd", ThreadClass::Daemon, prio),
                Box::new(crate::gpfs::GpfsServer::new(model)),
            );
            installed.gpfs = Some(tid);
        }
        installed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::{ClockModel, SchedOptions, SoloRunner};
    use pa_simkit::{SimRng, SimTime};
    use pa_trace::HookMask;

    #[test]
    fn production_utilization_in_paper_band() {
        let p = NoiseProfile::production();
        let u = p.expected_node_utilization();
        // Node-total background budget: per-CPU on the 16-way node this
        // must land inside the paper's 0.2%–1.1% band.
        let per_cpu = u / 16.0;
        assert!(
            per_cpu > 0.002 && per_cpu < 0.011,
            "per-CPU background {per_cpu:.4} outside the paper band (node total {u:.4})"
        );
    }

    #[test]
    fn dedicated_is_quieter_than_production() {
        assert!(
            NoiseProfile::dedicated().expected_node_utilization()
                < NoiseProfile::production().expected_node_utilization() / 2.0
        );
    }

    #[test]
    fn silent_is_zero() {
        assert_eq!(NoiseProfile::silent().expected_node_utilization(), 0.0);
    }

    #[test]
    fn scaling_scales_utilization() {
        let base = NoiseProfile::production();
        let double = base.clone().scaled(2.0);
        let ratio = double.expected_node_utilization() / base.expected_node_utilization();
        assert!(
            (ratio - 2.0).abs() < 0.3,
            "scaling should ~double utilization, ratio {ratio}"
        );
    }

    #[test]
    fn install_spawns_everything() {
        let mut k = Kernel::new(
            0,
            16,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(5),
            1 << 14,
        );
        k.trace_mut().set_mask(HookMask::NONE);
        let p = NoiseProfile::production();
        let seeds = SeedSpace::new(42);
        let installed = p.install(&mut k, &seeds, 0);
        assert_eq!(installed.daemons.len(), p.daemons.len());
        assert!(installed.cron.is_some());
        assert!(installed.gpfs.is_some());
    }

    #[test]
    fn installed_production_noise_runs_quietly() {
        // On an idle 16-way node, background noise should consume well
        // under 2% of the node over 30 seconds (cron may or may not fire).
        let mut k = Kernel::new(
            0,
            16,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(5),
            1 << 14,
        );
        k.trace_mut().set_mask(HookMask::NONE);
        let p = NoiseProfile::production().without_cron();
        let seeds = SeedSpace::new(42);
        let installed = p.install(&mut k, &seeds, 0);
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_secs(30));
        let total: u64 = installed
            .daemons
            .iter()
            .map(|&t| r.kernel.thread_cpu_time(t).nanos())
            .sum();
        let frac = total as f64 / (30e9 * 16.0);
        assert!(frac < 0.02, "daemons consumed {frac} of the node");
        assert!(frac > 0.0001, "daemons seem not to run at all: {frac}");
    }

    #[test]
    fn nodes_get_different_phases() {
        // Install on two nodes; daemon CPU times after 10s should differ
        // in their exact values because phases/bursts differ per node.
        let run_node = |node: u32| {
            let mut k = Kernel::new(
                node,
                4,
                SchedOptions::vanilla(),
                ClockModel::synced(),
                SimRng::from_seed(5),
                1 << 14,
            );
            k.trace_mut().set_mask(HookMask::NONE);
            let p = NoiseProfile::production().without_cron();
            let seeds = SeedSpace::new(42);
            let installed = p.install(&mut k, &seeds, node);
            let mut r = SoloRunner::new(k);
            r.boot();
            r.run_until(SimTime::from_secs(10));
            installed
                .daemons
                .iter()
                .map(|&t| r.kernel.thread_cpu_time(t).nanos())
                .collect::<Vec<u64>>()
        };
        assert_ne!(run_node(0), run_node(1));
    }
}
