//! # pa-noise — system-software interference models
//!
//! The daemon zoo, cron job, interrupt handlers, and GPFS service loop
//! that the SC'03 study observed stealing CPUs from MPI ranks (§2, §5.3),
//! as [`Program`](pa_kernel::Program)s for the simulated kernel:
//!
//! * [`DaemonSpec`] / [`DaemonProgram`] — periodic daemons (syncd, hatsd,
//!   mld, LoadL_startd, ...) with lognormal bursts and page-fault
//!   inflation;
//! * [`CronSpec`] / [`CronJob`] — the 15-minute health-check job whose
//!   600 ms of priority-56 components caused the worst Figure-4 outlier;
//! * [`GpfsDaemon`] — the mmfsd service loop that application I/O depends
//!   on (the §5.3 ALE3D starvation mechanism);
//! * [`NoiseProfile`] — calibrated bundles (`production`, `dedicated`,
//!   `silent`) installable on a node in one call.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cron;
pub mod daemons;
pub mod gpfs;
pub mod profile;

pub use cron::{CronJob, CronSpec};
pub use daemons::{DaemonProgram, DaemonSpec};
pub use gpfs::GpfsDaemon;
pub use profile::{InstalledNoise, InterruptDesc, NoiseProfile};
