//! The administrative cron job.
//!
//! §5.3: *"In examining the traces to determine what caused the outliers,
//! we found that an administrative cron job ran during the slowest
//! Allreduce. This cron job is run every 15 minutes to check on the health
//! of the system. Its various components — Perl scripts and a variety of
//! utility commands — run at a higher priority than user processes and
//! steal CPU resources. We observed that on multiple nodes, one CPU had
//! over 600 msec of wall clock time consumed by these components."*
//!
//! Because cron fires on clock boundaries, the job lands at (nearly) the
//! same moment on every node — which is what makes its 600 ms so deadly to
//! a 944-way collective: some node is always caught mid-Allreduce.

use pa_kernel::{Action, Prio, Program, StepCtx};
use pa_simkit::{RngState, SimDur, SimRng};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Configuration of the periodic health-check job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CronSpec {
    /// Job period (15 minutes in the study; experiments shorten it so a
    /// bounded benchmark run still observes a hit — documented in
    /// DESIGN.md as a time-compression substitution).
    pub period: SimDur,
    /// Components (Perl scripts, utility commands) run per firing.
    pub components: u32,
    /// Median CPU burst of one component.
    pub component_median: SimDur,
    /// Lognormal shape of component bursts.
    pub component_sigma: f64,
    /// Probability a component page-faults.
    pub page_fault_prob: f64,
    /// Extra demand per page fault.
    pub page_fault_extra: SimDur,
    /// Priority of the components ("higher priority than user processes";
    /// the traces showed 56).
    pub prio: Prio,
    /// Offset of the firings within the period. Real cron fires at fixed
    /// wall-clock minutes; a job launched at an arbitrary time sees the
    /// next firing after `phase - (start mod period)`. Experiments set
    /// this to place one firing inside a bounded benchmark loop.
    #[serde(default)]
    pub phase: SimDur,
}

impl Default for CronSpec {
    fn default() -> Self {
        // 12 components averaging ~50 ms ≈ 600 ms per firing.
        CronSpec {
            period: SimDur::from_secs(900),
            components: 12,
            component_median: SimDur::from_millis(42),
            component_sigma: 0.45,
            page_fault_prob: 0.3,
            page_fault_extra: SimDur::from_millis(8),
            prio: Prio::DAEMON_OBSERVED,
            phase: SimDur::ZERO,
        }
    }
}

impl CronSpec {
    /// Expected total CPU demand of one firing.
    pub fn expected_total(&self) -> SimDur {
        let per = self.component_median.nanos() as f64
            * (self.component_sigma * self.component_sigma / 2.0).exp()
            + self.page_fault_prob * self.page_fault_extra.nanos() as f64;
        SimDur::from_nanos((per * f64::from(self.components)) as u64)
    }

    /// Long-run expected utilization of one CPU.
    pub fn utilization(&self) -> f64 {
        if self.period.is_zero() {
            0.0
        } else {
            self.expected_total().nanos() as f64 / self.period.nanos() as f64
        }
    }
}

/// State machine: sleep to the next *clock-aligned* period boundary, then
/// run all components back-to-back.
#[derive(Debug)]
pub struct CronJob {
    spec: CronSpec,
    rng: SimRng,
    remaining_components: u32,
}

impl CronJob {
    /// Instantiate with a node-local RNG stream.
    pub fn new(spec: CronSpec, rng: SimRng) -> CronJob {
        CronJob {
            spec,
            rng,
            remaining_components: 0,
        }
    }
}

impl Program for CronJob {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        if self.remaining_components == 0 {
            self.remaining_components = self.spec.components;
            // Cron fires on local-clock boundaries (the same schedule on
            // every node, modulo clock offsets) — no per-node randomness.
            return Action::SleepUntil(
                ctx.local_now
                    .next_boundary(self.spec.period, self.spec.phase),
            );
        }
        self.remaining_components -= 1;
        let mut burst = self
            .rng
            .lognormal_dur(self.spec.component_median, self.spec.component_sigma);
        if self.rng.chance(self.spec.page_fault_prob) {
            burst += self.spec.page_fault_extra;
        }
        Action::Compute(burst)
    }

    fn kind(&self) -> &'static str {
        "cron"
    }

    fn snapshot_state(&self) -> Value {
        (self.remaining_components, self.rng.save_state()).to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let (remaining, rng): (u32, RngState) = Deserialize::from_value(state)?;
        self.remaining_components = remaining;
        self.rng.load_state(&rng).map_err(serde::Error)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::{ClockModel, CpuId, Kernel, SchedOptions, SoloRunner, ThreadSpec};
    use pa_simkit::SimTime;
    use pa_trace::{HookMask, ThreadClass};

    #[test]
    fn default_totals_near_600ms() {
        let c = CronSpec::default();
        let total = c.expected_total();
        assert!(
            total >= SimDur::from_millis(450) && total <= SimDur::from_millis(750),
            "expected ≈600ms, got {total}"
        );
    }

    #[test]
    fn utilization_is_small_despite_big_bursts() {
        let c = CronSpec::default();
        assert!(c.utilization() < 0.001, "cron should be <0.1% long-run");
    }

    #[test]
    fn fires_on_period_boundary_and_consumes_burst() {
        let spec = CronSpec {
            period: SimDur::from_secs(2),
            components: 4,
            component_median: SimDur::from_millis(10),
            component_sigma: 0.0,
            page_fault_prob: 0.0,
            page_fault_extra: SimDur::ZERO,
            ..CronSpec::default()
        };
        let mut k = Kernel::new(
            0,
            1,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(1),
            1 << 14,
        );
        k.trace_mut().set_mask(HookMask::ALL);
        let tid = k.spawn(
            ThreadSpec::new("cron", ThreadClass::Cron, spec.prio).on_cpu(CpuId(0)),
            Box::new(CronJob::new(spec, SimRng::from_seed(2))),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_secs(5));
        // Two firings (at 2s and 4s), 40ms each.
        let t = r.kernel.thread_cpu_time(tid);
        assert!(
            t >= SimDur::from_millis(78) && t <= SimDur::from_millis(90),
            "cron consumed {t}"
        );
        // First dispatch after its boot sleep is at/just after 2s (tick
        // granularity).
        let first_burst = r
            .kernel
            .trace()
            .events()
            .filter(|e| e.hook == pa_trace::HookId::Dispatch && e.tid == tid.0)
            .map(|e| e.time)
            .find(|&t| t >= SimTime::from_millis(100))
            .expect("cron fired");
        assert!(
            first_burst >= SimTime::from_secs(2) && first_burst <= SimTime::from_millis(2020),
            "fired at {first_burst}"
        );
    }

    #[test]
    fn aligned_across_nodes_with_synced_clocks() {
        // Two kernels with synced clocks fire cron within a tick of each
        // other; with a 7ms clock offset they fire 7ms apart.
        let fire_time = |offset_ms: u64| {
            let spec = CronSpec {
                period: SimDur::from_secs(2),
                components: 1,
                component_median: SimDur::from_millis(5),
                component_sigma: 0.0,
                page_fault_prob: 0.0,
                ..CronSpec::default()
            };
            let mut k = Kernel::new(
                0,
                1,
                SchedOptions::vanilla(),
                ClockModel::with_offset(SimDur::from_millis(offset_ms)),
                SimRng::from_seed(1),
                1 << 14,
            );
            k.trace_mut().set_mask(HookMask::ALL);
            let tid = k.spawn(
                ThreadSpec::new("cron", ThreadClass::Cron, spec.prio).on_cpu(CpuId(0)),
                Box::new(CronJob::new(spec, SimRng::from_seed(2))),
            );
            let mut r = SoloRunner::new(k);
            r.boot();
            r.run_until(SimTime::from_secs(5));
            let t = r
                .kernel
                .trace()
                .events()
                .filter(|e| e.hook == pa_trace::HookId::Dispatch && e.tid == tid.0)
                .map(|e| e.time)
                .find(|&t| t >= SimTime::from_millis(100))
                .expect("fired");
            t
        };
        let synced = fire_time(0);
        let offset = fire_time(7);
        // The offset node's local 2s boundary is 7ms *earlier* in global
        // time; both wakes quantize to the node's tick grid.
        assert!(
            synced > offset,
            "offset node should fire earlier: {synced} vs {offset}"
        );
        let gap = synced - offset;
        assert!(
            gap <= SimDur::from_millis(17),
            "alignment should be within offset+tick: {gap}"
        );
    }
}
