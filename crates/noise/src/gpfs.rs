//! The GPFS client daemon (mmfsd) service loop.
//!
//! mmfsd plays two roles in the study:
//!
//! 1. **I/O service** — applications' reads and restart dumps complete
//!    only when mmfsd gets CPU time (§4's "escape mechanism" discussion
//!    and §5.3's ALE3D I/O-starvation finding).
//! 2. **Background interference** — GPFS housekeeping shows up in the
//!    Allreduce traces like any other daemon (modeled separately with a
//!    [`DaemonSpec`](crate::daemons::DaemonSpec)).
//!
//! This module implements role 1: a service loop that pulls pending
//! requests, burns the service time from the kernel's
//! `IoServiceModel`, and completes them.

use pa_kernel::{Action, IoRequest, IoServiceModel, Program, StepCtx};
use pa_simkit::SimDur;
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// mmfsd's request-service state machine.
#[derive(Debug)]
pub struct GpfsDaemon {
    model: IoServiceModel,
    /// Request currently being serviced (service burst issued, completion
    /// pending).
    in_service: Option<IoRequest>,
    /// Extra fixed latency charged per request beyond CPU demand — models
    /// disk/NSD-server round trips the daemon waits on while holding the
    /// request. Charged as CPU here because what matters to the study is
    /// *when the requester wakes*, not mmfsd's own utilization split.
    pub extra_latency: SimDur,
    serviced: u64,
}

impl GpfsDaemon {
    /// New service loop with the given service-time model.
    pub fn new(model: IoServiceModel) -> GpfsDaemon {
        GpfsDaemon {
            model,
            in_service: None,
            extra_latency: SimDur::from_micros(300),
            serviced: 0,
        }
    }

    /// Number of requests completed (test introspection; note the program
    /// is owned by the kernel once spawned).
    pub fn serviced(&self) -> u64 {
        self.serviced
    }
}

impl Program for GpfsDaemon {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        if let Some(req) = self.in_service.take() {
            self.serviced += 1;
            return Action::IoComplete(req);
        }
        match ctx.take_io_request() {
            Some(req) => {
                let demand = self.model.service_time(req.bytes) + self.extra_latency;
                self.in_service = Some(req);
                Action::Compute(demand)
            }
            None => Action::IoIdle,
        }
    }

    fn kind(&self) -> &'static str {
        "mmfsd"
    }

    fn snapshot_state(&self) -> Value {
        (self.in_service, self.extra_latency, self.serviced).to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let (in_service, extra, serviced): (Option<IoRequest>, SimDur, u64) =
            Deserialize::from_value(state)?;
        self.in_service = in_service;
        self.extra_latency = extra;
        self.serviced = serviced;
        Ok(())
    }
}

/// Message-served GPFS daemon (the cluster configuration).
///
/// Ranks send [`ioproto`](pa_kernel::msg::ioproto) requests — possibly
/// from *other nodes* (GPFS metanode/NSD-server semantics) — and block on
/// the reply. The daemon services requests FIFO: for each, it burns the
/// service-time CPU demand at its own dispatching priority, then replies.
/// If the favored parallel job monopolizes every CPU of this node, the
/// request (and the remote, blocked rank) waits — the §5.3 cascade.
#[derive(Debug)]
pub struct GpfsServer {
    model: IoServiceModel,
    /// Extra per-request latency (disk / NSD round trips).
    pub extra_latency: SimDur,
    /// Reply being prepared (service burst already issued).
    reply: Option<pa_kernel::Message>,
    serviced: u64,
}

impl GpfsServer {
    /// New server with the given service-time model.
    pub fn new(model: IoServiceModel) -> GpfsServer {
        GpfsServer {
            model,
            extra_latency: SimDur::from_micros(300),
            reply: None,
            serviced: 0,
        }
    }

    /// Requests completed.
    pub fn serviced(&self) -> u64 {
        self.serviced
    }
}

impl Program for GpfsServer {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        use pa_kernel::msg::ioproto;
        use pa_kernel::{SrcSel, TagSel, WaitMode};
        if let Some(reply) = self.reply.take() {
            self.serviced += 1;
            return Action::Send(reply);
        }
        if let Some(req) = ctx.try_received() {
            if let Some((token, true)) = ioproto::parse(req.tag) {
                let bytes = req.payload;
                let demand = self.model.service_time(bytes) + self.extra_latency;
                self.reply = Some(pa_kernel::Message {
                    src: req.dst,
                    dst: req.src,
                    tag: ioproto::resp_tag(token),
                    bytes: 64,
                    sent_at: pa_simkit::SimTime::ZERO,
                    payload: bytes,
                });
                return Action::Compute(demand);
            }
            // Stray message: ignore and wait for the next request.
        }
        Action::Recv {
            tag: TagSel::Any,
            src: SrcSel::Any,
            wait: WaitMode::Block,
        }
    }

    fn kind(&self) -> &'static str {
        "mmfsd"
    }

    fn snapshot_state(&self) -> Value {
        (self.reply.clone(), self.extra_latency, self.serviced).to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        type Snap = (Option<pa_kernel::Message>, SimDur, u64);
        let (reply, extra, serviced): Snap = Deserialize::from_value(state)?;
        self.reply = reply;
        self.extra_latency = extra;
        self.serviced = serviced;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::{
        Action as A, ClockModel, CpuId, Kernel, Prio, SchedOptions, Script, SoloRunner, ThreadSpec,
        ThreadState,
    };
    use pa_simkit::{SimRng, SimTime};
    use pa_trace::{HookMask, ThreadClass};

    fn build(io_prio: Prio, app_burst_after: SimDur) -> (SoloRunner, pa_kernel::Tid) {
        let mut k = Kernel::new(
            0,
            2,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(3),
            1 << 14,
        );
        k.trace_mut().set_mask(HookMask::ALL);
        let app = k.spawn(
            ThreadSpec::new("app", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                A::IoSubmit { bytes: 4 << 20 },
                A::Compute(app_burst_after),
            ])),
        );
        let d = k.spawn(
            ThreadSpec::new("mmfsd", ThreadClass::Daemon, io_prio).on_cpu(CpuId(1)),
            Box::new(GpfsDaemon::new(IoServiceModel::default())),
        );
        k.set_io_daemon(d);
        let mut r = SoloRunner::new(k);
        r.boot();
        (r, app)
    }

    #[test]
    fn request_completes_and_app_resumes() {
        let (mut r, app) = build(Prio::MMFSD, SimDur::from_micros(100));
        r.run_until_apps_done(SimTime::from_secs(2));
        assert_eq!(r.kernel.thread_state(app), ThreadState::Exited);
    }

    #[test]
    fn service_time_scales_with_size() {
        // Time-to-completion for 64 MiB should exceed that for 4 KiB.
        let time_for = |bytes: u64| {
            let mut k = Kernel::new(
                0,
                2,
                SchedOptions::vanilla(),
                ClockModel::synced(),
                SimRng::from_seed(3),
                1 << 14,
            );
            k.trace_mut().set_mask(HookMask::ALL);
            k.spawn(
                ThreadSpec::new("app", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
                Box::new(Script::new(vec![A::IoSubmit { bytes }])),
            );
            let d = k.spawn(
                ThreadSpec::new("mmfsd", ThreadClass::Daemon, Prio::MMFSD).on_cpu(CpuId(1)),
                Box::new(GpfsDaemon::new(IoServiceModel::default())),
            );
            k.set_io_daemon(d);
            let mut r = SoloRunner::new(k);
            r.boot();
            r.run_until_apps_done(SimTime::from_secs(10)).nanos()
        };
        assert!(time_for(64 << 20) > time_for(4 << 10));
    }

    #[test]
    fn starved_daemon_stalls_io() {
        // A favored compute hog on the daemon's only eligible CPU delays
        // I/O completion — the ALE3D §5.3 mechanism in miniature. Here we
        // pin a FAVORED (30) spinner to CPU1 (mmfsd at 40 can't preempt
        // it) and give the daemon nothing else to run on... on a 2-CPU
        // node the daemon is stolen by CPU0 once the app blocks, so use a
        // single-CPU node where the hog simply outranks everyone.
        let mut k = Kernel::new(
            0,
            1,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(3),
            1 << 14,
        );
        k.trace_mut().set_mask(HookMask::ALL);
        let app = k.spawn(
            ThreadSpec::new("app", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![A::IoSubmit { bytes: 1 << 20 }])),
        );
        let d = k.spawn(
            ThreadSpec::new("mmfsd", ThreadClass::Daemon, Prio::MMFSD).on_cpu(CpuId(0)),
            Box::new(GpfsDaemon::new(IoServiceModel::default())),
        );
        k.set_io_daemon(d);
        // The hog: favored above mmfsd, runs 50ms then exits.
        k.spawn(
            ThreadSpec::new("hog", ThreadClass::App, Prio::FAVORED).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![A::Compute(SimDur::from_millis(50))])),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        let end = r.run_until_apps_done(SimTime::from_secs(2));
        // The app's I/O cannot complete until the hog exits at ~50ms.
        assert!(
            end >= SimTime::from_millis(50),
            "I/O completed during starvation: {end}"
        );
        assert_eq!(r.kernel.thread_state(app), ThreadState::Exited);
    }
}
#[cfg(test)]
mod server_tests {
    use super::*;
    use pa_kernel::msg::ioproto;
    use pa_kernel::{
        Action as A, ClockModel, CpuId, Endpoint, Kernel, Message, Prio, SchedOptions, Script,
        SoloRunner, SrcSel, TagSel, ThreadSpec, ThreadState, Tid, WaitMode,
    };
    use pa_simkit::{SimRng, SimTime};
    use pa_trace::{HookMask, ThreadClass};

    #[test]
    fn message_request_gets_reply() {
        let mut k = Kernel::new(
            0,
            2,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(3),
            1 << 14,
        );
        k.trace_mut().set_mask(HookMask::ALL);
        let server_ep = Endpoint {
            node: 0,
            tid: Tid(1),
        };
        let app = k.spawn(
            ThreadSpec::new("app", ThreadClass::App, Prio::USER).on_cpu(CpuId(0)),
            Box::new(Script::new(vec![
                A::Send(Message {
                    src: Endpoint {
                        node: 0,
                        tid: Tid(0),
                    },
                    dst: server_ep,
                    tag: ioproto::req_tag(7),
                    bytes: 64,
                    sent_at: SimTime::ZERO,
                    payload: 1 << 20,
                }),
                A::Recv {
                    tag: TagSel::Exact(ioproto::resp_tag(7)),
                    src: SrcSel::Any,
                    wait: WaitMode::Block,
                },
            ])),
        );
        k.spawn(
            ThreadSpec::new("mmfsd", ThreadClass::Daemon, Prio::MMFSD).on_cpu(CpuId(1)),
            Box::new(GpfsServer::new(IoServiceModel::default())),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        let end = r.run_until_apps_done(SimTime::from_secs(2));
        assert_eq!(r.kernel.thread_state(app), ThreadState::Exited);
        // Service time for 1 MiB ≈ 200µs + 262µs + 300µs extra ≈ 760µs.
        assert!(end >= SimTime::from_micros(700), "too fast: {end}");
        assert!(end < SimTime::from_millis(5), "too slow: {end}");
    }

    #[test]
    fn requests_are_serviced_fifo() {
        // Two requests from two apps; both must complete.
        let mut k = Kernel::new(
            0,
            4,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(3),
            1 << 14,
        );
        k.trace_mut().set_mask(HookMask::NONE);
        let server_ep = Endpoint {
            node: 0,
            tid: Tid(2),
        };
        for i in 0..2u32 {
            k.spawn(
                ThreadSpec::new(format!("app{i}"), ThreadClass::App, Prio::USER)
                    .on_cpu(CpuId(i as u8)),
                Box::new(Script::new(vec![
                    A::Send(Message {
                        src: Endpoint {
                            node: 0,
                            tid: Tid(i),
                        },
                        dst: server_ep,
                        tag: ioproto::req_tag(u64::from(i)),
                        bytes: 64,
                        sent_at: SimTime::ZERO,
                        payload: 4096,
                    }),
                    A::Recv {
                        tag: TagSel::Exact(ioproto::resp_tag(u64::from(i))),
                        src: SrcSel::Any,
                        wait: WaitMode::Block,
                    },
                ])),
            );
        }
        k.spawn(
            ThreadSpec::new("mmfsd", ThreadClass::Daemon, Prio::MMFSD).on_cpu(CpuId(3)),
            Box::new(GpfsServer::new(IoServiceModel::default())),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until_apps_done(SimTime::from_secs(2));
        assert_eq!(r.kernel.app_alive(), 0);
    }
}
