//! Periodic system daemons.
//!
//! §2 of the paper: "Examples of these serializing system activities
//! include daemons associated with file system activity, daemons
//! associated with membership services, monitoring daemons, cron jobs,
//! and so forth." §5.3 names the cast observed in the traces: syncd,
//! mmfsd, hatsd, hats_nim, inetd, LoadL_startd, mld, hostmibd — running
//! at priorities more favored than user processes, often page-faulting,
//! each stealing a CPU from exactly one rank and thereby stalling the
//! whole collective.
//!
//! A [`DaemonSpec`] describes one such daemon: a timer-driven loop with a
//! lognormal CPU burst and optional page-fault inflation. Wakeups ride the
//! kernel's tick-serviced callout queue, so big ticks batch them exactly
//! as §3.1.1 describes.

use pa_kernel::{Action, Prio, Program, StepCtx};
use pa_simkit::{RngState, SimDur, SimRng};
use pa_trace::HookId;
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Description of a periodic daemon.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DaemonSpec {
    /// Process name as seen in traces.
    pub name: String,
    /// Dispatching priority (daemons observed in the study ran at 56;
    /// mmfsd is often pinned at 40).
    pub prio: Prio,
    /// Wakeup period.
    pub period: SimDur,
    /// Median CPU burst per wakeup.
    pub burst_median: SimDur,
    /// Lognormal shape of the burst (0 = deterministic).
    pub burst_sigma: f64,
    /// Probability that a wakeup page-faults.
    pub page_fault_prob: f64,
    /// Extra CPU demand when it does ("the execution of these processes
    /// was often accompanied by page faults, increasing their run time").
    pub page_fault_extra: SimDur,
}

impl DaemonSpec {
    /// A deterministic daemon (no burst spread, no page faults).
    pub fn simple(
        name: impl Into<String>,
        prio: Prio,
        period: SimDur,
        burst: SimDur,
    ) -> DaemonSpec {
        DaemonSpec {
            name: name.into(),
            prio,
            period,
            burst_median: burst,
            burst_sigma: 0.0,
            page_fault_prob: 0.0,
            page_fault_extra: SimDur::ZERO,
        }
    }

    /// Long-run expected utilization of one CPU (approximate: lognormal
    /// mean = median·exp(σ²/2), plus expected page-fault overhead).
    pub fn utilization(&self) -> f64 {
        if self.period.is_zero() {
            return 0.0;
        }
        let mean_burst = self.burst_median.nanos() as f64
            * (self.burst_sigma * self.burst_sigma / 2.0).exp()
            + self.page_fault_prob * self.page_fault_extra.nanos() as f64;
        mean_burst / self.period.nanos() as f64
    }

    /// Scale burst sizes by `k` (profile intensity knob).
    pub fn scaled(mut self, k: f64) -> DaemonSpec {
        self.burst_median = self.burst_median.mul_f64(k);
        self.page_fault_extra = self.page_fault_extra.mul_f64(k);
        self
    }
}

/// The running state machine for a [`DaemonSpec`].
///
/// Each instance draws its own phase (uniform in `[0, period)`) so that
/// daemon wakeups are *not* aligned across nodes — on a real cluster each
/// node's daemons started at arbitrary times. Coordination, when it
/// happens, must come from the kernel options and the co-scheduler, which
/// is precisely the paper's point.
#[derive(Debug)]
pub struct DaemonProgram {
    spec: DaemonSpec,
    rng: SimRng,
    phase: SimDur,
    /// Next queued actions (used to emit PageFault trace records before
    /// the inflated burst).
    queued: Vec<Action>,
    fired: bool,
}

impl DaemonProgram {
    /// Instantiate a daemon with its own RNG stream.
    pub fn new(spec: DaemonSpec, mut rng: SimRng) -> DaemonProgram {
        let phase = SimDur::from_nanos(rng.range(0, spec.period.nanos().max(1)));
        DaemonProgram {
            spec,
            rng,
            phase,
            queued: Vec::new(),
            // Start as if a burst just completed: the first action is the
            // sleep to this instance's phase. Bursting at spawn would
            // model every daemon in the system restarting at job launch.
            fired: true,
        }
    }

    /// The daemon's wakeup phase within its period (test introspection).
    pub fn phase(&self) -> SimDur {
        self.phase
    }
}

impl Program for DaemonProgram {
    fn step(&mut self, ctx: &mut StepCtx<'_>) -> Action {
        if let Some(a) = self.queued.pop() {
            return a;
        }
        if self.fired {
            self.fired = false;
            return Action::SleepUntil(ctx.local_now.next_boundary(self.spec.period, self.phase));
        }
        self.fired = true;
        let mut burst = if self.spec.burst_sigma > 0.0 {
            self.rng
                .lognormal_dur(self.spec.burst_median, self.spec.burst_sigma)
        } else {
            self.spec.burst_median
        };
        if self.rng.chance(self.spec.page_fault_prob) {
            burst += self.spec.page_fault_extra;
            // Emit the burst after the page-fault marker.
            self.queued.push(Action::Compute(burst));
            return Action::Trace {
                hook: HookId::PageFault,
                aux: self.spec.page_fault_extra.nanos(),
            };
        }
        Action::Compute(burst)
    }

    fn kind(&self) -> &'static str {
        "daemon"
    }

    fn snapshot_state(&self) -> Value {
        // `phase` is drawn at construction from the same rng stream the
        // rebuild uses, so only the loop state and rng position move.
        (self.fired, self.queued.clone(), self.rng.save_state()).to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let (fired, queued, rng): (bool, Vec<Action>, RngState) = Deserialize::from_value(state)?;
        self.fired = fired;
        self.queued = queued;
        self.rng.load_state(&rng).map_err(serde::Error)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::{ClockModel, CpuId, Kernel, SchedOptions, SoloRunner, ThreadSpec};
    use pa_simkit::SimTime;
    use pa_trace::{HookMask, ThreadClass};

    fn spec_1ms_every_100ms() -> DaemonSpec {
        DaemonSpec::simple(
            "hatsd",
            Prio::DAEMON_OBSERVED,
            SimDur::from_millis(100),
            SimDur::from_millis(1),
        )
    }

    #[test]
    fn utilization_estimate() {
        let s = spec_1ms_every_100ms();
        assert!((s.utilization() - 0.01).abs() < 1e-9);
        let mut pf = s.clone();
        pf.page_fault_prob = 0.5;
        pf.page_fault_extra = SimDur::from_millis(2);
        // 1ms + 0.5*2ms = 2ms per 100ms = 2%.
        assert!((pf.utilization() - 0.02).abs() < 1e-9);
    }

    #[test]
    fn scaled_changes_bursts_not_period() {
        let s = spec_1ms_every_100ms().scaled(2.0);
        assert_eq!(s.burst_median, SimDur::from_millis(2));
        assert_eq!(s.period, SimDur::from_millis(100));
    }

    #[test]
    fn daemon_consumes_expected_cpu_share() {
        let mut k = Kernel::new(
            0,
            1,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(1),
            1 << 14,
        );
        k.trace_mut().set_mask(HookMask::NONE);
        let spec = spec_1ms_every_100ms();
        let tid = k.spawn(
            ThreadSpec::new("hatsd", ThreadClass::Daemon, spec.prio).on_cpu(CpuId(0)),
            Box::new(DaemonProgram::new(spec, SimRng::from_seed(2))),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_secs(10));
        let t = r.kernel.thread_cpu_time(tid);
        // ~100 wakeups of 1ms ≈ 100ms total, ±ctx-switch noise.
        assert!(
            t >= SimDur::from_millis(90) && t <= SimDur::from_millis(130),
            "daemon used {t}"
        );
    }

    #[test]
    fn phases_differ_between_instances() {
        let spec = spec_1ms_every_100ms();
        let a = DaemonProgram::new(spec.clone(), SimRng::from_seed(10));
        let b = DaemonProgram::new(spec, SimRng::from_seed(11));
        assert_ne!(a.phase(), b.phase());
    }

    #[test]
    fn page_fault_emits_marker() {
        let mut spec = spec_1ms_every_100ms();
        spec.page_fault_prob = 1.0;
        spec.page_fault_extra = SimDur::from_millis(3);
        let mut k = Kernel::new(
            0,
            1,
            SchedOptions::vanilla(),
            ClockModel::synced(),
            SimRng::from_seed(1),
            1 << 14,
        );
        k.trace_mut().set_mask(HookMask::ALL);
        let tid = k.spawn(
            ThreadSpec::new("hatsd", ThreadClass::Daemon, spec.prio).on_cpu(CpuId(0)),
            Box::new(DaemonProgram::new(spec, SimRng::from_seed(2))),
        );
        let mut r = SoloRunner::new(k);
        r.boot();
        r.run_until(SimTime::from_millis(500));
        let pf = r
            .kernel
            .trace()
            .events()
            .filter(|e| e.hook == HookId::PageFault && e.tid == tid.0)
            .count();
        assert!(pf >= 4, "expected page-fault markers, got {pf}");
        // Burst inflated: ≥4ms per wakeup.
        let t = r.kernel.thread_cpu_time(tid);
        assert!(
            t >= SimDur::from_millis(4 * pf as u64 - 4),
            "cpu time {t} for {pf} fires"
        );
    }
}
