//! Overlap analysis (Figure 1).
//!
//! The paper's Figure 1 contrasts two schedulings of the same 8-way
//! parallel application: with random interference the periods where *all*
//! CPUs run the application ("green time") shrink far more than the
//! interference total would suggest; with co-scheduled (overlapped)
//! interference the green fraction approaches `1 - interference`.
//!
//! [`green_fraction`] computes that metric from a node's trace: the
//! fraction of an interval during which every app CPU simultaneously runs
//! an application thread.

use pa_simkit::{SimDur, SimTime};
use pa_trace::{CpuTimeline, ThreadClass, TraceBuffer};

/// Fraction of `[start, end)` during which all of the node's first
/// `ntasks` CPUs were simultaneously running App-class threads.
pub fn green_fraction(trace: &TraceBuffer, ntasks: u8, start: SimTime, end: SimTime) -> f64 {
    assert!(end > start, "empty interval");
    let timeline = CpuTimeline::build(trace, end);
    // Boundary sweep: +1 when a task CPU starts running App, -1 when it
    // stops. Green when the counter equals ntasks.
    let mut edges: Vec<(SimTime, i32)> = Vec::new();
    for seg in timeline.segments() {
        if seg.cpu >= ntasks {
            continue;
        }
        if trace.thread_class(seg.tid) != ThreadClass::App {
            continue;
        }
        let lo = seg.start.max(start);
        let hi = seg.end.min(end);
        if hi > lo {
            edges.push((lo, 1));
            edges.push((hi, -1));
        }
    }
    edges.sort_by_key(|&(t, delta)| (t, -delta));
    let mut level = 0i32;
    let mut green = SimDur::ZERO;
    let mut green_since: Option<SimTime> = None;
    for (t, delta) in edges {
        let was_green = level == i32::from(ntasks);
        level += delta;
        let is_green = level == i32::from(ntasks);
        match (was_green, is_green) {
            (false, true) => green_since = Some(t),
            (true, false) => {
                if let Some(s) = green_since.take() {
                    green += t - s;
                }
            }
            _ => {}
        }
    }
    if let Some(s) = green_since {
        green += end - s;
    }
    green.nanos() as f64 / (end - start).nanos() as f64
}

/// Fraction of `[start, end)` during which at least one of the first
/// `ntasks` CPUs was running interference (the "red" share of Figure 1).
pub fn red_touch_fraction(trace: &TraceBuffer, ntasks: u8, start: SimTime, end: SimTime) -> f64 {
    assert!(end > start, "empty interval");
    let timeline = CpuTimeline::build(trace, end);
    let mut edges: Vec<(SimTime, i32)> = Vec::new();
    for seg in timeline.segments() {
        if seg.cpu >= ntasks {
            continue;
        }
        if !trace.thread_class(seg.tid).is_interference() {
            continue;
        }
        let lo = seg.start.max(start);
        let hi = seg.end.min(end);
        if hi > lo {
            edges.push((lo, 1));
            edges.push((hi, -1));
        }
    }
    edges.sort_by_key(|&(t, delta)| (t, -delta));
    let mut level = 0i32;
    let mut red = SimDur::ZERO;
    let mut red_since: Option<SimTime> = None;
    for (t, delta) in edges {
        let was = level > 0;
        level += delta;
        let is = level > 0;
        match (was, is) {
            (false, true) => red_since = Some(t),
            (true, false) => {
                if let Some(s) = red_since.take() {
                    red += t - s;
                }
            }
            _ => {}
        }
    }
    if let Some(s) = red_since {
        red += end - s;
    }
    red.nanos() as f64 / (end - start).nanos() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_trace::{HookId, HookMask};

    fn mk_trace() -> TraceBuffer {
        let mut b = TraceBuffer::new(256);
        b.set_mask(HookMask::ALL);
        b.register_thread(1, "app0", ThreadClass::App);
        b.register_thread(2, "app1", ThreadClass::App);
        b.register_thread(3, "syncd", ThreadClass::Daemon);
        b
    }

    fn d(b: &mut TraceBuffer, us: u64, cpu: u8, tid: u32) {
        b.emit(SimTime::from_micros(us), cpu, HookId::Dispatch, tid, 0);
    }
    fn u(b: &mut TraceBuffer, us: u64, cpu: u8, tid: u32) {
        b.emit(SimTime::from_micros(us), cpu, HookId::Undispatch, tid, 0);
    }

    #[test]
    fn fully_green_when_apps_run_everywhere() {
        let mut b = mk_trace();
        d(&mut b, 0, 0, 1);
        d(&mut b, 0, 1, 2);
        u(&mut b, 100, 0, 1);
        u(&mut b, 100, 1, 2);
        let g = green_fraction(&b, 2, SimTime::ZERO, SimTime::from_micros(100));
        assert!((g - 1.0).abs() < 1e-9);
        assert_eq!(
            red_touch_fraction(&b, 2, SimTime::ZERO, SimTime::from_micros(100)),
            0.0
        );
    }

    #[test]
    fn interference_on_one_cpu_kills_green() {
        // App on CPU0 the whole time; CPU1: app except daemon in [40,60).
        let mut b = mk_trace();
        d(&mut b, 0, 0, 1);
        d(&mut b, 0, 1, 2);
        u(&mut b, 40, 1, 2);
        d(&mut b, 40, 1, 3);
        u(&mut b, 60, 1, 3);
        d(&mut b, 60, 1, 2);
        u(&mut b, 100, 0, 1);
        u(&mut b, 100, 1, 2);
        let g = green_fraction(&b, 2, SimTime::ZERO, SimTime::from_micros(100));
        assert!((g - 0.8).abs() < 1e-9, "green {g}");
        let r = red_touch_fraction(&b, 2, SimTime::ZERO, SimTime::from_micros(100));
        assert!((r - 0.2).abs() < 1e-9, "red {r}");
    }

    #[test]
    fn overlapped_interference_preserves_more_green() {
        // Same 20µs of daemon time per CPU; overlapped -> 80% green,
        // staggered -> 60% green. This IS Figure 1.
        let overlapped = {
            let mut b = mk_trace();
            d(&mut b, 0, 0, 1);
            d(&mut b, 0, 1, 2);
            u(&mut b, 40, 0, 1);
            u(&mut b, 40, 1, 2);
            d(&mut b, 40, 0, 3);
            d(&mut b, 40, 1, 3);
            u(&mut b, 60, 0, 3);
            u(&mut b, 60, 1, 3);
            d(&mut b, 60, 0, 1);
            d(&mut b, 60, 1, 2);
            u(&mut b, 100, 0, 1);
            u(&mut b, 100, 1, 2);
            green_fraction(&b, 2, SimTime::ZERO, SimTime::from_micros(100))
        };
        let staggered = {
            let mut b = mk_trace();
            d(&mut b, 0, 0, 1);
            d(&mut b, 0, 1, 2);
            u(&mut b, 20, 0, 1);
            d(&mut b, 20, 0, 3);
            u(&mut b, 40, 0, 3);
            d(&mut b, 40, 0, 1);
            u(&mut b, 60, 1, 2);
            d(&mut b, 60, 1, 3);
            u(&mut b, 80, 1, 3);
            d(&mut b, 80, 1, 2);
            u(&mut b, 100, 0, 1);
            u(&mut b, 100, 1, 2);
            green_fraction(&b, 2, SimTime::ZERO, SimTime::from_micros(100))
        };
        assert!((overlapped - 0.8).abs() < 1e-9, "overlapped {overlapped}");
        assert!((staggered - 0.6).abs() < 1e-9, "staggered {staggered}");
        assert!(overlapped > staggered);
    }

    #[test]
    fn partial_interval_clipping() {
        let mut b = mk_trace();
        d(&mut b, 0, 0, 1);
        d(&mut b, 50, 1, 2);
        u(&mut b, 100, 0, 1);
        u(&mut b, 100, 1, 2);
        // Only [50,100) is green.
        let g = green_fraction(&b, 2, SimTime::ZERO, SimTime::from_micros(100));
        assert!((g - 0.5).abs() < 1e-9);
    }
}
