//! Drivers for the paper's illustrative figures.
//!
//! * **Figure 1** — the overlap argument: the same amount of system
//!   activity costs the parallel application far less when it is
//!   coordinated (overlapped) than when it lands at random times.
//! * **Figure 2** — the Bulk-Synchronous SPMD cycle: compute /
//!   communicate phase structure per rank.

use crate::ale3d::{Ale3d, Ale3dSpec};
use crate::overlap::{green_fraction, red_touch_fraction};
use pa_core::{CoschedSetup, Experiment};
use pa_kernel::SchedOptions;
use pa_mpi::{MpiOp, OpKind, OpList, RankWorkload};
use pa_noise::NoiseProfile;
use pa_simkit::{SeedSpace, SimDur, SimTime};
use serde::{Deserialize, Serialize};

/// Figure-1 measurement: green/red fractions under random vs coordinated
/// scheduling of the same interference budget.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig1Result {
    /// All-CPUs-running-the-app fraction, vanilla kernel.
    pub green_vanilla: f64,
    /// Same, prototype kernel (coordinated interference).
    pub green_prototype: f64,
    /// Any-CPU-running-interference fraction, vanilla.
    pub red_vanilla: f64,
    /// Same, prototype.
    pub red_prototype: f64,
}

/// Run the Figure-1 experiment: one 8-way node (as drawn in the paper),
/// amplified noise, an Allreduce-heavy job, identical seeds; vanilla vs
/// prototype kernel (big ticks batch and the global queue spreads the
/// daemons, overlapping their execution).
pub fn fig1(seed: u64, quick: bool) -> Fig1Result {
    let nodes = 2;
    let tpn = 8u32;
    let calls = if quick { 600 } else { 2500 };
    // A uniform daemon population (like the figure's equal-sized red
    // boxes): eight 2 ms / 100 ms daemons per node at the observed
    // priority 56. Identical total red budget in both runs; only the
    // kernel's coordination differs.
    let noise = NoiseProfile {
        daemons: (0..8)
            .map(|i| pa_noise::DaemonSpec {
                name: format!("noised{i}"),
                prio: pa_kernel::Prio::DAEMON_OBSERVED,
                period: pa_simkit::SimDur::from_millis(100),
                burst_median: pa_simkit::SimDur::from_millis(2),
                burst_sigma: 0.0,
                page_fault_prob: 0.0,
                page_fault_extra: pa_simkit::SimDur::ZERO,
            })
            .collect(),
        interrupts: Vec::new(),
        cron: None,
        gpfs_prio: None,
    };
    let run = |kernel: SchedOptions, cosched: bool| -> (f64, f64) {
        let mut make = |_rank: u32| -> Box<dyn RankWorkload> {
            Box::new(OpList::new(
                std::iter::repeat_n(MpiOp::Allreduce { bytes: 8 }, calls).collect(),
            ))
        };
        let mut e = Experiment::new(nodes, tpn)
            .with_cpus_per_node(8)
            .with_kernel(kernel)
            .with_noise(noise.clone())
            .with_progress(None)
            .with_seed(seed)
            .with_trace_node(0);
        if cosched {
            e = e.with_cosched(CoschedSetup::default());
        }
        let out = e.run(&mut make);
        assert!(out.completed, "fig1 run did not finish");
        let end = SimTime::ZERO + out.wall;
        let trace = out.sim.kernel(0).trace();
        (
            green_fraction(trace, tpn as u8, SimTime::ZERO, end),
            red_touch_fraction(trace, tpn as u8, SimTime::ZERO, end),
        )
    };
    let (gv, rv) = run(SchedOptions::vanilla(), false);
    let (gp, rp) = run(SchedOptions::prototype(), true);
    Fig1Result {
        green_vanilla: gv,
        green_prototype: gp,
        red_vanilla: rv,
        red_prototype: rp,
    }
}

/// One rank's phase breakdown over the observed timesteps (Figure 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BspRankRow {
    /// Global rank.
    pub rank: u32,
    /// Total compute-phase time, ms (wall between communication ops).
    pub compute_ms: f64,
    /// Total halo-exchange time, ms.
    pub exchange_ms: f64,
    /// Total reduction time, ms.
    pub reduce_ms: f64,
}

/// Run a short ALE3D-proxy window and report the per-rank BSP phase
/// structure of node 0 (the Figure-2 picture, as data).
pub fn fig2(seed: u64) -> Vec<BspRankRow> {
    let seeds = SeedSpace::new(seed);
    let spec = Ale3dSpec {
        timesteps: 4,
        compute_per_step: SimDur::from_millis(5),
        initial_read_bytes: 1 << 18,
        restart_bytes: 1 << 18,
        plot_every: 0,
        ..Ale3dSpec::default()
    };
    let mut make = |rank: u32| -> Box<dyn RankWorkload> {
        Box::new(Ale3d::new(
            spec,
            seeds.stream_at("wl/ale3d", u64::from(rank), 0),
        ))
    };
    let out = Experiment::new(2, 8)
        .with_cpus_per_node(8)
        .with_noise(NoiseProfile::dedicated())
        .with_seed(seed)
        .with_watch_node(0)
        .run(&mut make);
    assert!(out.completed, "fig2 run did not finish");
    let recorder = out.job.recorder.lock().unwrap();
    let wall_ms = out.wall.as_millis_f64();
    let ranks = out.job.layout.read().unwrap().ranks_on(0);
    ranks
        .iter()
        .map(|&rank| {
            let samples = recorder.samples(rank).expect("watched");
            let mut exchange_ms = 0.0;
            let mut reduce_ms = 0.0;
            for s in &samples {
                match s.kind {
                    OpKind::Exchange => exchange_ms += s.dur().as_millis_f64(),
                    OpKind::Allreduce => reduce_ms += s.dur().as_millis_f64(),
                    _ => {}
                }
            }
            BspRankRow {
                rank,
                compute_ms: (wall_ms - exchange_ms - reduce_ms).max(0.0),
                exchange_ms,
                reduce_ms,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_prototype_has_more_green() {
        let r = fig1(42, true);
        assert!(r.green_vanilla > 0.0 && r.green_vanilla < 1.0);
        assert!(
            r.green_prototype > r.green_vanilla,
            "coordination should increase all-CPU availability: {:.3} vs {:.3}",
            r.green_prototype,
            r.green_vanilla
        );
    }

    #[test]
    fn fig2_phases_are_nonzero() {
        let rows = fig2(42);
        assert_eq!(rows.len(), 8);
        for r in &rows {
            assert!(r.reduce_ms > 0.0, "rank {} shows no reductions", r.rank);
            assert!(r.exchange_ms > 0.0, "rank {} shows no halo", r.rank);
            assert!(r.compute_ms > 0.0);
        }
    }
}
