//! The multi-job batch-scheduling sweep: one `pa-jobs` scenario run under
//! several placement policies and compared on makespan, queue wait, and
//! utilization.
//!
//! The scenario builder produces a deliberately mixed stream — wide and
//! narrow rigid jobs plus at least one malleable job whose fair share
//! first grows (an empty machine) and later shrinks (rigid arrivals) —
//! so a single sweep exercises every code path the batch layer adds:
//! head-of-line blocking under FCFS, shadow-respecting EASY backfill,
//! pressure-aware packing, and equipartition resize in both directions.

use pa_campaign::{ExecutorConfig, PointResult, PointSpec};
use pa_jobs::{JobRequest, JobsEngine, JobsOutcome, MultiJobSpec, PolicyKind};
use pa_kernel::SchedOptions;
use pa_noise::NoiseProfile;
use pa_simkit::SimDur;
use serde::Serialize;

/// Scenario scale for the multi-job sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchScale {
    /// 4 nodes, 6 jobs; seconds of wall clock.
    Quick,
    /// 8 nodes, 10 jobs; the default.
    Standard,
    /// 16 nodes, 18 jobs.
    Full,
}

/// Build the standard mixed scenario at `scale`.
///
/// Submission times are spread so the queue is never trivially empty,
/// and the malleable job arrives first: it launches wide on the idle
/// machine (grow) and is squeezed once the rigid stream lands (shrink).
pub fn batch_scenario(scale: BatchScale) -> MultiJobSpec {
    let (nodes, njobs) = match scale {
        BatchScale::Quick => (4u32, 6usize),
        BatchScale::Standard => (8, 10),
        BatchScale::Full => (16, 18),
    };
    let mut jobs = Vec::new();
    // The malleable lead job: prefers half the machine, tolerates 1..all.
    // Enough chunks to outlive the rigid stream, so its fair share both
    // shrinks (rigid arrivals) and grows back (the stream drains).
    jobs.push(JobRequest {
        iters_per_chunk: 4,
        work_per_iter: SimDur::from_micros(300),
        estimate: SimDur::from_millis(30),
        ..JobRequest::malleable("stretch", SimDur::ZERO, nodes / 2, 1, nodes, 14)
    });
    // A rigid stream with alternating widths: wide jobs block FCFS heads,
    // short narrow jobs give backfill something to slip through.
    for i in 1..njobs {
        let wide = i % 3 == 0;
        let width = if wide {
            nodes / 2 + 1
        } else {
            1 + (i as u32 % 2)
        };
        jobs.push(JobRequest {
            iters_per_chunk: if wide { 8 } else { 4 },
            work_per_iter: SimDur::from_micros(if wide { 400 } else { 200 }),
            estimate: SimDur::from_millis(if wide { 10 } else { 4 }),
            ..JobRequest::rigid(format!("r{i}"), SimDur::from_millis(2 * i as u64), width)
        });
    }
    MultiJobSpec {
        nodes,
        cpus_per_node: 2,
        quantum: SimDur::from_millis(2),
        gang_period: SimDur::from_millis(1),
        jobs,
        ..MultiJobSpec::default()
    }
}

/// The campaign point for one (scenario, policy) pair.
pub fn batch_point(
    scenario: &MultiJobSpec,
    policy: PolicyKind,
    seed: u64,
    link_bandwidth: Option<f64>,
    noise: &NoiseProfile,
) -> PointSpec<MultiJobSpec> {
    PointSpec {
        family: "multi_job".into(),
        nodes: scenario.nodes,
        // Widths vary per job; the spec-level fields describe the machine.
        tasks_per_node: 0,
        cpus_per_node: scenario.cpus_per_node as u8,
        kernel: if scenario.gang {
            SchedOptions::prototype()
        } else {
            SchedOptions::vanilla()
        },
        cosched: None,
        noise: noise.clone(),
        mpi: pa_mpi::MpiConfig::default(),
        progress: None,
        workload: scenario.clone(),
        seed,
        horizon: None,
        link_bandwidth,
        policy: Some(policy.name().to_string()),
        dispatcher: None,
    }
}

/// Run one multi-job point: the campaign runner for the `multi_job`
/// family. Pure in the spec, bit-identical at any `--sim-threads`.
pub fn multi_job_runner(spec: &PointSpec<MultiJobSpec>) -> PointResult {
    let outcome = run_batch_point(spec);
    point_result(&outcome)
}

/// Run the engine for one point and keep the full outcome (metrics and
/// spans included) — what the binary uses for `--metrics-out`.
pub fn run_batch_point(spec: &PointSpec<MultiJobSpec>) -> JobsOutcome {
    let policy = spec
        .policy
        .as_deref()
        .and_then(|p| PolicyKind::parse(p).ok())
        .expect("multi_job points carry a valid policy name");
    JobsEngine::new(spec.workload.clone(), policy)
        .with_seed(spec.seed)
        .with_sim_threads(pa_core::default_sim_threads())
        .with_link_bandwidth(spec.link_bandwidth)
        .with_noise(spec.noise.clone())
        .run()
}

/// Fold a [`JobsOutcome`] into the cacheable scalar form.
fn point_result(out: &JobsOutcome) -> PointResult {
    let mut extra = std::collections::BTreeMap::new();
    extra.insert("jobs.makespan_us".into(), out.makespan.micros() as f64);
    extra.insert("jobs.mean_queue_wait_us".into(), out.mean_queue_wait_us());
    extra.insert("jobs.utilization".into(), out.utilization);
    extra.insert(
        "jobs.reconfigurations".into(),
        f64::from(out.reconfigurations),
    );
    let grows: u32 = out.jobs.iter().map(|j| j.grows).sum();
    let shrinks: u32 = out.jobs.iter().map(|j| j.shrinks).sum();
    extra.insert("jobs.grows".into(), f64::from(grows));
    extra.insert("jobs.shrinks".into(), f64::from(shrinks));
    // Wait-state category sums over all jobs' rank threads, matching
    // the scaling points' `blame.*` extras so campaign blame totals
    // merge uniformly across figure and batch sweeps.
    let mut cats = pa_blame::Categories::default();
    let mut wall = 0u64;
    for jb in &out.blame {
        cats.add(&jb.cats);
        wall += jb.wall_ns;
    }
    extra.insert("blame.compute_ns".into(), cats.compute_ns as f64);
    extra.insert("blame.coll_wait_ns".into(), cats.coll_wait_ns as f64);
    extra.insert("blame.runq_wait_ns".into(), cats.runq_wait_ns as f64);
    extra.insert("blame.noise_ns".into(), cats.noise_ns as f64);
    extra.insert("blame.io_wait_ns".into(), cats.io_wait_ns as f64);
    extra.insert("blame.overhead_ns".into(), cats.overhead_ns as f64);
    extra.insert("blame.wall_ns".into(), wall as f64);
    PointResult {
        mean_allreduce_us: 0.0,
        wall_s: out.makespan.as_secs_f64(),
        completed: out.completed,
        events: out.events,
        extra,
    }
}

/// One row of the policy-comparison table.
#[derive(Debug, Clone, Serialize)]
pub struct PolicyRow {
    /// Policy name.
    pub policy: String,
    /// Time to drain the whole job stream, ms.
    pub makespan_ms: f64,
    /// Mean queue wait per job, ms.
    pub mean_queue_wait_ms: f64,
    /// Occupied node-time over capacity, percent.
    pub utilization_pct: f64,
    /// Malleable width changes (grows + shrinks).
    pub reconfigurations: u32,
    /// Did every job finish?
    pub completed: bool,
}

/// Compare `policies` on one scenario through the campaign executor
/// (cached, parallel over `--jobs`, deterministic).
pub fn policy_comparison(
    scenario: &MultiJobSpec,
    policies: &[PolicyKind],
    seed: u64,
    link_bandwidth: Option<f64>,
    noise: &NoiseProfile,
    exec: &ExecutorConfig,
) -> Vec<PolicyRow> {
    let specs: Vec<PointSpec<MultiJobSpec>> = policies
        .iter()
        .map(|&p| batch_point(scenario, p, seed, link_bandwidth, noise))
        .collect();
    let outcome = pa_campaign::run_campaign(&specs, exec, multi_job_runner);
    policies
        .iter()
        .zip(&outcome.results)
        .map(|(p, r)| PolicyRow {
            policy: p.name().to_string(),
            makespan_ms: r.extra["jobs.makespan_us"] / 1_000.0,
            mean_queue_wait_ms: r.extra["jobs.mean_queue_wait_us"] / 1_000.0,
            utilization_pct: r.extra["jobs.utilization"] * 100.0,
            reconfigurations: r.extra["jobs.reconfigurations"] as u32,
            completed: r.completed,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_scenario_validates_and_has_a_malleable_job() {
        let s = batch_scenario(BatchScale::Quick);
        s.validate().expect("builder output must validate");
        assert!(s.jobs.iter().any(|j| j.is_malleable()));
        assert!(s.jobs.len() >= 4);
    }

    #[test]
    fn standard_scenario_mixes_wide_and_narrow() {
        let s = batch_scenario(BatchScale::Standard);
        s.validate().unwrap();
        let widths: Vec<u32> = s.jobs.iter().map(|j| j.nodes).collect();
        assert!(widths.iter().any(|&w| w > s.nodes / 2));
        assert!(widths.contains(&1));
    }

    #[test]
    fn quick_scenario_grows_and_shrinks_under_equipartition() {
        let spec = batch_point(
            &batch_scenario(BatchScale::Quick),
            PolicyKind::EquiPartition,
            42,
            None,
            &NoiseProfile::silent(),
        );
        let r = multi_job_runner(&spec);
        assert!(r.completed);
        assert!(
            r.extra["jobs.grows"] >= 1.0 && r.extra["jobs.shrinks"] >= 1.0,
            "scenario must exercise both directions: {:?}",
            r.extra
        );
    }

    #[test]
    fn policies_rank_sanely_on_the_quick_scenario() {
        let scenario = batch_scenario(BatchScale::Quick);
        let noise = NoiseProfile::silent();
        let rows: Vec<(PolicyKind, PointResult)> = PolicyKind::ALL
            .iter()
            .map(|&p| {
                let spec = batch_point(&scenario, p, 42, None, &noise);
                (p, multi_job_runner(&spec))
            })
            .collect();
        for (p, r) in &rows {
            assert!(r.completed, "{} must drain the queue", p.name());
        }
        let wait = |k: PolicyKind| {
            rows.iter()
                .find(|(p, _)| *p == k)
                .map(|(_, r)| r.extra["jobs.mean_queue_wait_us"])
                .unwrap()
        };
        // Backfill must not wait longer than strict FCFS on a stream
        // where narrow jobs can slip past blocked wide heads.
        assert!(
            wait(PolicyKind::Backfill) <= wait(PolicyKind::FcfsFirstFit) + 1e-9,
            "backfill {} vs fcfs {}",
            wait(PolicyKind::Backfill),
            wait(PolicyKind::FcfsFirstFit)
        );
    }
}
