//! The `aggregate_trace` benchmark (§5.1).
//!
//! *"In order to isolate the scaling problem a synthetic benchmark,
//! aggregate_trace.c, was created. ... three loops are done where the
//! timings of 4096 MPI_Allreduce calls were measured. In addition to the
//! overall timings, a call to AIX trace was done before and after every
//! 64th call to MPI_Allreduce."*
//!
//! The port keeps the structure: a configurable number of Allreduce calls
//! with a small jittered compute between them (the "sorts of tasks
//! programs may perform in the section of code where they use
//! MPI_Allreduce"), and an application trace marker bracketing every
//! `marker_interval`-th call.

use pa_mpi::{MpiOp, RankWorkload};
use pa_simkit::{RngState, SimDur, SimRng};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Configuration of the aggregate benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AggregateSpec {
    /// Allreduce calls per rank (the paper's loops total 3 × 4096; sweep
    /// points use fewer for tractable simulation — same structure).
    pub allreduces: u32,
    /// Payload per Allreduce message.
    pub bytes: u32,
    /// A trace marker is written every this many calls (paper: 64).
    pub marker_interval: u32,
    /// Compute between consecutive Allreduces.
    pub inter_compute: SimDur,
    /// Multiplicative jitter on the inter-call compute.
    pub compute_jitter: f64,
}

impl Default for AggregateSpec {
    fn default() -> Self {
        AggregateSpec {
            allreduces: 4096,
            bytes: 8,
            marker_interval: 64,
            inter_compute: SimDur::from_micros(25),
            compute_jitter: 0.3,
        }
    }
}

impl AggregateSpec {
    /// Same benchmark with a different call count (sweep points).
    pub fn with_calls(mut self, calls: u32) -> AggregateSpec {
        self.allreduces = calls;
        self
    }
}

/// Per-rank state machine for the aggregate benchmark.
#[derive(Debug)]
pub struct AggregateTrace {
    spec: AggregateSpec,
    rng: SimRng,
    issued: u32,
    /// Pending micro-sequence for the current iteration.
    pending: Vec<MpiOp>,
}

impl AggregateTrace {
    /// New instance with a per-rank RNG stream.
    pub fn new(spec: AggregateSpec, rng: SimRng) -> AggregateTrace {
        AggregateTrace {
            spec,
            rng,
            issued: 0,
            pending: Vec::new(),
        }
    }
}

impl RankWorkload for AggregateTrace {
    fn next_op(&mut self, _rank: u32, _nranks: u32) -> MpiOp {
        if let Some(op) = self.pending.pop() {
            return op;
        }
        if self.issued >= self.spec.allreduces {
            return MpiOp::Done;
        }
        let i = self.issued;
        self.issued += 1;
        // Emitted in reverse (pending is a stack).
        self.pending.push(MpiOp::Allreduce {
            bytes: self.spec.bytes,
        });
        if !self.spec.inter_compute.is_zero() {
            self.pending.push(MpiOp::Compute(
                self.rng
                    .jitter(self.spec.inter_compute, self.spec.compute_jitter),
            ));
        }
        if self.spec.marker_interval > 0 && i % self.spec.marker_interval == 0 {
            return MpiOp::Mark(u64::from(i));
        }
        self.pending.pop().expect("just pushed")
    }

    fn snapshot_state(&self) -> Value {
        (self.issued, self.pending.clone(), self.rng.save_state()).to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        let (issued, pending, rng): (u32, Vec<MpiOp>, RngState) = Deserialize::from_value(state)?;
        self.issued = issued;
        self.pending = pending;
        self.rng.load_state(&rng).map_err(serde::Error)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut AggregateTrace) -> Vec<MpiOp> {
        let mut ops = Vec::new();
        loop {
            let op = w.next_op(0, 4);
            if op == MpiOp::Done {
                break;
            }
            ops.push(op);
        }
        ops
    }

    #[test]
    fn emits_requested_allreduce_count() {
        let spec = AggregateSpec::default().with_calls(130);
        let mut w = AggregateTrace::new(spec, SimRng::from_seed(1));
        let ops = drain(&mut w);
        let reduces = ops
            .iter()
            .filter(|o| matches!(o, MpiOp::Allreduce { .. }))
            .count();
        assert_eq!(reduces, 130);
    }

    #[test]
    fn markers_every_interval() {
        let spec = AggregateSpec {
            allreduces: 200,
            marker_interval: 64,
            ..AggregateSpec::default()
        };
        let mut w = AggregateTrace::new(spec, SimRng::from_seed(1));
        let ops = drain(&mut w);
        let marks: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o {
                MpiOp::Mark(a) => Some(*a),
                _ => None,
            })
            .collect();
        assert_eq!(marks, vec![0, 64, 128, 192]);
    }

    #[test]
    fn compute_precedes_each_allreduce() {
        let spec = AggregateSpec {
            allreduces: 10,
            marker_interval: 0,
            ..AggregateSpec::default()
        };
        let mut w = AggregateTrace::new(spec, SimRng::from_seed(1));
        let ops = drain(&mut w);
        assert_eq!(ops.len(), 20);
        for pair in ops.chunks(2) {
            assert!(matches!(pair[0], MpiOp::Compute(_)));
            assert!(matches!(pair[1], MpiOp::Allreduce { .. }));
        }
    }

    #[test]
    fn zero_compute_config_skips_compute() {
        let spec = AggregateSpec {
            allreduces: 5,
            inter_compute: SimDur::ZERO,
            marker_interval: 0,
            ..AggregateSpec::default()
        };
        let mut w = AggregateTrace::new(spec, SimRng::from_seed(1));
        let ops = drain(&mut w);
        assert!(ops.iter().all(|o| matches!(o, MpiOp::Allreduce { .. })));
    }

    #[test]
    fn done_is_sticky() {
        let spec = AggregateSpec::default().with_calls(1);
        let mut w = AggregateTrace::new(spec, SimRng::from_seed(1));
        let _ = drain(&mut w);
        assert_eq!(w.next_op(0, 4), MpiOp::Done);
        assert_eq!(w.next_op(0, 4), MpiOp::Done);
    }
}
