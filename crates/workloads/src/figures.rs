//! Drivers for the paper's scaling figures (3, 5, 6) and the outlier
//! study (Figure 4).
//!
//! Each driver builds the corresponding §5 configuration, runs it over
//! multiple seeds ("each plotted datum is the average of at least 3
//! runs"), and returns structured results the `pa-bench` binaries print
//! as paper-style rows. Simulated call counts are smaller than the
//! paper's 3×4096 loops (documented time compression — the statistic is
//! the mean/variance of per-call times, which converges far earlier).

use crate::aggregate::{AggregateSpec, AggregateTrace};
use pa_campaign::{
    run_campaign, run_campaign_resumable, CampaignOutcome, CheckpointCtx, ExecutorConfig,
    PointResult, PointSpec,
};
use pa_core::{CoschedSetup, Experiment, RunOutput};
use pa_kernel::SchedOptions;
use pa_mpi::{OpKind, ProgressSpec, RankWorkload};
use pa_noise::NoiseProfile;
use pa_simkit::{linfit, LineFit, SeedSpace, SimDur, SimTime, Summary};
use serde::{Deserialize, Serialize};

/// Configuration of a Figure-3/5-style scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingConfig {
    /// Cluster sizes to sample (nodes).
    pub node_counts: Vec<u32>,
    /// Tasks per node.
    pub tasks_per_node: u32,
    /// CPUs per node.
    pub cpus_per_node: u8,
    /// Allreduce calls per run.
    pub allreduces: u32,
    /// Seeds ("at least 3 runs" per datum).
    pub seeds: Vec<u64>,
    /// Kernel options.
    pub kernel: SchedOptions,
    /// Co-scheduler deployment.
    pub cosched: Option<CoschedSetup>,
    /// Noise profile.
    pub noise: NoiseProfile,
    /// MPI timer threads.
    pub progress: Option<ProgressSpec>,
    /// Benchmark shape.
    pub agg: AggregateSpec,
    /// When set, the loop runs for this much *simulated time* instead of
    /// a fixed call count (the call count becomes effectively unbounded
    /// and the run is cut at the horizon). Full-mode sweeps use this so
    /// every point spans several co-scheduler windows, like the paper's
    /// minutes-long loops.
    pub target_sim_time: Option<SimDur>,
    /// Per-node link capacity, bytes/sec; `None` is the unlimited legacy
    /// fabric (no switch contention).
    pub link_bandwidth: Option<f64>,
}

impl ScalingConfig {
    fn base(quick: bool) -> ScalingConfig {
        let (node_counts, allreduces, seeds, target) = if quick {
            (vec![2, 4, 8], 160, vec![42, 43], None)
        } else {
            (
                vec![4, 8, 16, 32, 44, 59, 76, 100, 121],
                512,
                vec![42, 43, 44],
                Some(SimDur::from_millis(3_000)),
            )
        };
        ScalingConfig {
            node_counts,
            tasks_per_node: 16,
            cpus_per_node: 16,
            allreduces,
            seeds,
            kernel: SchedOptions::vanilla(),
            cosched: None,
            // Scaling points exclude the 15-minute cron job (it is the
            // subject of Figure 4); daemons and timer threads remain.
            noise: NoiseProfile::production().without_cron(),
            progress: Some(ProgressSpec::default()),
            agg: AggregateSpec::default(),
            target_sim_time: target,
            link_bandwidth: None,
        }
    }

    /// Figure 3: 16 tasks/node on the standard kernel.
    pub fn fig3(quick: bool) -> ScalingConfig {
        ScalingConfig::base(quick)
    }

    /// Figure 5: 16 tasks/node on the prototype kernel with the
    /// co-scheduler at the study's settings.
    ///
    /// The priority window is compressed from 5 s to 250 ms (duty cycle
    /// unchanged) so a tractable simulated loop spans several favored and
    /// unfavored windows, like the paper's minutes-long loops did — the
    /// same time compression applied to cron in Figure 4. The big-tick
    /// period divides the window, and windows still end on clock-aligned
    /// boundaries, so all of §4's alignment invariants hold.
    pub fn fig5(quick: bool) -> ScalingConfig {
        let mut setup = CoschedSetup::default();
        // Compressed window: 1.25 s at 80% duty instead of 5 s at 90%.
        // Both edges (1.0 s and 1.25 s) are multiples of the 250 ms big
        // tick, so the callout-quantized co-scheduler still observes both
        // windows; the full-mode 3 s loops then span several periods, as
        // the paper's minutes-long loops spanned several 5 s periods.
        setup.params.period = SimDur::from_millis(1_250);
        setup.params.duty = 0.8;
        ScalingConfig {
            kernel: SchedOptions::prototype(),
            cosched: Some(setup),
            ..ScalingConfig::base(quick)
        }
    }

    /// The 15-tasks-per-node baseline configuration (§5.3).
    pub fn vanilla_15(quick: bool) -> ScalingConfig {
        ScalingConfig {
            tasks_per_node: 15,
            ..ScalingConfig::base(quick)
        }
    }

    /// The campaign point for one (size, seed) datum of this sweep.
    pub fn point(&self, nodes: u32, seed: u64) -> PointSpec<AggregateSpec> {
        let calls = if self.target_sim_time.is_some() {
            u32::MAX // cut by the horizon, not the loop bound
        } else {
            self.allreduces
        };
        PointSpec {
            family: "aggregate".into(),
            nodes,
            tasks_per_node: self.tasks_per_node,
            cpus_per_node: self.cpus_per_node,
            kernel: self.kernel,
            cosched: self.cosched,
            noise: self.noise.clone(),
            mpi: pa_mpi::MpiConfig::default(),
            progress: self.progress,
            workload: self.agg.with_calls(calls),
            seed,
            horizon: self.target_sim_time,
            link_bandwidth: self.link_bandwidth,
            policy: None,
            // Mirror the kernel block into the explicit canonical key so
            // per-dispatcher sweeps are visible in the spec itself (None
            // keeps pre-dispatcher AIX specs' canonical form unchanged).
            dispatcher: match self.kernel.dispatcher {
                pa_kernel::DispatcherKind::Aix => None,
                k => Some(k.as_str().to_string()),
            },
        }
    }

    /// Every point of the sweep: seeds vary fastest, sizes slowest, so
    /// `points()[g * seeds.len() .. (g + 1) * seeds.len()]` is size
    /// group `g` — the layout [`collect_scale_points`] consumes.
    pub fn points(&self) -> Vec<PointSpec<AggregateSpec>> {
        self.node_counts
            .iter()
            .flat_map(|&nodes| self.seeds.iter().map(move |&seed| self.point(nodes, seed)))
            .collect()
    }
}

/// One datum of a scaling figure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Processor (task) count.
    pub procs: u32,
    /// Per-seed mean Allreduce time, µs.
    pub seed_means_us: Vec<f64>,
    /// Mean over seeds.
    pub mean_us: f64,
    /// Standard deviation over seeds (run-to-run variability).
    pub std_us: f64,
    /// Fastest seed mean.
    pub min_us: f64,
    /// Slowest seed mean.
    pub max_us: f64,
}

/// Run one sweep serially in-process (no cache, no worker pool). The
/// campaign-backed path with parallelism and caching is
/// [`run_scaling_campaign`]; this wrapper keeps the original panicking
/// contract for library callers and tests.
pub fn run_scaling(cfg: &ScalingConfig, progress: Option<&mut dyn FnMut(&str)>) -> Vec<ScalePoint> {
    let outcome = run_campaign(&cfg.points(), &ExecutorConfig::serial("scaling"), |spec| {
        PointResult::from_run(&run_point(spec))
    });
    if let Err(e) = outcome.ensure_complete("scaling") {
        panic!("sweep run did not finish: {e}");
    }
    let points = collect_scale_points(cfg, &outcome.results);
    if let Some(cb) = progress {
        for p in &points {
            cb(&format!(
                "procs {}: mean {:.1}µs (±{:.1})",
                p.procs, p.mean_us, p.std_us
            ));
        }
    }
    points
}

/// Run one sweep through the campaign executor: cached, parallel, and
/// order-preserving — results are bit-identical at any job count. Errors
/// if a fixed-call-count point was cut by the horizon.
pub fn run_scaling_campaign(
    cfg: &ScalingConfig,
    exec: &ExecutorConfig,
) -> Result<(Vec<ScalePoint>, CampaignOutcome), pa_campaign::TruncatedPoints> {
    let outcome = run_campaign_resumable(&cfg.points(), exec, aggregate_runner_ckpt);
    outcome.ensure_complete(&exec.label)?;
    let points = collect_scale_points(cfg, &outcome.results);
    Ok((points, outcome))
}

/// Fold flat campaign results (seeds fastest, sizes slowest — the
/// [`ScalingConfig::points`] layout) into per-size figure data.
pub fn collect_scale_points(cfg: &ScalingConfig, results: &[PointResult]) -> Vec<ScalePoint> {
    let per_size = cfg.seeds.len();
    assert_eq!(
        results.len(),
        cfg.node_counts.len() * per_size,
        "results do not match the sweep's point layout"
    );
    cfg.node_counts
        .iter()
        .enumerate()
        .map(|(g, &nodes)| {
            let seed_means: Vec<f64> = results[g * per_size..(g + 1) * per_size]
                .iter()
                .map(|r| r.mean_allreduce_us)
                .collect();
            let s = Summary::of(&seed_means);
            ScalePoint {
                procs: nodes * cfg.tasks_per_node,
                seed_means_us: seed_means,
                mean_us: s.mean,
                std_us: s.stddev,
                min_us: s.min,
                max_us: s.max,
            }
        })
        .collect()
}

/// The campaign runner for aggregate-benchmark points: simulate and
/// extract the cacheable scalars.
pub fn aggregate_runner(spec: &PointSpec<AggregateSpec>) -> PointResult {
    PointResult::from_run(&run_point(spec))
}

/// [`aggregate_runner`] for checkpoint-armed campaigns: when the executor
/// supplies a [`CheckpointCtx`], the run writes periodic mid-run
/// checkpoints there — and restores from it first if a previous
/// invocation died mid-point. The restored tail replays bit-identically,
/// so the cached scalars match an uninterrupted run's.
pub fn aggregate_runner_ckpt(
    spec: &PointSpec<AggregateSpec>,
    ckpt: Option<&CheckpointCtx>,
) -> PointResult {
    PointResult::from_run(&run_point_ckpt(spec, ckpt))
}

/// Run one aggregate-benchmark point.
pub fn run_point(spec: &PointSpec<AggregateSpec>) -> RunOutput {
    run_point_ckpt(spec, None)
}

/// [`run_point`] with optional mid-run checkpointing (see
/// [`aggregate_runner_ckpt`]).
pub fn run_point_ckpt(spec: &PointSpec<AggregateSpec>, ckpt: Option<&CheckpointCtx>) -> RunOutput {
    let seeds = SeedSpace::new(spec.seed);
    let agg = spec.workload;
    let mut make = |rank: u32| -> Box<dyn RankWorkload> {
        Box::new(AggregateTrace::new(
            agg,
            seeds.stream_at("wl/agg", u64::from(rank), 0),
        ))
    };
    let mut e = spec.experiment();
    if let Some(cx) = ckpt {
        e = e.with_checkpoint_every(cx.every, &cx.path);
        if cx.path.exists() {
            // A damaged checkpoint is treated like a missing one (the
            // same policy as corrupt cache entries): rerun from scratch.
            match pa_cluster::verify_checkpoint_file(&cx.path) {
                Ok(()) => e = e.with_restore_from(&cx.path),
                Err(err) => {
                    eprintln!(
                        "warning: ignoring damaged checkpoint {}: {err}",
                        cx.path.display()
                    );
                    let _ = std::fs::remove_file(&cx.path);
                }
            }
        }
    }
    e.run(&mut make)
}

/// Run one configuration at one size and seed.
pub fn run_one(cfg: &ScalingConfig, nodes: u32, seed: u64) -> RunOutput {
    run_point(&cfg.point(nodes, seed))
}

/// Run the sweep's *representative* point — largest size, first seed —
/// fresh with full per-rank collective capture, and analyze it into a
/// blame section. Campaigns cache only scalar category sums; the
/// critical path needs per-op samples, so one representative point is
/// re-simulated whenever a blame report is requested. Deterministic:
/// same spec and seed → byte-identical section at any `--sim-threads`.
pub fn run_blame_point(cfg: &ScalingConfig, title: &str) -> pa_blame::RunBlame {
    let nodes = *cfg.node_counts.last().expect("sweep has sizes");
    let seed = *cfg.seeds.first().expect("sweep has seeds");
    let spec = cfg.point(nodes, seed);
    let seeds = SeedSpace::new(spec.seed);
    let agg = spec.workload;
    let mut make = |rank: u32| -> Box<dyn RankWorkload> {
        Box::new(AggregateTrace::new(
            agg,
            seeds.stream_at("wl/agg", u64::from(rank), 0),
        ))
    };
    let out = spec.experiment().with_record_all_ranks().run(&mut make);
    pa_core::blame_of(&out, format!("{title}: {nodes} nodes, seed {seed}"))
}

/// Fold a campaign's cached `blame.*` extras into one category total —
/// the same merge rule metrics use, so cached points contribute without
/// re-running. The sums are exact integer counts carried through f64
/// (lossless far beyond any realistic run length).
pub fn campaign_blame_totals(label: &str, results: &[PointResult]) -> pa_blame::CampaignTotals {
    let mut cats = pa_blame::Categories::default();
    let mut wall = 0u64;
    for r in results {
        let g = |key: &str| r.extra.get(key).copied().unwrap_or(0.0);
        cats.compute_ns += g("blame.compute_ns") as u64;
        cats.coll_wait_ns += g("blame.coll_wait_ns") as u64;
        cats.runq_wait_ns += g("blame.runq_wait_ns") as u64;
        cats.noise_ns += g("blame.noise_ns") as u64;
        cats.io_wait_ns += g("blame.io_wait_ns") as u64;
        cats.overhead_ns += g("blame.overhead_ns") as i64;
        wall += g("blame.wall_ns") as u64;
    }
    pa_blame::CampaignTotals {
        label: label.into(),
        points: results.len() as u64,
        wall_ns: wall,
        cats,
    }
}

/// Figure 6: the fitted lines and their ratio. The paper reports
/// `y_vanilla = 0.70x + 166` and `y_prototype = 0.22x + 210` (µs vs
/// processors), a ~3× slope improvement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Fit over the vanilla (Figure 3) data.
    pub vanilla: LineFit,
    /// Fit over the prototype (Figure 5) data.
    pub prototype: LineFit,
    /// Slope ratio (vanilla / prototype).
    pub slope_ratio: f64,
    /// Point speedups (vanilla mean / prototype mean) at common sizes.
    pub speedups: Vec<(u32, f64)>,
}

/// Fit both series (every seed mean is a point, like the paper's
/// scatter).
pub fn fig6(vanilla: &[ScalePoint], prototype: &[ScalePoint]) -> Fig6Result {
    let pts = |series: &[ScalePoint]| -> Vec<(f64, f64)> {
        series
            .iter()
            .flat_map(|p| {
                p.seed_means_us
                    .iter()
                    .map(move |&m| (f64::from(p.procs), m))
            })
            .collect()
    };
    let vfit = linfit(&pts(vanilla));
    let pfit = linfit(&pts(prototype));
    let speedups = vanilla
        .iter()
        .filter_map(|v| {
            prototype
                .iter()
                .find(|p| p.procs == v.procs)
                .map(|p| (v.procs, v.mean_us / p.mean_us))
        })
        .collect();
    Fig6Result {
        vanilla: vfit,
        prototype: pfit,
        slope_ratio: vfit.slope / pfit.slope,
        speedups,
    }
}

/// Configuration of the Figure-4 outlier study.
#[derive(Debug, Clone)]
pub struct Fig4Config {
    /// Nodes (paper: 59 × 16 = 944 processors).
    pub nodes: u32,
    /// Tasks per node.
    pub tasks_per_node: u32,
    /// Sampled Allreduce calls (paper plots 448).
    pub samples: u32,
    /// Seed.
    pub seed: u64,
    /// The health-check job. The real one runs every 15 minutes; the
    /// benchmark window is sub-minute, so its period is compressed to
    /// guarantee the one firing the paper's sample happened to contain
    /// (time compression documented in DESIGN.md).
    pub cron: pa_noise::CronSpec,
}

impl Fig4Config {
    /// Paper-shaped config (59 nodes, 448 samples; quick mode shrinks the
    /// cluster and the cron burst proportionally).
    ///
    /// The cron period is compressed so that exactly ~one firing lands
    /// inside the 448-call loop, as in the paper's sample; the firing's
    /// total CPU demand is kept comparable to the loop's aggregate time
    /// (600 ms against ~1 s in the paper), which is what makes the single
    /// slowest call dominate the total.
    pub fn paper(quick: bool) -> Fig4Config {
        if quick {
            // 8 nodes: a ~200 ms loop with the job "launched 120 ms
            // before the quarter-hour" — exactly one ~120 ms cron firing
            // lands mid-loop (the period stays the real 15 minutes).
            Fig4Config {
                nodes: 8,
                tasks_per_node: 16,
                samples: 1_000,
                seed: 42,
                cron: pa_noise::CronSpec {
                    phase: SimDur::from_millis(120),
                    components: 12,
                    component_median: SimDur::from_millis(20),
                    component_sigma: 0.45,
                    ..pa_noise::CronSpec::default()
                },
            }
        } else {
            // 59 nodes (944 procs): a ~2 s loop; the real ~600 ms cron
            // job fires once, 700 ms in.
            Fig4Config {
                nodes: 59,
                tasks_per_node: 16,
                samples: 1_500,
                seed: 42,
                cron: pa_noise::CronSpec {
                    phase: SimDur::from_millis(700),
                    ..pa_noise::CronSpec::default()
                },
            }
        }
    }
}

/// A culprit row of the Figure-4 analysis.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CulpritRow {
    /// Thread name.
    pub name: String,
    /// Class (rendered).
    pub class: String,
    /// CPU time inside the slowest call's interval, µs.
    pub us: f64,
}

/// Results of the Figure-4 study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Sorted per-call times of the observed rank, µs.
    pub sorted_us: Vec<f64>,
    /// Mean per-call time.
    pub mean_us: f64,
    /// Median per-call time.
    pub median_us: f64,
    /// Fastest call.
    pub fastest_us: f64,
    /// Slowest call.
    pub slowest_us: f64,
    /// The model prediction the paper compares with (≈350 µs at 944).
    pub model_us: f64,
    /// Share of total time consumed by the slowest call.
    pub slowest_share: f64,
    /// Culprits during the slowest call, from the node's trace.
    pub culprits: Vec<CulpritRow>,
}

/// Run the Figure-4 study.
pub fn fig4(cfg: &Fig4Config) -> Fig4Result {
    fig4_with_output(cfg).0
}

/// Run the Figure-4 study, also returning the raw [`RunOutput`] so the
/// caller can fold it into `pa-obs` artifacts (metrics registry, span
/// timeline of the traced nodes) — see `pa_core::observe`.
pub fn fig4_with_output(cfg: &Fig4Config) -> (Fig4Result, RunOutput) {
    let seeds = SeedSpace::new(cfg.seed);
    let mut noise = NoiseProfile::production();
    noise.cron = Some(cfg.cron.clone());
    let agg = AggregateSpec::default().with_calls(cfg.samples);
    let mut make = |rank: u32| -> Box<dyn RankWorkload> {
        Box::new(AggregateTrace::new(
            agg,
            seeds.stream_at("wl/agg", u64::from(rank), 0),
        ))
    };
    let mut e = Experiment::new(cfg.nodes, cfg.tasks_per_node)
        .with_noise(noise)
        .with_seed(cfg.seed)
        .with_watch_node(0);
    // Trace every node: the §5.3 analysis found the culprit cron "on
    // multiple nodes" — the delay seen by a watched rank is usually
    // caused on someone else's node.
    for node in 0..cfg.nodes {
        e = e.with_trace_node(node);
    }
    e.trace_capacity = 1 << 17;
    let out = e.run(&mut make);
    assert!(out.completed, "fig4 run did not finish");

    let recorder = out.job.recorder.lock().unwrap();
    let samples = recorder
        .samples(0)
        .expect("rank 0 was on the watch list")
        .into_iter()
        .filter(|s| s.kind == OpKind::Allreduce)
        .collect::<Vec<_>>();
    let mut sorted_us: Vec<f64> = samples.iter().map(|s| s.dur().as_micros_f64()).collect();
    sorted_us.sort_by(f64::total_cmp);
    // The figure plots 448 sorted values; longer loops are subsampled
    // evenly after sorting, and — like the paper's figure — the reported
    // statistics describe that 448-point sample.
    let figure_points = 448usize;
    let sorted_for_figure: Vec<f64> = if sorted_us.len() > figure_points {
        (0..figure_points)
            .map(|i| sorted_us[i * (sorted_us.len() - 1) / (figure_points - 1)])
            .collect()
    } else {
        sorted_us.clone()
    };
    let total: f64 = sorted_for_figure.iter().sum();
    let summary = Summary::of(&sorted_for_figure);

    // Attribute the slowest call across the whole machine: sum each
    // interferer's CPU time over all nodes during the interval.
    let worst = samples
        .iter()
        .max_by_key(|s| s.dur())
        .expect("at least one sample");
    let mut merged: std::collections::BTreeMap<(String, String), f64> = Default::default();
    for node in 0..cfg.nodes {
        let report = out.attribute(node, worst.start, worst.end);
        for c in &report.culprits {
            *merged
                .entry((c.name.clone(), format!("{:?}", c.class)))
                .or_default() += c.cpu_time.as_micros_f64();
        }
    }
    let mut culprits: Vec<CulpritRow> = merged
        .into_iter()
        .map(|((name, class), us)| CulpritRow { name, class, us })
        .collect();
    culprits.sort_by(|a, b| b.us.total_cmp(&a.us));
    culprits.truncate(12);
    drop(recorder);

    // The reference ("model") value, analogous to the paper's ~350 µs
    // prediction at 944 procs: 2·⌈log₂⌉ phases, split into cross-node
    // hops (switch latency + overheads) and on-node hops (shared memory
    // + overheads).
    let rounds = |x: u32| {
        if x <= 1 {
            0
        } else {
            32 - (x - 1).leading_zeros()
        }
    };
    let net_phases = 2 * rounds(cfg.nodes);
    let shm_phases = 2 * rounds(cfg.tasks_per_node);
    let model_us = f64::from(net_phases) * 22.0 + f64::from(shm_phases) * 8.0;

    let result = Fig4Result {
        mean_us: summary.mean,
        median_us: summary.median,
        fastest_us: summary.min,
        slowest_us: summary.max,
        model_us,
        slowest_share: if total > 0.0 {
            summary.max / total
        } else {
            0.0
        },
        sorted_us: sorted_for_figure,
        culprits,
    };
    (result, out)
}

/// Shared helper for table drivers: mean Allreduce µs of one config.
pub fn mean_allreduce_of(cfg: &ScalingConfig, nodes: u32) -> f64 {
    let means: Vec<f64> = cfg
        .seeds
        .iter()
        .map(|&s| run_one(cfg, nodes, s).mean_allreduce_us())
        .collect();
    Summary::of(&means).mean
}

/// Timestamp helper for attribution intervals.
pub fn t0() -> SimTime {
    SimTime::ZERO
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_fig3_scales_upward() {
        let mut cfg = ScalingConfig::fig3(true);
        cfg.node_counts = vec![1, 4];
        cfg.allreduces = 96;
        cfg.seeds = vec![42];
        let pts = run_scaling(&cfg, None);
        assert_eq!(pts.len(), 2);
        assert!(pts[0].procs == 16 && pts[1].procs == 64);
        assert!(
            pts[1].mean_us > pts[0].mean_us,
            "more procs should be slower: {} vs {}",
            pts[1].mean_us,
            pts[0].mean_us
        );
    }

    #[test]
    fn prototype_beats_vanilla_at_same_size() {
        let mut v = ScalingConfig::fig3(true);
        v.node_counts = vec![4];
        v.allreduces = 200;
        v.seeds = vec![42];
        let mut p = ScalingConfig::fig5(true);
        p.node_counts = vec![4];
        p.allreduces = 200;
        p.seeds = vec![42];
        let vm = run_scaling(&v, None)[0].mean_us;
        let pm = run_scaling(&p, None)[0].mean_us;
        assert!(
            pm < vm,
            "prototype ({pm:.1}µs) should beat vanilla ({vm:.1}µs)"
        );
    }

    #[test]
    fn fig6_fits_lines() {
        let mk = |procs: &[u32], slope: f64, icept: f64| -> Vec<ScalePoint> {
            procs
                .iter()
                .map(|&p| {
                    let y = slope * f64::from(p) + icept;
                    ScalePoint {
                        procs: p,
                        seed_means_us: vec![y, y * 1.01],
                        mean_us: y,
                        std_us: 0.0,
                        min_us: y,
                        max_us: y,
                    }
                })
                .collect()
        };
        let v = mk(&[64, 128, 512, 1024], 0.70, 166.0);
        let p = mk(&[64, 128, 512, 1024], 0.22, 210.0);
        let f = fig6(&v, &p);
        assert!((f.vanilla.slope - 0.70).abs() < 0.01);
        assert!((f.prototype.slope - 0.22).abs() < 0.01);
        assert!((f.slope_ratio - 3.18).abs() < 0.1);
        assert_eq!(f.speedups.len(), 4);
    }

    #[test]
    fn fig4_quick_finds_outliers_and_culprits() {
        let cfg = Fig4Config {
            nodes: 2,
            // Fully populated nodes: on a half-idle node the cron job
            // would just ride the idle CPUs (the §2 reserve-CPU effect).
            tasks_per_node: 16,
            samples: 300,
            seed: 42,
            // A miniature cron: fires every 5 ms with ~2 ms of work, so a
            // 30 ms quick run sees several hits.
            cron: pa_noise::CronSpec {
                period: SimDur::from_millis(5),
                components: 2,
                component_median: SimDur::from_millis(1),
                component_sigma: 0.2,
                page_fault_prob: 0.0,
                ..pa_noise::CronSpec::default()
            },
        };
        let r = fig4(&cfg);
        assert_eq!(r.sorted_us.len(), 300);
        assert!(r.slowest_us > r.median_us, "no outlier tail");
        assert!(
            r.slowest_us >= 2.0 * r.median_us,
            "cron should make a large outlier: slowest {} median {}",
            r.slowest_us,
            r.median_us
        );
        assert!(!r.culprits.is_empty(), "no culprits attributed");
    }
}
