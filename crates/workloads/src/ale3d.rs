//! The ALE3D proxy application (§5.1).
//!
//! ALE3D is LLNL's arbitrary-Lagrange-Eulerian multi-physics code. The
//! paper's test problem is *"an explicit time integrated hydrodynamics
//! ALE calculation on a simple cylindrical geometry with slide surfaces
//! ... approximately 50 timesteps, and each timestep involved a large
//! amount of point-to-point MPI message passing, as well as several
//! global reduction operations. The problem performed a fair amount of
//! I/O by reading an initial state file at the beginning of the run, and
//! dumping a restart file at the calculation's terminus."*
//!
//! The proxy reproduces exactly those couplings: per-timestep jittered
//! compute (load imbalance), a ~6-neighbour halo exchange on a 3-D
//! decomposition, several 8-byte Allreduces (time-step control /
//! stability checks), and GPFS-routed I/O at start and end — optionally
//! bracketed with the co-scheduler detach/attach API of §4.

use pa_mpi::{MpiOp, RankWorkload};
use pa_simkit::{RngState, SimDur, SimRng};
use serde::value::Value;
use serde::{Deserialize, Serialize};

/// Proxy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Ale3dSpec {
    /// Timesteps (paper: ~50).
    pub timesteps: u32,
    /// Mean compute per timestep per rank.
    pub compute_per_step: SimDur,
    /// Multiplicative compute imbalance across ranks/steps.
    pub imbalance: f64,
    /// Halo message size per neighbour.
    pub halo_bytes: u32,
    /// Global reductions per timestep ("several").
    pub reductions_per_step: u32,
    /// Initial state read per rank.
    pub initial_read_bytes: u64,
    /// Restart dump per rank.
    pub restart_bytes: u64,
    /// Use the attach/detach API around I/O phases (§4's escape hatch).
    pub io_detach: bool,
    /// Every this many timesteps one rotating rank writes a plot/graphics
    /// file *without* detaching (GPFS write-behind during computation).
    /// This is the coupling that §5.3's profiling exposed: the writer
    /// blocks on a (possibly remote) mmfsd that must win a CPU against
    /// favored, spinning ranks. 0 disables.
    pub plot_every: u32,
    /// Plot-file size.
    pub plot_bytes: u64,
}

impl Default for Ale3dSpec {
    fn default() -> Self {
        Ale3dSpec {
            timesteps: 50,
            compute_per_step: SimDur::from_millis(20),
            imbalance: 0.12,
            halo_bytes: 48 << 10,
            reductions_per_step: 4,
            initial_read_bytes: 8 << 20,
            restart_bytes: 16 << 20,
            io_detach: true,
            plot_every: 5,
            plot_bytes: 4 << 20,
        }
    }
}

/// 3-D decomposition neighbours: ranks ±1 (x), ±nx (y), ±nx·ny (z) on a
/// near-cubic grid, clamped to the domain (no periodic wrap — the paper's
/// cylinder has boundaries).
pub fn grid3d_neighbors(rank: u32, nranks: u32) -> Vec<u32> {
    let (nx, ny, nz) = grid_dims(nranks);
    let x = rank % nx;
    let y = (rank / nx) % ny;
    let z = rank / (nx * ny);
    let mut out = Vec::with_capacity(6);
    let idx = |x: u32, y: u32, z: u32| z * nx * ny + y * nx + x;
    if x > 0 {
        out.push(idx(x - 1, y, z));
    }
    if x + 1 < nx && idx(x + 1, y, z) < nranks {
        out.push(idx(x + 1, y, z));
    }
    if y > 0 {
        out.push(idx(x, y - 1, z));
    }
    if y + 1 < ny && idx(x, y + 1, z) < nranks {
        out.push(idx(x, y + 1, z));
    }
    if z > 0 {
        out.push(idx(x, y, z - 1));
    }
    if z + 1 < nz && idx(x, y, z + 1) < nranks {
        out.push(idx(x, y, z + 1));
    }
    out.retain(|&p| p < nranks && p != rank);
    out
}

/// Near-cubic factorization nx·ny·nz ≥ n with nx ≥ ny ≥ nz.
fn grid_dims(n: u32) -> (u32, u32, u32) {
    let mut nz = (n as f64).cbrt().floor() as u32;
    while nz > 1 && n % nz != 0 {
        nz -= 1;
    }
    let rest = n / nz.max(1);
    let mut ny = (rest as f64).sqrt().floor() as u32;
    while ny > 1 && rest % ny != 0 {
        ny -= 1;
    }
    let nx = rest / ny.max(1);
    (nx.max(1), ny.max(1), nz.max(1))
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Phase {
    InitIo,
    Stepping,
    FinalIo,
    Finished,
}

/// The proxy's per-rank state machine.
#[derive(Debug)]
pub struct Ale3d {
    spec: Ale3dSpec,
    rng: SimRng,
    phase: Phase,
    step: u32,
    pending: Vec<MpiOp>,
}

impl Ale3d {
    /// New instance with a per-rank RNG stream.
    pub fn new(spec: Ale3dSpec, rng: SimRng) -> Ale3d {
        Ale3d {
            spec,
            rng,
            phase: Phase::InitIo,
            step: 0,
            pending: Vec::new(),
        }
    }

    /// Queue (reversed: `pending` is a stack) the I/O bracket.
    fn queue_io(&mut self, read: bool) {
        if self.spec.io_detach {
            self.pending.push(MpiOp::AttachCosched);
        }
        let bytes = if read {
            self.spec.initial_read_bytes
        } else {
            self.spec.restart_bytes
        };
        self.pending.push(if read {
            MpiOp::IoRead { bytes }
        } else {
            MpiOp::IoWrite { bytes }
        });
        if self.spec.io_detach {
            self.pending.push(MpiOp::DetachCosched);
        }
    }

    fn queue_timestep(&mut self, rank: u32, nranks: u32) {
        // Stack order: compute, halo exchange, [plot write], reductions.
        for _ in 0..self.spec.reductions_per_step {
            self.pending.push(MpiOp::Allreduce { bytes: 8 });
        }
        if self.spec.plot_every > 0 && self.step % self.spec.plot_every == 0 {
            let writer =
                (u64::from(self.step / self.spec.plot_every) * 7 % u64::from(nranks)) as u32;
            if writer == rank {
                self.pending.push(MpiOp::IoWrite {
                    bytes: self.spec.plot_bytes,
                });
            }
        }
        let peers = grid3d_neighbors(rank, nranks);
        if !peers.is_empty() {
            self.pending.push(MpiOp::Exchange {
                peers,
                bytes: self.spec.halo_bytes,
            });
        }
        self.pending.push(MpiOp::Compute(
            self.rng
                .jitter(self.spec.compute_per_step, self.spec.imbalance),
        ));
    }
}

impl RankWorkload for Ale3d {
    fn next_op(&mut self, rank: u32, nranks: u32) -> MpiOp {
        loop {
            if let Some(op) = self.pending.pop() {
                return op;
            }
            match self.phase {
                Phase::InitIo => {
                    self.queue_io(true);
                    self.phase = Phase::Stepping;
                }
                Phase::Stepping => {
                    if self.step >= self.spec.timesteps {
                        self.phase = Phase::FinalIo;
                        continue;
                    }
                    self.step += 1;
                    self.queue_timestep(rank, nranks);
                }
                Phase::FinalIo => {
                    self.queue_io(false);
                    self.phase = Phase::Finished;
                }
                Phase::Finished => return MpiOp::Done,
            }
        }
    }

    fn snapshot_state(&self) -> Value {
        (
            self.phase,
            self.step,
            self.pending.clone(),
            self.rng.save_state(),
        )
            .to_value()
    }

    fn restore_state(&mut self, state: &Value) -> Result<(), serde::Error> {
        type Snap = (Phase, u32, Vec<MpiOp>, RngState);
        let (phase, step, pending, rng): Snap = Deserialize::from_value(state)?;
        self.phase = phase;
        self.step = step;
        self.pending = pending;
        self.rng.load_state(&rng).map_err(serde::Error)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dims_cover_n() {
        for n in [1u32, 2, 8, 16, 27, 64, 944, 1000] {
            let (nx, ny, nz) = grid_dims(n);
            assert!(nx * ny * nz >= n, "{n} -> {nx}x{ny}x{nz}");
            assert!(nx * ny * nz == n || n % nz != 0, "exact when divisible");
        }
        assert_eq!(grid_dims(27), (3, 3, 3));
        assert_eq!(grid_dims(64), (4, 4, 4));
    }

    #[test]
    fn neighbors_are_symmetric() {
        let n = 64;
        for r in 0..n {
            for p in grid3d_neighbors(r, n) {
                assert!(
                    grid3d_neighbors(p, n).contains(&r),
                    "asymmetric: {r} -> {p}"
                );
            }
        }
    }

    #[test]
    fn interior_rank_has_six_neighbors() {
        // 4x4x4 grid: rank at (1,1,1) = 1 + 4 + 16 = 21.
        let nb = grid3d_neighbors(21, 64);
        assert_eq!(nb.len(), 6);
        // Corner rank 0 has 3.
        assert_eq!(grid3d_neighbors(0, 64).len(), 3);
    }

    #[test]
    fn neighbors_valid_for_non_cubic_counts() {
        for n in [2u32, 5, 13, 944] {
            for r in (0..n).step_by((n as usize / 7).max(1)) {
                for p in grid3d_neighbors(r, n) {
                    assert!(p < n);
                    assert_ne!(p, r);
                }
            }
        }
    }

    #[test]
    fn op_stream_structure() {
        let spec = Ale3dSpec {
            timesteps: 2,
            reductions_per_step: 3,
            io_detach: true,
            ..Ale3dSpec::default()
        };
        let mut w = Ale3d::new(spec, SimRng::from_seed(3));
        let mut ops = Vec::new();
        loop {
            let op = w.next_op(21, 64);
            if op == MpiOp::Done {
                break;
            }
            ops.push(op);
        }
        // Detach, read, attach; 2 × (compute, exchange, 3 reductions);
        // detach, write, attach.
        assert_eq!(ops[0], MpiOp::DetachCosched);
        assert!(matches!(ops[1], MpiOp::IoRead { .. }));
        assert_eq!(ops[2], MpiOp::AttachCosched);
        let reduces = ops
            .iter()
            .filter(|o| matches!(o, MpiOp::Allreduce { .. }))
            .count();
        assert_eq!(reduces, 6);
        let exchanges = ops
            .iter()
            .filter(|o| matches!(o, MpiOp::Exchange { .. }))
            .count();
        assert_eq!(exchanges, 2);
        assert!(matches!(ops[ops.len() - 2], MpiOp::IoWrite { .. }));
        assert_eq!(*ops.last().unwrap(), MpiOp::AttachCosched);
    }

    #[test]
    fn no_detach_when_disabled() {
        let spec = Ale3dSpec {
            timesteps: 1,
            io_detach: false,
            ..Ale3dSpec::default()
        };
        let mut w = Ale3d::new(spec, SimRng::from_seed(3));
        let mut ops = Vec::new();
        loop {
            let op = w.next_op(0, 8);
            if op == MpiOp::Done {
                break;
            }
            ops.push(op);
        }
        assert!(!ops
            .iter()
            .any(|o| matches!(o, MpiOp::DetachCosched | MpiOp::AttachCosched)));
    }
}
