//! Background-load audit (the §2 overhead claim).
//!
//! *"Experiments show that typical operating system and daemon activity
//! consumes 0.2% to 1.1% of each CPU for large dedicated RS/6000 SP
//! systems with 16 processors per node."* \[Jones03\]
//!
//! The audit boots a node with a noise profile, spins one low-priority
//! soaker per CPU (so daemons behave as they do under a loaded node), and
//! reports per-thread and per-class CPU shares over a configurable
//! window.

use pa_kernel::{
    Action, ClockModel, CpuId, Kernel, Prio, SchedOptions, Script, SoloRunner, ThreadSpec,
};
use pa_noise::NoiseProfile;
use pa_obs::SpanTimeline;
use pa_simkit::{SeedSpace, SimDur, SimTime};
use pa_trace::{HookMask, ThreadClass};
use serde::{Deserialize, Serialize};

/// One audited thread's share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditRow {
    /// Thread name.
    pub name: String,
    /// Class.
    pub class: ThreadClass,
    /// CPU time consumed.
    pub cpu_time: SimDur,
    /// Share of one CPU (cpu_time / window).
    pub one_cpu_share: f64,
}

/// Result of a node audit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditResult {
    /// Observation window.
    pub window: SimDur,
    /// CPUs on the node.
    pub ncpus: u8,
    /// Per-interference-thread rows, largest first.
    pub rows: Vec<AuditRow>,
    /// Total interference share of one CPU.
    pub total_one_cpu_share: f64,
    /// Interference share averaged over the node's CPUs.
    pub per_cpu_share: f64,
}

/// Run the audit: one node, `ncpus` CPUs, `window` of simulated time.
pub fn audit_node(
    noise: &NoiseProfile,
    opts: SchedOptions,
    ncpus: u8,
    window: SimDur,
    seed: u64,
) -> AuditResult {
    let seeds = SeedSpace::new(seed);
    let mut kernel = Kernel::new(
        0,
        ncpus,
        opts,
        ClockModel::synced(),
        seeds.stream_at("audit/kernel", 0, 0),
        1 << 12,
    );
    // Soakers stand in for the parallel job: they keep every CPU busy so
    // daemon activity is measured under contention, and never exit.
    for c in 0..ncpus {
        kernel.spawn(
            ThreadSpec::new(format!("soak{c}"), ThreadClass::App, Prio::USER).on_cpu(CpuId(c)),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(
                36_000,
            ))])),
        );
    }
    let installed = noise.install(&mut kernel, &seeds, 0);
    let mut runner = SoloRunner::new(kernel);
    runner.boot();
    runner.run_until(SimTime::ZERO + window);

    let mut rows: Vec<AuditRow> = runner
        .kernel
        .usage_report()
        .into_iter()
        .filter(|r| r.class.is_interference())
        .map(|r| AuditRow {
            one_cpu_share: r.cpu_time.nanos() as f64 / window.nanos() as f64,
            name: r.name,
            class: r.class,
            cpu_time: r.cpu_time,
        })
        .collect();
    rows.sort_by(|a, b| b.cpu_time.cmp(&a.cpu_time).then(a.name.cmp(&b.name)));
    let total: f64 = rows.iter().map(|r| r.one_cpu_share).sum();
    let _ = installed;
    AuditResult {
        window,
        ncpus,
        rows,
        total_one_cpu_share: total,
        per_cpu_share: total / f64::from(ncpus),
    }
}

/// Audit a node *and* record a span timeline of its schedule: per-CPU
/// tracks show who held each CPU (soakers, daemons, cron components)
/// with `tick` instants, so the §2 interference pattern is visible in
/// Perfetto / `chrome://tracing`.
///
/// Tracing every dispatch is heavy, so the observation `window` should
/// be seconds, not minutes; the ring holds 2^17 events and the timeline
/// converter tolerates eviction (spans reopen at the next dispatch).
pub fn audit_node_timeline(
    noise: &NoiseProfile,
    opts: SchedOptions,
    ncpus: u8,
    window: SimDur,
    seed: u64,
) -> (AuditResult, SpanTimeline) {
    let seeds = SeedSpace::new(seed);
    let mut kernel = Kernel::new(
        0,
        ncpus,
        opts,
        ClockModel::synced(),
        seeds.stream_at("audit/kernel", 0, 0),
        1 << 17,
    );
    kernel.trace_mut().set_mask(HookMask::study());
    for c in 0..ncpus {
        kernel.spawn(
            ThreadSpec::new(format!("soak{c}"), ThreadClass::App, Prio::USER).on_cpu(CpuId(c)),
            Box::new(Script::new(vec![Action::Compute(SimDur::from_secs(
                36_000,
            ))])),
        );
    }
    noise.install(&mut kernel, &seeds, 0);
    let mut runner = SoloRunner::new(kernel);
    runner.boot();
    runner.run_until(SimTime::ZERO + window);

    let mut rows: Vec<AuditRow> = runner
        .kernel
        .usage_report()
        .into_iter()
        .filter(|r| r.class.is_interference())
        .map(|r| AuditRow {
            one_cpu_share: r.cpu_time.nanos() as f64 / window.nanos() as f64,
            name: r.name,
            class: r.class,
            cpu_time: r.cpu_time,
        })
        .collect();
    rows.sort_by(|a, b| b.cpu_time.cmp(&a.cpu_time).then(a.name.cmp(&b.name)));
    let total: f64 = rows.iter().map(|r| r.one_cpu_share).sum();
    let result = AuditResult {
        window,
        ncpus,
        rows,
        total_one_cpu_share: total,
        per_cpu_share: total / f64::from(ncpus),
    };
    let timeline = pa_core::timeline_from_trace(0, runner.kernel.trace(), SimTime::ZERO + window);
    (result, timeline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_profile_lands_near_paper_band() {
        let r = audit_node(
            &NoiseProfile::production(),
            SchedOptions::vanilla(),
            16,
            SimDur::from_secs(120),
            7,
        );
        // §2's band is 0.2%–1.1% per CPU; daemons concentrate on a few
        // CPUs at a time so the node-wide total (in units of one CPU)
        // lands around 16×that. Accept a generous envelope: the audit
        // binary prints the exact value for EXPERIMENTS.md.
        assert!(
            r.total_one_cpu_share > 0.002 && r.total_one_cpu_share < 0.05,
            "total {:.4}",
            r.total_one_cpu_share
        );
        assert!(!r.rows.is_empty());
        // Rows sorted descending.
        for w in r.rows.windows(2) {
            assert!(w[0].cpu_time >= w[1].cpu_time);
        }
    }

    #[test]
    fn timeline_variant_matches_audit_and_fills_tracks() {
        let noise = NoiseProfile::production();
        let window = SimDur::from_secs(2);
        let plain = audit_node(&noise, SchedOptions::vanilla(), 4, window, 7);
        let (traced, tl) = audit_node_timeline(&noise, SchedOptions::vanilla(), 4, window, 7);
        // Tracing must not perturb the simulation.
        assert_eq!(plain, traced);
        assert!(!tl.is_empty(), "no spans recorded");
        let json = tl.to_chrome_trace();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("soak0"), "soaker spans missing");
        assert!(json.contains("tick"), "tick instants missing");
    }

    #[test]
    fn silent_profile_measures_zero_daemon_time() {
        let r = audit_node(
            &NoiseProfile::silent(),
            SchedOptions::vanilla(),
            4,
            SimDur::from_secs(10),
            7,
        );
        assert_eq!(r.rows.len(), 0);
        assert_eq!(r.total_one_cpu_share, 0.0);
    }

    #[test]
    fn scaled_noise_scales_the_audit() {
        let base = audit_node(
            &NoiseProfile::production().without_cron(),
            SchedOptions::vanilla(),
            8,
            SimDur::from_secs(60),
            7,
        );
        let double = audit_node(
            &NoiseProfile::production().without_cron().scaled(2.0),
            SchedOptions::vanilla(),
            8,
            SimDur::from_secs(60),
            7,
        );
        let ratio = double.total_one_cpu_share / base.total_one_cpu_share;
        assert!(
            ratio > 1.5 && ratio < 2.6,
            "doubling noise gave ratio {ratio}"
        );
    }
}
