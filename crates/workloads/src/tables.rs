//! Drivers for the paper's in-text results (the "tables"):
//!
//! * **T-15v16** — 15 vs 16 tasks/node and the 154% claim (§5.3);
//! * **T-timer** — MPI timer-thread interference and the
//!   `MP_POLLING_INTERVAL` mitigation (§5.3);
//! * **T-ale3d** — the ALE3D end-to-end run-time comparison (§5.3);
//! * **T-ale3d-io** — the I/O-starvation ablation: naive vs I/O-aware
//!   favored priorities vs the detach API (§5.3);
//! * **A-ablate** — per-mechanism ablation of the prototype kernel and
//!   co-scheduler (DESIGN.md's design-choice index).

use crate::ale3d::{Ale3d, Ale3dSpec};
use crate::figures::{aggregate_runner, run_one, ScalingConfig};
use pa_campaign::{run_campaign, ExecutorConfig, TruncatedPoints};
use pa_core::{CoschedSetup, Experiment};
use pa_kernel::{DaemonQueuePolicy, PreemptMode, SchedOptions, TickAlign};
use pa_mpi::{OpKind, ProgressSpec, RankWorkload};
use pa_noise::NoiseProfile;
use pa_simkit::{SeedSpace, Summary};
use serde::{Deserialize, Serialize};

/// One labelled scalar result row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledRow {
    /// Configuration label.
    pub label: String,
    /// Measured value.
    pub value: f64,
}

/// T-15v16 output.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct T15v16Result {
    /// Mean Allreduce µs per configuration.
    pub rows: Vec<LabeledRow>,
    /// vanilla-16 / vanilla-15 (15 t/n should be faster: ratio > 1).
    pub van16_over_van15: f64,
    /// vanilla-15 / prototype-16 (the paper's "154% speedup" comparison:
    /// fully populated prototype nodes vs 15-task vanilla nodes).
    pub proto16_speedup_vs_van15: f64,
}

/// Run T-15v16 at `nodes` nodes (paper: 100) through the campaign
/// executor — all three configurations' seeds form one point list, so
/// they share the worker pool and the cache.
pub fn tab_15v16(
    nodes: u32,
    quick: bool,
    exec: &ExecutorConfig,
) -> Result<T15v16Result, TruncatedPoints> {
    let mut base = ScalingConfig::fig3(quick);
    base.node_counts = vec![nodes];
    if quick {
        base.allreduces = 160;
        base.seeds = vec![42];
    }
    let mut van15 = base.clone();
    van15.tasks_per_node = 15;
    let mut proto16 = ScalingConfig::fig5(quick);
    proto16.node_counts = vec![nodes];
    proto16.allreduces = base.allreduces;
    proto16.seeds = base.seeds.clone();

    let means = campaign_means(&[base, van15, proto16], exec)?;
    let (m_van16, m_van15, m_proto16) = (means[0], means[1], means[2]);
    Ok(T15v16Result {
        rows: vec![
            LabeledRow {
                label: "vanilla 16 t/n".into(),
                value: m_van16,
            },
            LabeledRow {
                label: "vanilla 15 t/n".into(),
                value: m_van15,
            },
            LabeledRow {
                label: "prototype+cosched 16 t/n".into(),
                value: m_proto16,
            },
        ],
        van16_over_van15: m_van16 / m_van15,
        proto16_speedup_vs_van15: m_van15 / m_proto16,
    })
}

/// Mean Allreduce µs of several single-size configurations, evaluated as
/// ONE campaign: every (config, seed) pair becomes a point, so the runs
/// interleave across the worker pool and share the cache.
fn campaign_means(
    cfgs: &[ScalingConfig],
    exec: &ExecutorConfig,
) -> Result<Vec<f64>, TruncatedPoints> {
    let mut specs = Vec::new();
    let mut spans = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let pts = cfg.points();
        spans.push(pts.len());
        specs.extend(pts);
    }
    let outcome = run_campaign(&specs, exec, aggregate_runner);
    outcome.ensure_complete(&exec.label)?;
    let mut means = Vec::with_capacity(cfgs.len());
    let mut offset = 0;
    for len in spans {
        let ms: Vec<f64> = outcome.results[offset..offset + len]
            .iter()
            .map(|r| r.mean_allreduce_us)
            .collect();
        means.push(Summary::of(&ms).mean);
        offset += len;
    }
    Ok(means)
}

/// T-timer output: per-call global-duration statistics with the default
/// 400 ms progress engine vs the 400 s mitigation, at 15 t/n on the
/// vanilla kernel (the §5.3 residual-interference configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimerResult {
    /// (label, mean µs, p99 µs, max µs).
    pub rows: Vec<(String, f64, f64, f64)>,
    /// p99 improvement factor from the mitigation.
    pub p99_improvement: f64,
}

/// Run T-timer.
///
/// In quick mode the 400 ms/400 s intervals are scaled down 10× along
/// with a shorter call loop, preserving the firings-per-run ratio (time
/// compression, documented in DESIGN.md); the full mode uses the paper's
/// literal settings over a multi-second loop.
pub fn tab_timer(nodes: u32, quick: bool) -> TimerResult {
    let (interval, calls) = if quick {
        (pa_simkit::SimDur::from_millis(40), 800)
    } else {
        (pa_simkit::SimDur::from_millis(400), 4096)
    };
    let run = |progress: ProgressSpec, label: &str| -> (String, f64, f64, f64) {
        let mut cfg = ScalingConfig::vanilla_15(quick);
        cfg.node_counts = vec![nodes];
        // Isolate the timer threads: dedicated(ish) system, no cron.
        cfg.noise = NoiseProfile::dedicated();
        cfg.progress = Some(progress);
        cfg.allreduces = calls;
        cfg.seeds = vec![42];
        let out = run_one(&cfg, nodes, cfg.seeds[0]);
        assert!(out.completed);
        let s = out
            .job
            .recorder
            .lock()
            .unwrap()
            .global_dur_summary_us(OpKind::Allreduce);
        (label.to_string(), s.mean, s.p99, s.max)
    };
    let with_default = run(
        ProgressSpec {
            interval,
            ..ProgressSpec::default()
        },
        "MP_POLLING_INTERVAL default (timer threads firing)",
    );
    let mitigated = run(
        ProgressSpec {
            interval: interval * 1000,
            ..ProgressSpec::default()
        },
        "MP_POLLING_INTERVAL huge (mitigated)",
    );
    let p99_improvement = with_default.2 / mitigated.2;
    TimerResult {
        rows: vec![with_default, mitigated],
        p99_improvement,
    }
}

/// Configuration label for an ALE3D run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AleMode {
    /// Standard kernel, no co-scheduler.
    Vanilla,
    /// Prototype kernel + co-scheduler at benchmark settings (favored 30)
    /// with the application *not* using the detach API — the §5.3
    /// configuration that "actually slowed it down".
    NaiveCosched,
    /// Same, but the application detaches around its big I/O phases.
    NaiveWithDetach,
    /// Prototype kernel + I/O-aware priorities (mmfsd 40 / favored 41) —
    /// the §5.3 fix.
    IoAware,
}

impl AleMode {
    /// Human label.
    pub fn label(self) -> &'static str {
        match self {
            AleMode::Vanilla => "vanilla kernel, no cosched",
            AleMode::NaiveCosched => "prototype + cosched favored=30 (no detach)",
            AleMode::NaiveWithDetach => "prototype + cosched favored=30 + detach API",
            AleMode::IoAware => "prototype + cosched favored=41/mmfsd=40 (I/O-aware)",
        }
    }
}

/// One ALE3D measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AleRow {
    /// Mode label.
    pub label: String,
    /// Wall-clock run time, seconds.
    pub wall_s: f64,
    /// Whether the run finished before the horizon.
    pub completed: bool,
}

/// Run the ALE3D proxy in one mode.
pub fn run_ale3d(nodes: u32, spec: Ale3dSpec, mode: AleMode, seed: u64) -> AleRow {
    let seeds = SeedSpace::new(seed);
    let mut spec = spec;
    spec.io_detach = matches!(mode, AleMode::NaiveWithDetach);
    let mut make = |rank: u32| -> Box<dyn RankWorkload> {
        Box::new(Ale3d::new(
            spec,
            seeds.stream_at("wl/ale3d", u64::from(rank), 0),
        ))
    };
    let mut e = Experiment::new(nodes, 16)
        .with_noise(NoiseProfile::production().without_cron())
        .with_seed(seed)
        .with_horizon(pa_simkit::SimDur::from_secs(7_200));
    match mode {
        AleMode::Vanilla => {}
        AleMode::NaiveCosched | AleMode::NaiveWithDetach => {
            e = e
                .with_kernel(SchedOptions::prototype())
                .with_cosched(CoschedSetup::default());
        }
        AleMode::IoAware => {
            e = e
                .with_kernel(SchedOptions::prototype())
                .with_cosched(CoschedSetup::io_aware());
        }
    }
    let out = e.run(&mut make);
    AleRow {
        label: mode.label().to_string(),
        wall_s: out.wall.as_secs_f64(),
        completed: out.completed,
    }
}

/// T-ale3d: vanilla vs the I/O-aware prototype (the paper's 1315 s →
/// 1152 s comparison).
pub fn tab_ale3d(nodes: u32, spec: Ale3dSpec, seed: u64) -> Vec<AleRow> {
    vec![
        run_ale3d(nodes, spec, AleMode::Vanilla, seed),
        run_ale3d(nodes, spec, AleMode::IoAware, seed),
    ]
}

/// T-ale3d-io: the §5.3 I/O-starvation story in four rows.
pub fn tab_ale3d_io(nodes: u32, spec: Ale3dSpec, seed: u64) -> Vec<AleRow> {
    vec![
        run_ale3d(nodes, spec, AleMode::Vanilla, seed),
        run_ale3d(nodes, spec, AleMode::NaiveCosched, seed),
        run_ale3d(nodes, spec, AleMode::NaiveWithDetach, seed),
        run_ale3d(nodes, spec, AleMode::IoAware, seed),
    ]
}

/// A-ablate: contribution of each prototype mechanism to the Allreduce
/// improvement, one toggle at a time over the vanilla baseline. All
/// (config, seed) pairs run as one campaign.
pub fn tab_ablation(
    nodes: u32,
    quick: bool,
    exec: &ExecutorConfig,
) -> Result<Vec<LabeledRow>, TruncatedPoints> {
    let base = ScalingConfig::fig3(quick);
    let mut configs: Vec<(String, SchedOptions, Option<CoschedSetup>)> = Vec::new();
    configs.push(("vanilla".into(), SchedOptions::vanilla(), None));
    let mut big = SchedOptions::vanilla();
    big.big_tick = 25;
    configs.push(("+ big ticks (250ms)".into(), big, None));
    let mut aligned = SchedOptions::vanilla();
    aligned.tick_align = TickAlign::Aligned;
    configs.push(("+ aligned ticks".into(), aligned, None));
    let mut rt = SchedOptions::vanilla();
    rt.preempt = PreemptMode::RtIpiImproved;
    configs.push(("+ improved RT preemption".into(), rt, None));
    let mut gq = SchedOptions::vanilla();
    gq.daemon_queue = DaemonQueuePolicy::Global;
    configs.push(("+ global daemon queue".into(), gq, None));
    configs.push((
        "prototype kernel (no cosched)".into(),
        SchedOptions::prototype(),
        None,
    ));
    configs.push((
        "vanilla kernel + cosched".into(),
        SchedOptions::vanilla(),
        Some(CoschedSetup::default()),
    ));
    configs.push((
        "prototype + cosched (full)".into(),
        SchedOptions::prototype(),
        Some(CoschedSetup::default()),
    ));

    let (labels, cfgs): (Vec<String>, Vec<ScalingConfig>) = configs
        .into_iter()
        .map(|(label, kernel, cosched)| {
            let mut cfg = base.clone();
            cfg.kernel = kernel;
            cfg.cosched = cosched;
            cfg.node_counts = vec![nodes];
            if quick {
                cfg.allreduces = 160;
                cfg.seeds = vec![42];
            }
            (label, cfg)
        })
        .unzip();
    let means = campaign_means(&cfgs, exec)?;
    Ok(labels
        .into_iter()
        .zip(means)
        .map(|(label, value)| LabeledRow { label, value })
        .collect())
}

/// The unfavored-window sensitivity sweep (§4 discusses the latitude the
/// administrator has; the paper warns a too-aggressive window starves the
/// node). Returns (duty, mean Allreduce µs).
/// Use tick-aligned duties (multiples of 0.2 with the compressed 1.25 s
/// window and 250 ms big tick) so the unfavored edge is not swallowed by
/// callout quantization.
pub fn duty_cycle_sweep(
    nodes: u32,
    duties: &[f64],
    quick: bool,
    exec: &ExecutorConfig,
) -> Result<Vec<(f64, f64)>, TruncatedPoints> {
    let cfgs: Vec<ScalingConfig> = duties
        .iter()
        .map(|&duty| {
            let mut cfg = ScalingConfig::fig5(quick);
            cfg.node_counts = vec![nodes];
            cfg.seeds = vec![42];
            // Runs must span several windows for the duty cycle to show.
            cfg.target_sim_time = Some(pa_simkit::SimDur::from_millis(if quick {
                2_600
            } else {
                4_000
            }));
            let mut setup = cfg.cosched.expect("fig5 deploys the co-scheduler");
            setup.params.duty = duty;
            cfg.cosched = Some(setup);
            cfg
        })
        .collect();
    let means = campaign_means(&cfgs, exec)?;
    Ok(duties.iter().copied().zip(means).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> Ale3dSpec {
        Ale3dSpec {
            timesteps: 6,
            compute_per_step: pa_simkit::SimDur::from_millis(4),
            initial_read_bytes: 1 << 20,
            restart_bytes: 1 << 20,
            plot_every: 2,
            plot_bytes: 1 << 20,
            ..Ale3dSpec::default()
        }
    }

    #[test]
    fn ale3d_naive_cosched_is_a_disaster() {
        // §5.3: "the first tests of ALE3D were very disappointing: the
        // co-scheduler actually slowed it down."
        let vanilla = run_ale3d(2, quick_spec(), AleMode::Vanilla, 42);
        let naive = run_ale3d(2, quick_spec(), AleMode::NaiveCosched, 42);
        assert!(vanilla.completed && naive.completed);
        assert!(
            naive.wall_s > 1.5 * vanilla.wall_s,
            "naive cosched should stall on I/O: naive {:.2}s vs vanilla {:.2}s",
            naive.wall_s,
            vanilla.wall_s
        );
    }

    #[test]
    fn ale3d_io_aware_fixes_the_disaster() {
        let naive = run_ale3d(2, quick_spec(), AleMode::NaiveCosched, 42);
        let aware = run_ale3d(2, quick_spec(), AleMode::IoAware, 42);
        assert!(
            aware.wall_s < naive.wall_s / 1.5,
            "I/O-aware priorities should fix the stall: {:.2}s vs {:.2}s",
            aware.wall_s,
            naive.wall_s
        );
    }

    #[test]
    fn timer_mitigation_reduces_tail() {
        let r = tab_timer(2, true);
        assert_eq!(r.rows.len(), 2);
        assert!(
            r.p99_improvement > 1.0,
            "mitigation should shrink the tail: {:?}",
            r.rows
        );
    }

    #[test]
    fn ablation_runs_all_configs() {
        // 4 nodes: at very small scale the prototype's intercept overhead
        // can exceed its benefit (the paper's own fitted lines cross near
        // x≈90 procs), so the assertion needs a size where noise
        // amplification dominates.
        let rows = tab_ablation(4, true, &ExecutorConfig::serial("ablate-test")).unwrap();
        assert_eq!(rows.len(), 8);
        let vanilla = rows[0].value;
        let full = rows.last().unwrap().value;
        assert!(
            full < vanilla,
            "full prototype should beat vanilla: {full:.1} vs {vanilla:.1}"
        );
    }
}
