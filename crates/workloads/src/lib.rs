//! # pa-workloads — benchmarks, applications, and experiment drivers
//!
//! The workloads the SC'03 study measured, plus one driver per figure and
//! table of §5:
//!
//! * [`AggregateTrace`] — the `aggregate_trace.c` synthetic benchmark
//!   (loops of Allreduce calls with trace markers every 64th call);
//! * [`Ale3d`] — the ALE3D proxy: BSP timesteps of jittered compute,
//!   3-D halo exchange, global reductions, and GPFS-routed I/O phases;
//! * [`figures`] — Figures 3/5 scaling sweeps, the Figure 6 line fits,
//!   and the Figure 4 outlier/attribution study;
//! * [`tables`] — 15-vs-16 tasks, MPI timer threads, the ALE3D runs, the
//!   mechanism ablation, and the duty-cycle sensitivity sweep;
//! * [`illustrations`] — the Figure 1 overlap measurement and Figure 2
//!   BSP phase breakdown;
//! * [`multi_job`] — the batch-layer sweep: one job stream under several
//!   `pa-jobs` placement policies, compared on makespan/wait/utilization;
//! * [`oversub`] — the oversubscribed multi-runtime gang scenario: every
//!   dispatcher policy, gang coordinators off and on, on one node;
//! * [`overlap`] / [`audit`] — the underlying trace analyses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aggregate;
pub mod ale3d;
pub mod audit;
pub mod figures;
pub mod illustrations;
pub mod multi_job;
pub mod overlap;
pub mod oversub;
pub mod tables;

pub use aggregate::{AggregateSpec, AggregateTrace};
pub use ale3d::{grid3d_neighbors, Ale3d, Ale3dSpec};
pub use audit::{audit_node, audit_node_timeline, AuditResult, AuditRow};
pub use figures::{
    aggregate_runner, aggregate_runner_ckpt, campaign_blame_totals, collect_scale_points, fig4,
    fig4_with_output, fig6, run_blame_point, run_one, run_point, run_point_ckpt, run_scaling,
    run_scaling_campaign, Fig4Config, Fig4Result, Fig6Result, ScalePoint, ScalingConfig,
};
pub use illustrations::{fig1, fig2, BspRankRow, Fig1Result};
pub use multi_job::{
    batch_point, batch_scenario, multi_job_runner, policy_comparison, run_batch_point, BatchScale,
    PolicyRow,
};
pub use overlap::{green_fraction, red_touch_fraction};
pub use oversub::{oversub_comparison, run_oversub, OversubRow, OversubSpec};
pub use tables::{
    duty_cycle_sweep, run_ale3d, tab_15v16, tab_ablation, tab_ale3d, tab_ale3d_io, tab_timer,
    AleMode, AleRow, LabeledRow, T15v16Result, TimerResult,
};
