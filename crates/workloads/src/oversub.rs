//! Oversubscribed multi-runtime gang scheduling: the dispatcher stress
//! scenario the 2003 study never ran.
//!
//! One SMP node hosts several independent "runtimes" (think: separate
//! parallel jobs sharing a node), each with more workers than its share
//! of CPUs — the node is oversubscribed. Optionally each runtime deploys
//! a gang coordinator in the co-scheduler mold: a favored daemon that
//! boosts its own workers to `FAVORED` during its runtime's window of a
//! round-robin schedule and demotes them to `UNFAVORED` otherwise, so at
//! any instant (modulo lazy-preemption latency) one runtime's workers own
//! the CPUs.
//!
//! The scenario is run once per [`DispatcherKind`], with and without the
//! gang coordinators, and reports makespan, per-runtime finish skew, and
//! dispatch/preemption counts. Under the AIX policy gangs are decisive:
//! priority is absolute, so without windows the runtimes round-robin at
//! timeslice grain but with them each runtime gets dedicated bursts.
//! Under CFS/EEVDF the priority boost only re-weights shares, so gang
//! windows blur — exactly the "does parallel awareness still pay under
//! fair scheduling?" question at single-node scale.
//!
//! Everything is deterministic: no noise, a fixed seed, scripted
//! coordinators with precomputed windows (no message feedback), so the
//! rows are byte-stable for CI.

use pa_kernel::{
    Action, ClockModel, CpuId, DispatcherKind, Kernel, Prio, SchedOptions, Script, SoloRunner,
    ThreadSpec, Tid,
};
use pa_simkit::{SimDur, SimRng, SimTime};
use pa_trace::ThreadClass;
use serde::{Deserialize, Serialize};

/// Shape of the oversubscription scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OversubSpec {
    /// Independent runtimes sharing the node.
    pub runtimes: u32,
    /// Workers per runtime. `runtimes * workers_per_runtime > cpus` is
    /// the point of the exercise.
    pub workers_per_runtime: u32,
    /// CPUs on the node.
    pub cpus: u8,
    /// Compute demand per worker (total, split into timeslice-scale
    /// chunks so blocking never hides the dispatcher).
    pub work_per_worker: SimDur,
    /// Chunk size the work is split into.
    pub chunk: SimDur,
    /// Gang window length (one runtime favored per window, round-robin).
    pub window: SimDur,
    /// Master seed (kernel RNG: IPI latencies).
    pub seed: u64,
    /// Give-up horizon.
    pub horizon: SimDur,
}

impl Default for OversubSpec {
    fn default() -> Self {
        // 3 runtimes × 4 workers on 4 CPUs: 3× oversubscribed. 120 ms of
        // work per worker in 2 ms chunks; 30 ms windows (a multiple of
        // the 10 ms tick, so the sleeping coordinators wake on time).
        OversubSpec {
            runtimes: 3,
            workers_per_runtime: 4,
            cpus: 4,
            work_per_worker: SimDur::from_millis(120),
            chunk: SimDur::from_millis(2),
            window: SimDur::from_millis(30),
            seed: 42,
            horizon: SimDur::from_secs(60),
        }
    }
}

impl OversubSpec {
    /// A seconds-scale smoke variant.
    pub fn quick() -> OversubSpec {
        OversubSpec {
            runtimes: 2,
            workers_per_runtime: 3,
            cpus: 2,
            work_per_worker: SimDur::from_millis(60),
            ..OversubSpec::default()
        }
    }
}

/// One (dispatcher, gang) cell of the comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OversubRow {
    /// Dispatcher policy name.
    pub dispatcher: String,
    /// Were gang coordinators deployed?
    pub gang: bool,
    /// Did every worker finish before the horizon?
    pub completed: bool,
    /// Last worker exit, ms.
    pub makespan_ms: f64,
    /// Per-runtime last-worker exit, ms (index = runtime).
    pub runtime_finish_ms: Vec<f64>,
    /// Spread between the first and last runtime to finish, ms. Gangs
    /// serialize runtimes (large spread); fair sharing finishes them
    /// together (small spread).
    pub finish_spread_ms: f64,
    /// Dispatcher decisions (kernel stat).
    pub dispatches: u64,
    /// Preemptions (kernel stat).
    pub preemptions: u64,
    /// Total worker ready-queue wait, ms (the oversubscription cost).
    pub runq_wait_ms: f64,
}

/// Run one cell: `spec` under `kind`, with or without gang coordinators.
pub fn run_oversub(spec: &OversubSpec, kind: DispatcherKind, gang: bool) -> OversubRow {
    assert!(
        spec.runtimes * spec.workers_per_runtime > u32::from(spec.cpus),
        "scenario must oversubscribe the node"
    );
    let mut opts = SchedOptions::vanilla();
    opts.dispatcher = kind;
    let mut k = Kernel::new(
        0,
        spec.cpus,
        opts,
        ClockModel::synced(),
        SimRng::from_seed(spec.seed),
        1 << 16,
    );

    // Workers: plain compute loops at USER, homed round-robin across the
    // CPUs (pinned threads model runtime-managed affinity).
    let chunks = spec.work_per_worker.nanos().div_ceil(spec.chunk.nanos()) as usize;
    let mut workers: Vec<Vec<Tid>> = Vec::new();
    for r in 0..spec.runtimes {
        let mut tids = Vec::new();
        for w in 0..spec.workers_per_runtime {
            let cpu = ((r * spec.workers_per_runtime + w) % u32::from(spec.cpus)) as u8;
            let tid = k.spawn(
                ThreadSpec::new(format!("rt{r}.w{w}"), ThreadClass::App, Prio::USER)
                    .on_cpu(CpuId(cpu)),
                Box::new(Script::new(vec![Action::Compute(spec.chunk); chunks])),
            );
            tids.push(tid);
        }
        workers.push(tids);
    }

    // Gang coordinators: one per runtime, at the co-scheduler's own
    // priority, each executing a precomputed window schedule. Runtime `r`
    // is favored in windows where `window_index % runtimes == r`. Enough
    // windows to cover the horizon; the coordinator exits after the last.
    if gang {
        let windows = (spec.horizon.nanos() / spec.window.nanos()).max(1);
        for (r, tids) in workers.iter().enumerate() {
            let mut script = Vec::new();
            for wi in 0..windows {
                if wi > 0 {
                    script.push(Action::SleepUntil(SimTime::ZERO + spec.window * wi));
                }
                let favored = wi % u64::from(spec.runtimes) == r as u64;
                let prio = if favored {
                    Prio::FAVORED
                } else {
                    Prio::UNFAVORED
                };
                for &t in tids {
                    script.push(Action::SetPriority { target: t, prio });
                }
            }
            k.spawn(
                ThreadSpec::new(format!("gang{r}"), ThreadClass::Cosched, Prio::COSCHED),
                Box::new(Script::new(script)),
            );
        }
    }

    let mut runner = SoloRunner::new(k);
    runner.boot();
    let end = runner.run_until_apps_done(SimTime::ZERO + spec.horizon);
    let completed = runner.kernel.app_alive() == 0;

    let ms = |d: SimDur| d.nanos() as f64 / 1e6;
    let runtime_finish_ms: Vec<f64> = workers
        .iter()
        .map(|tids| {
            tids.iter()
                .map(|&t| {
                    ms(runner
                        .kernel
                        .thread_account(t, end)
                        .end
                        .since(SimTime::ZERO))
                })
                .fold(0.0, f64::max)
        })
        .collect();
    let makespan_ms = runtime_finish_ms.iter().copied().fold(0.0, f64::max);
    let first = runtime_finish_ms.iter().copied().fold(f64::MAX, f64::min);
    let runq_wait_ms: f64 = workers
        .iter()
        .flatten()
        .map(|&t| ms(runner.kernel.thread_account(t, end).runq_wait))
        .sum();
    OversubRow {
        dispatcher: kind.as_str().into(),
        gang,
        completed,
        makespan_ms,
        finish_spread_ms: makespan_ms - first,
        runtime_finish_ms,
        dispatches: runner.kernel.stats().dispatches,
        preemptions: runner.kernel.stats().preemptions,
        runq_wait_ms,
    }
}

/// The full comparison grid: every dispatcher, gangs off and on.
pub fn oversub_comparison(spec: &OversubSpec) -> Vec<OversubRow> {
    let mut rows = Vec::new();
    for kind in DispatcherKind::ALL {
        for gang in [false, true] {
            rows.push(run_oversub(spec, kind, gang));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_cells_complete_and_are_deterministic() {
        let spec = OversubSpec::quick();
        let rows = oversub_comparison(&spec);
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert!(
                row.completed,
                "{}/gang={} did not finish",
                row.dispatcher, row.gang
            );
            assert!(row.dispatches > 0);
            assert!(row.makespan_ms > 0.0);
        }
        assert_eq!(rows, oversub_comparison(&spec), "rows not deterministic");
    }

    #[test]
    fn gangs_serialize_runtimes_under_aix() {
        // With absolute priorities, gang windows hand the whole node to
        // one runtime at a time: the finish spread between runtimes must
        // be far larger than under the free-for-all, where equal-priority
        // round-robin finishes them nearly together.
        let spec = OversubSpec::default();
        let free = run_oversub(&spec, DispatcherKind::Aix, false);
        let ganged = run_oversub(&spec, DispatcherKind::Aix, true);
        assert!(free.completed && ganged.completed);
        assert!(
            ganged.finish_spread_ms > free.finish_spread_ms * 2.0,
            "gang spread {:.1}ms vs free spread {:.1}ms",
            ganged.finish_spread_ms,
            free.finish_spread_ms
        );
    }

    #[test]
    fn fair_policies_blunt_gang_windows() {
        // CFS turns the FAVORED/UNFAVORED boost into a weight ratio, not
        // an absolute grant, so the favored runtime's exclusivity — and
        // with it the finish spread — shrinks relative to AIX gangs.
        let spec = OversubSpec::default();
        let aix = run_oversub(&spec, DispatcherKind::Aix, true);
        let cfs = run_oversub(&spec, DispatcherKind::Cfs, true);
        assert!(aix.completed && cfs.completed);
        assert!(
            cfs.finish_spread_ms < aix.finish_spread_ms,
            "CFS spread {:.1}ms should undercut AIX spread {:.1}ms",
            cfs.finish_spread_ms,
            aix.finish_spread_ms
        );
    }
}
