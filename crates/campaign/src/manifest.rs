//! Campaign bookkeeping: what ran, from where, and how fast.

use serde::{Deserialize, Serialize};
use std::io;
use std::path::{Path, PathBuf};

/// Throughput and cache statistics for one campaign invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignMetrics {
    /// Points in the campaign.
    pub points_total: usize,
    /// Points freshly simulated this invocation.
    pub points_run: usize,
    /// Points served from the cache.
    pub cache_hits: usize,
    /// Cache entries found on disk but unusable (truncated, unparseable,
    /// or wrong schema/key); each was re-run and overwritten.
    #[serde(default)]
    pub corrupt_entries: u64,
    /// Simulator events processed by the fresh runs.
    pub sim_events: u64,
    /// Wall-clock seconds for the whole campaign.
    pub wall_s: f64,
    /// Simulated events per wall-clock second (fresh runs only).
    pub events_per_sec: f64,
}

/// One point's row in the manifest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ManifestPoint {
    /// Position in the campaign (result order).
    pub index: usize,
    /// Content key (cache file stem).
    pub key: String,
    /// Workload family.
    pub family: String,
    /// Node count.
    pub nodes: u32,
    /// Task count across the machine.
    pub procs: u32,
    /// Master seed.
    pub seed: u64,
    /// Served from cache?
    pub cached: bool,
    /// Did the run complete before its horizon?
    pub completed: bool,
    /// Headline metric.
    pub mean_allreduce_us: f64,
    /// Simulator events the point's run processed (deterministic: cache
    /// hits report the same value the original run did).
    pub events: u64,
    /// Per-point named metrics carried through from the run
    /// ([`crate::PointResult::extra`]).
    #[serde(default)]
    pub extra: std::collections::BTreeMap<String, f64>,
}

/// The on-disk record of one campaign invocation, written next to the
/// cache entries it references.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignManifest {
    /// Campaign label (e.g. `"fig3"`).
    pub label: String,
    /// Cache schema the entries were written under.
    pub schema: u32,
    /// Per-point records, in result order.
    pub points: Vec<ManifestPoint>,
    /// Invocation statistics.
    pub metrics: CampaignMetrics,
}

impl CampaignManifest {
    /// Write as `<label>.manifest.json` under `dir`; returns the path.
    pub fn write(&self, dir: &Path) -> io::Result<PathBuf> {
        let stem: String = self
            .label
            .chars()
            .map(|c| {
                if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                    c
                } else {
                    '_'
                }
            })
            .collect();
        let path = dir.join(format!("{stem}.manifest.json"));
        let json = serde_json::to_string_pretty(self).expect("manifest serializes");
        std::fs::write(&path, json + "\n")?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_round_trips_and_sanitizes_label() {
        let m = CampaignManifest {
            label: "fig3/quick".into(),
            schema: 1,
            points: vec![ManifestPoint {
                index: 0,
                key: "deadbeef".into(),
                family: "aggregate".into(),
                nodes: 4,
                procs: 64,
                seed: 42,
                cached: false,
                completed: true,
                mean_allreduce_us: 321.0,
                events: 12_345,
                extra: std::collections::BTreeMap::new(),
            }],
            metrics: CampaignMetrics {
                points_total: 1,
                points_run: 1,
                cache_hits: 0,
                corrupt_entries: 0,
                sim_events: 1000,
                wall_s: 0.5,
                events_per_sec: 2000.0,
            },
        };
        let dir = std::env::temp_dir().join(format!("pa-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = m.write(&dir).unwrap();
        assert!(path
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .starts_with("fig3_quick"));
        let back: CampaignManifest =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, m);
    }
}
