//! SHA-256 for content-addressing cached results. The implementation
//! lives in `pa_simkit::hash` (the checkpoint layer content-hashes its
//! state files with the same primitive); this module re-exports it under
//! the historical path.

pub use pa_simkit::hash::{sha256_hex, Sha256};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fips_vector_via_reexport() {
        assert_eq!(
            sha256_hex(b"abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        let mut h = Sha256::new();
        h.update(b"abc");
        let hex: String = h.finalize().iter().map(|b| format!("{b:02x}")).collect();
        assert_eq!(hex, sha256_hex(b"abc"));
    }
}
