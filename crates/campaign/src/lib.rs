//! Experiment campaigns: run many simulation points, in parallel, with
//! a content-addressed on-disk cache.

pub mod cache;
pub mod executor;
pub mod hash;
pub mod manifest;
pub mod spec;

pub use cache::{Cache, CacheStatus, PointResult, CACHE_SCHEMA_VERSION};
pub use executor::{
    run_campaign, run_campaign_resumable, CampaignOutcome, CheckpointCtx, ExecutorConfig,
    TruncatedPoints,
};
pub use manifest::{CampaignManifest, CampaignMetrics};
pub use spec::PointSpec;
