//! Content-addressed on-disk result cache: one JSON file per point at
//! `results/cache/<key>.json`, where `<key>` is the spec's content hash.
//! Invalidation is purely by key: changing any spec field or the schema
//! version changes the key, so stale entries are never read — only
//! orphaned (and can be deleted freely).

use crate::spec::PointSpec;
use pa_core::RunOutput;
use pa_mpi::OpKind;
use serde::value::{get, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bump when the meaning of cached fields changes; old entries become
/// unreachable (different keys) rather than misread.
/// v3: `PointSpec` gained `link_bandwidth` and `PointResult.extra` gained
/// the `fabric.link_*` contention counters.
/// v4: campaign points may be produced by checkpoint-resumed runs; bumped
/// with the engine checkpoint/restore feature so entries written before
/// the restore path existed are unreachable.
/// v5: `PointSpec` gained the `policy` field for multi-job batch points;
/// v4 entries (which lack it) must read as misses, never as results for
/// a policy-bearing spec.
/// v6: `PointResult.extra` gained the `blame.*` wait-state category sums
/// (and the kernel's wait-state accounting changed what a run records);
/// v5 entries lack them and must not satisfy blame-merging campaigns.
/// v7: the event queue gained true cancellation — kernel-voided segment
/// timers are removed from the calendar instead of popping as stale
/// no-ops — so per-run event counts shifted; v6 entries would disagree
/// with a fresh run of the same spec.
/// v8: `PointSpec` gained the `dispatcher` canonical key (pluggable
/// dispatcher policies) and `PointResult.extra` gained the
/// `kernel.dispatches` counter; v7 entries lack both and must read as
/// misses, never as results for a dispatcher-bearing spec.
pub const CACHE_SCHEMA_VERSION: u32 = 8;

/// Whether a point was served from disk or freshly simulated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// Served from `results/cache`.
    Hit,
    /// Simulated this invocation.
    Miss,
}

/// The cacheable extract of one run. `RunOutput` itself holds the whole
/// post-run cluster and is deliberately not serialized; campaigns cache
/// the scalars the figures and tables consume.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PointResult {
    /// Mean per-rank Allreduce time, µs (the scaling figures' y-axis).
    pub mean_allreduce_us: f64,
    /// Simulated job duration, seconds.
    pub wall_s: f64,
    /// Did every rank exit before the horizon?
    pub completed: bool,
    /// Events the simulator processed (throughput metric input).
    pub events: u64,
    /// Driver-specific extra scalars (e.g. p99 for the timer table).
    pub extra: BTreeMap<String, f64>,
}

impl PointResult {
    /// Standard extraction from a finished run.
    pub fn from_run(out: &RunOutput) -> PointResult {
        let mut extra = BTreeMap::new();
        // Link-contention counters ride along so sweeps can report
        // queueing without re-running cached points. Both are exact u64
        // counts; f64 is lossless far beyond any realistic run.
        extra.insert("fabric.link_waits".into(), out.sim.link_waits() as f64);
        extra.insert("fabric.link_wait_ns".into(), out.sim.link_wait_ns() as f64);
        // Total dispatcher decisions across the cluster: the activity
        // proof per dispatcher policy (CI asserts it nonzero) and a cheap
        // context-switch-pressure signal for fair-vs-AIX comparisons.
        let dispatches: u64 = (0..out.sim.nodes())
            .map(|n| out.sim.kernel(n).stats().dispatches)
            .sum();
        extra.insert("kernel.dispatches".into(), dispatches as f64);
        // Wait-state category sums (ns over all ranks). Exact u64/i64
        // counts; f64 is lossless far beyond any realistic run. Cached so
        // campaign blame totals merge without re-running points.
        let cats = pa_core::blame_totals(out);
        extra.insert("blame.compute_ns".into(), cats.compute_ns as f64);
        extra.insert("blame.coll_wait_ns".into(), cats.coll_wait_ns as f64);
        extra.insert("blame.runq_wait_ns".into(), cats.runq_wait_ns as f64);
        extra.insert("blame.noise_ns".into(), cats.noise_ns as f64);
        extra.insert("blame.io_wait_ns".into(), cats.io_wait_ns as f64);
        extra.insert("blame.overhead_ns".into(), cats.overhead_ns as f64);
        extra.insert("blame.wall_ns".into(), cats.total_ns() as f64);
        PointResult {
            mean_allreduce_us: out.mean_allreduce_us(),
            wall_s: out.wall.as_secs_f64(),
            completed: out.completed,
            events: out.events,
            extra,
        }
    }

    /// Extraction including the global per-call duration summary (what
    /// the timer table reports).
    pub fn from_run_with_global_summary(out: &RunOutput) -> PointResult {
        let s = out
            .job
            .recorder
            .lock()
            .unwrap()
            .global_dur_summary_us(OpKind::Allreduce);
        let mut r = PointResult::from_run(out);
        r.extra.insert("global_mean_us".into(), s.mean);
        r.extra.insert("global_p99_us".into(), s.p99);
        r.extra.insert("global_max_us".into(), s.max);
        r
    }
}

static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Handle on one cache directory.
#[derive(Debug)]
pub struct Cache {
    dir: PathBuf,
    /// Entries found on disk but unusable (unreadable, unparseable,
    /// wrong schema, wrong key, or a malformed result). Each reads as a
    /// miss — the point is re-run and the entry overwritten — but the
    /// count is surfaced so silent corruption is visible.
    corrupt: AtomicU64,
}

impl Cache {
    /// Open (creating if needed) a cache at `dir`.
    pub fn at(dir: impl Into<PathBuf>) -> io::Result<Cache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Cache {
            dir,
            corrupt: AtomicU64::new(0),
        })
    }

    /// The conventional location relative to the repo root.
    pub fn default_dir() -> PathBuf {
        PathBuf::from("results").join("cache")
    }

    /// The directory this cache lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// File that does (or would) hold `key`'s entry.
    pub fn path_for(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Read a stored result, if a valid entry for `key` exists. Corrupt
    /// or mismatched entries read as misses, never as wrong data or a
    /// panic; they are tallied in [`Cache::corrupt_entries`].
    pub fn lookup(&self, key: &str) -> Option<PointResult> {
        let text = match std::fs::read_to_string(self.path_for(key)) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.corrupt.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        let parsed = (|| {
            let value = serde_json::parse(&text).ok()?;
            let map = value.as_map()?;
            if get(map, "schema")?.as_u64()? != u64::from(CACHE_SCHEMA_VERSION) {
                return None;
            }
            if get(map, "key")?.as_str()? != key {
                return None;
            }
            PointResult::from_value(get(map, "result")?).ok()
        })();
        if parsed.is_none() {
            self.corrupt.fetch_add(1, Ordering::Relaxed);
        }
        parsed
    }

    /// Entries that existed on disk but read as misses (see
    /// [`Cache::lookup`]), accumulated over this handle's lifetime.
    pub fn corrupt_entries(&self) -> u64 {
        self.corrupt.load(Ordering::Relaxed)
    }

    /// Store an entry atomically (temp file + rename), so a concurrent
    /// reader sees either nothing or a complete entry.
    pub fn store<W: Serialize>(
        &self,
        key: &str,
        spec: &PointSpec<W>,
        result: &PointResult,
    ) -> io::Result<()> {
        let entry = Value::Map(vec![
            ("schema".into(), CACHE_SCHEMA_VERSION.to_value()),
            ("key".into(), key.to_value()),
            ("spec".into(), spec.to_value()),
            ("result".into(), result.to_value()),
        ]);
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}-{key}",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, entry.to_json_string_pretty() + "\n")?;
        std::fs::rename(&tmp, self.path_for(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::SchedOptions;
    use pa_mpi::MpiConfig;
    use pa_noise::NoiseProfile;

    fn spec() -> PointSpec<u32> {
        PointSpec {
            family: "unit".into(),
            nodes: 2,
            tasks_per_node: 4,
            cpus_per_node: 4,
            kernel: SchedOptions::vanilla(),
            cosched: None,
            noise: NoiseProfile::dedicated(),
            mpi: MpiConfig::default(),
            progress: None,
            workload: 1,
            seed: 5,
            horizon: None,
            link_bandwidth: None,
            policy: None,
            dispatcher: None,
        }
    }

    fn result() -> PointResult {
        let mut extra = BTreeMap::new();
        extra.insert("global_p99_us".into(), 123.5);
        PointResult {
            mean_allreduce_us: 456.25,
            wall_s: 1.5,
            completed: true,
            events: 100_000,
            extra,
        }
    }

    fn tmp_cache(tag: &str) -> Cache {
        let dir = std::env::temp_dir().join(format!("pa-cache-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Cache::at(dir).unwrap()
    }

    #[test]
    fn round_trip_preserves_result_exactly() {
        let cache = tmp_cache("roundtrip");
        let s = spec();
        let key = s.content_key();
        assert!(cache.lookup(&key).is_none(), "cold cache must miss");
        cache.store(&key, &s, &result()).unwrap();
        let back = cache.lookup(&key).expect("stored entry reads back");
        assert_eq!(back, result());
        assert_eq!(
            back.mean_allreduce_us.to_bits(),
            result().mean_allreduce_us.to_bits()
        );
    }

    #[test]
    fn key_mismatch_and_corruption_read_as_misses() {
        let cache = tmp_cache("corrupt");
        let s = spec();
        let key = s.content_key();
        cache.store(&key, &s, &result()).unwrap();
        assert_eq!(cache.corrupt_entries(), 0);
        // An absent entry is a plain miss, not corruption.
        assert!(cache.lookup(&"f".repeat(64)).is_none());
        assert_eq!(cache.corrupt_entries(), 0);
        // An entry stored under the wrong name must not satisfy lookups.
        let other = "0".repeat(64);
        std::fs::copy(cache.path_for(&key), cache.path_for(&other)).unwrap();
        assert!(cache.lookup(&other).is_none());
        assert_eq!(cache.corrupt_entries(), 1);
        // Truncated JSON (a half-written entry) reads as a miss, not an
        // error.
        std::fs::write(cache.path_for(&key), "{\"schema\": 1,").unwrap();
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.corrupt_entries(), 2);
        // Valid JSON from a different schema version also misses.
        std::fs::write(
            cache.path_for(&key),
            format!("{{\"schema\": 999, \"key\": \"{key}\"}}"),
        )
        .unwrap();
        assert!(cache.lookup(&key).is_none());
        assert_eq!(cache.corrupt_entries(), 3);
        // Re-running the point overwrites the bad entry in place.
        cache.store(&key, &s, &result()).unwrap();
        assert_eq!(cache.lookup(&key), Some(result()));
        assert_eq!(cache.corrupt_entries(), 3);
    }

    #[test]
    fn pre_policy_schema_entries_read_as_misses() {
        // Well-formed entries written under older schemas — v4 (before
        // `PointSpec.policy`) and v7 (before `PointSpec.dispatcher` and
        // the `kernel.dispatches` extra) — must read as misses under the
        // current schema, never as results; each also tallies as corrupt.
        for (tag, old) in [("schema-v4", 4u32), ("schema-v7", 7u32)] {
            let cache = tmp_cache(tag);
            let s = spec();
            let key = s.content_key();
            cache.store(&key, &s, &result()).unwrap();
            let entry = std::fs::read_to_string(cache.path_for(&key)).unwrap();
            let downgraded = entry.replacen(
                &format!("\"schema\": {CACHE_SCHEMA_VERSION}"),
                &format!("\"schema\": {old}"),
                1,
            );
            assert_ne!(entry, downgraded, "entry must carry the schema field");
            std::fs::write(cache.path_for(&key), downgraded).unwrap();
            assert!(
                cache.lookup(&key).is_none(),
                "v{old} entry must not satisfy a v{CACHE_SCHEMA_VERSION} lookup"
            );
            assert_eq!(cache.corrupt_entries(), 1);
        }
    }
}
