//! The serializable description of one experiment point: everything that
//! determines a run's outcome, and nothing that doesn't. Two specs with
//! equal content keys produce bit-identical results.

use crate::cache::CACHE_SCHEMA_VERSION;
use crate::hash::sha256_hex;
use pa_core::{CoschedSetup, Experiment};
use pa_kernel::SchedOptions;
use pa_mpi::{MpiConfig, ProgressSpec};
use pa_noise::NoiseProfile;
use pa_simkit::SimDur;
use serde::value::{get, Value};
use serde::{Deserialize, Error, Serialize};

/// One point of a campaign, generic over the workload description `W`
/// (e.g. `AggregateSpec` for the scaling figures). The workload crates
/// supply `W` and the runner that turns a spec into results; this crate
/// owns identity, caching, and execution.
#[derive(Debug, Clone)]
pub struct PointSpec<W> {
    /// Workload family tag (e.g. `"aggregate"`); part of the cache key so
    /// two families whose `W` serialize identically can never collide.
    pub family: String,
    /// Node count.
    pub nodes: u32,
    /// Tasks per node.
    pub tasks_per_node: u32,
    /// CPUs per node.
    pub cpus_per_node: u8,
    /// Kernel option block.
    pub kernel: SchedOptions,
    /// Co-scheduler deployment, if any.
    pub cosched: Option<CoschedSetup>,
    /// Interference profile.
    pub noise: NoiseProfile,
    /// MPI library configuration.
    pub mpi: MpiConfig,
    /// MPI timer threads.
    pub progress: Option<ProgressSpec>,
    /// Workload shape.
    pub workload: W,
    /// Master seed.
    pub seed: u64,
    /// Horizon override: `Some` marks a run-for-simulated-time point
    /// (expected to be cut), `None` a fixed-work point (must complete).
    pub horizon: Option<SimDur>,
    /// Per-node link capacity, bytes/sec; `None` is the unlimited legacy
    /// fabric with no contention.
    pub link_bandwidth: Option<f64>,
    /// Batch placement policy name for multi-job points (`pa-jobs`
    /// families); `None` for single-job points.
    pub policy: Option<String>,
    /// Dispatcher policy name (`"cfs"`, `"eevdf"`); `None` means the AIX
    /// default. Redundant with `kernel.dispatcher` but kept as an explicit
    /// canonical key so per-dispatcher sweeps are visible in the spec
    /// itself; [`PointSpec::experiment`] applies it over the kernel block.
    pub dispatcher: Option<String>,
}

// Manual impls: the derive macro in the serde shim does not handle
// generic types. Field order here defines the canonical form the content
// key hashes — append new fields at the end and bump
// `CACHE_SCHEMA_VERSION` when semantics change.
impl<W: Serialize> Serialize for PointSpec<W> {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("family".into(), self.family.to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("tasks_per_node".into(), self.tasks_per_node.to_value()),
            ("cpus_per_node".into(), self.cpus_per_node.to_value()),
            ("kernel".into(), self.kernel.to_value()),
            ("cosched".into(), self.cosched.to_value()),
            ("noise".into(), self.noise.to_value()),
            ("mpi".into(), self.mpi.to_value()),
            ("progress".into(), self.progress.to_value()),
            ("workload".into(), self.workload.to_value()),
            ("seed".into(), self.seed.to_value()),
            ("horizon".into(), self.horizon.to_value()),
            ("link_bandwidth".into(), self.link_bandwidth.to_value()),
            ("policy".into(), self.policy.to_value()),
            ("dispatcher".into(), self.dispatcher.to_value()),
        ])
    }
}

impl<W: Deserialize> Deserialize for PointSpec<W> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::expected("map", "PointSpec"))?;
        fn field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
            get(map, name)
                .ok_or_else(|| Error::missing(name, "PointSpec"))
                .and_then(T::from_value)
        }
        Ok(PointSpec {
            family: field(map, "family")?,
            nodes: field(map, "nodes")?,
            tasks_per_node: field(map, "tasks_per_node")?,
            cpus_per_node: field(map, "cpus_per_node")?,
            kernel: field(map, "kernel")?,
            cosched: field(map, "cosched")?,
            noise: field(map, "noise")?,
            mpi: field(map, "mpi")?,
            progress: field(map, "progress")?,
            workload: field(map, "workload")?,
            seed: field(map, "seed")?,
            horizon: field(map, "horizon")?,
            link_bandwidth: field(map, "link_bandwidth")?,
            policy: field(map, "policy")?,
            dispatcher: field(map, "dispatcher")?,
        })
    }
}

impl<W> PointSpec<W> {
    /// Tasks across the machine (the figures' x-axis).
    pub fn procs(&self) -> u32 {
        self.nodes * self.tasks_per_node
    }

    /// Assemble the experiment this spec describes. The caller supplies
    /// the per-rank workload factory built from `self.workload`.
    pub fn experiment(&self) -> Experiment {
        let mut kernel = self.kernel;
        if let Some(name) = &self.dispatcher {
            kernel.dispatcher = pa_kernel::DispatcherKind::parse(name)
                .unwrap_or_else(|| panic!("unknown dispatcher '{name}' in spec"));
        }
        let mut e = Experiment::new(self.nodes, self.tasks_per_node)
            .with_cpus_per_node(self.cpus_per_node)
            .with_kernel(kernel)
            .with_noise(self.noise.clone())
            .with_mpi(self.mpi)
            .with_progress(self.progress)
            .with_seed(self.seed)
            .with_link_bandwidth(self.link_bandwidth);
        if let Some(h) = self.horizon {
            e = e.with_horizon(h);
        }
        if let Some(cs) = self.cosched {
            e = e.with_cosched(cs);
        }
        e
    }
}

impl<W: Serialize> PointSpec<W> {
    /// Content key: SHA-256 over the schema version and the canonical
    /// JSON form. Any observable change to the spec — or to the cache
    /// schema — yields a different key, which is the cache's only
    /// invalidation rule.
    pub fn content_key(&self) -> String {
        let json = serde_json::to_string(self).expect("spec serializes");
        sha256_hex(format!("pa-campaign/v{CACHE_SCHEMA_VERSION}:{json}").as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> PointSpec<u32> {
        PointSpec {
            family: "unit".into(),
            nodes: 4,
            tasks_per_node: 16,
            cpus_per_node: 16,
            kernel: SchedOptions::vanilla(),
            cosched: Some(CoschedSetup::default()),
            noise: NoiseProfile::production(),
            mpi: MpiConfig::default(),
            progress: Some(ProgressSpec::default()),
            workload: 7,
            seed: 42,
            horizon: None,
            link_bandwidth: None,
            policy: None,
            dispatcher: None,
        }
    }

    #[test]
    fn serialization_round_trips() {
        let s = spec();
        let json = serde_json::to_string(&s).unwrap();
        let back: PointSpec<u32> = serde_json::from_str(&json).unwrap();
        // Compare through the canonical form (NoiseProfile has no
        // PartialEq): equal JSON means equal content keys.
        assert_eq!(serde_json::to_string(&back).unwrap(), json);
        assert_eq!(back.content_key(), s.content_key());
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        let a = spec();
        assert_eq!(a.content_key(), spec().content_key());
        let mut b = spec();
        b.seed = 43;
        assert_ne!(a.content_key(), b.content_key());
        let mut c = spec();
        c.kernel = SchedOptions::prototype();
        assert_ne!(a.content_key(), c.content_key());
        let mut d = spec();
        d.family = "other".into();
        assert_ne!(a.content_key(), d.content_key());
        let mut e = spec();
        e.link_bandwidth = Some(350e6);
        assert_ne!(a.content_key(), e.content_key());
        let mut f = spec();
        f.policy = Some("backfill".into());
        assert_ne!(a.content_key(), f.content_key());
        let mut g = spec();
        g.dispatcher = Some("cfs".into());
        assert_ne!(a.content_key(), g.content_key());
    }

    #[test]
    fn experiment_reflects_spec() {
        let e = spec().experiment();
        assert_eq!(e.nodes, 4);
        assert_eq!(e.tasks_per_node, 16);
        assert!(e.cosched.is_some());
        assert_eq!(e.seed, 42);
        assert_eq!(e.kernel.dispatcher, pa_kernel::DispatcherKind::Aix);

        let mut s = spec();
        s.dispatcher = Some("eevdf".into());
        assert_eq!(
            s.experiment().kernel.dispatcher,
            pa_kernel::DispatcherKind::Eevdf
        );
    }
}
