//! The campaign executor: a crossbeam thread pool pulling points from a
//! shared queue. Each DES run is single-threaded internally and fully
//! determined by its spec, so results are bit-identical at any `--jobs`;
//! the executor restores submission order before returning.

use crate::cache::{Cache, PointResult};
use crate::manifest::{CampaignManifest, CampaignMetrics, ManifestPoint};
use crate::spec::PointSpec;
use pa_simkit::SimDur;
use serde::Serialize;
use std::fmt;
use std::path::PathBuf;
use std::time::Instant;

/// How a campaign executes: parallelism, caching, reporting.
#[derive(Debug)]
pub struct ExecutorConfig {
    /// Worker threads (clamped to at least 1).
    pub jobs: usize,
    /// Result cache; `None` disables caching entirely.
    pub cache: Option<Cache>,
    /// Ignore existing cache entries (but still store fresh results).
    pub rerun: bool,
    /// Print per-point progress lines to stderr (stdout stays reserved
    /// for figure output, which must be byte-identical across runs).
    pub progress: bool,
    /// Campaign label, used for progress lines and the manifest name.
    pub label: String,
    /// Periodic mid-run checkpoint interval (sim time) for fresh points.
    /// Requires a cache (checkpoints live under `<cache>/checkpoints/`,
    /// keyed by point content hash); `None` disables checkpointing.
    pub checkpoint_every: Option<SimDur>,
}

impl ExecutorConfig {
    /// One worker, no cache, no progress — the in-process default used
    /// by library helpers and tests.
    pub fn serial(label: impl Into<String>) -> ExecutorConfig {
        ExecutorConfig {
            jobs: 1,
            cache: None,
            rerun: false,
            progress: false,
            label: label.into(),
            checkpoint_every: None,
        }
    }

    /// Set the worker count.
    pub fn with_jobs(mut self, jobs: usize) -> ExecutorConfig {
        self.jobs = jobs;
        self
    }

    /// Attach a cache.
    pub fn with_cache(mut self, cache: Cache) -> ExecutorConfig {
        self.cache = Some(cache);
        self
    }

    /// Checkpoint fresh points every `every` of sim time (needs a cache).
    pub fn with_checkpoint_every(mut self, every: SimDur) -> ExecutorConfig {
        self.checkpoint_every = Some(every);
        self
    }
}

/// Mid-run checkpoint context the executor hands a resumable runner for
/// one fresh point: where the point's checkpoint lives (restore from it
/// when present — a previous invocation was killed mid-run) and how often
/// to write it.
#[derive(Debug, Clone)]
pub struct CheckpointCtx {
    /// Checkpoint file, `<cache>/checkpoints/<content_key>.json`.
    pub path: PathBuf,
    /// Periodic checkpoint interval (sim time).
    pub every: SimDur,
}

/// Everything a campaign produced.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// One result per input spec, in input order.
    pub results: Vec<PointResult>,
    /// Invocation statistics.
    pub metrics: CampaignMetrics,
    /// Indices of fixed-work points (no horizon override) that were
    /// nevertheless cut off — each one a failed reproduction.
    pub truncated: Vec<usize>,
}

/// Error listing the points a campaign failed to complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncatedPoints {
    /// Campaign label.
    pub label: String,
    /// Offending point indices.
    pub indices: Vec<usize>,
}

impl fmt::Display for TruncatedPoints {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "campaign '{}': {} fixed-work point(s) cut by the horizon (indices {:?})",
            self.label,
            self.indices.len(),
            self.indices
        )
    }
}

impl CampaignOutcome {
    /// Fail if any fixed-work point was cut by the horizon.
    pub fn ensure_complete(&self, label: &str) -> Result<(), TruncatedPoints> {
        if self.truncated.is_empty() {
            Ok(())
        } else {
            Err(TruncatedPoints {
                label: label.to_string(),
                indices: self.truncated.clone(),
            })
        }
    }
}

/// One worker-to-reporter message. Workers never print: every progress
/// line flows through this single channel and is written by the caller
/// thread, so `--jobs N` output is never torn across threads.
enum WorkerMsg {
    /// A fresh (uncached) simulation is starting.
    Started { index: usize },
    /// A point finished (fresh run or cache hit).
    Done {
        index: usize,
        result: PointResult,
        cached: bool,
    },
}

/// Run every spec through `runner`, in parallel, consulting the cache.
///
/// `runner` must be a pure function of the spec (the DES guarantees
/// this: one seed, one single-threaded simulation); under that contract
/// the returned results are identical for any `jobs` value.
pub fn run_campaign<W, F>(
    specs: &[PointSpec<W>],
    cfg: &ExecutorConfig,
    runner: F,
) -> CampaignOutcome
where
    W: Serialize + Sync,
    F: Fn(&PointSpec<W>) -> PointResult + Sync,
{
    run_campaign_resumable(specs, cfg, |spec, _ckpt| runner(spec))
}

/// [`run_campaign`] for checkpoint-aware runners: fresh points receive a
/// [`CheckpointCtx`] (when the config arms `checkpoint_every` and has a
/// cache) telling them where to write periodic checkpoints — and where to
/// restore from if an earlier invocation died mid-point. Restored tails
/// replay bit-identically, so results still match an uninterrupted
/// campaign's; a point's checkpoint is deleted once its result is cached.
pub fn run_campaign_resumable<W, F>(
    specs: &[PointSpec<W>],
    cfg: &ExecutorConfig,
    runner: F,
) -> CampaignOutcome
where
    W: Serialize + Sync,
    F: Fn(&PointSpec<W>, Option<&CheckpointCtx>) -> PointResult + Sync,
{
    let started = Instant::now();
    let total = specs.len();
    let keys: Vec<String> = specs.iter().map(|s| s.content_key()).collect();

    let (task_tx, task_rx) = crossbeam::channel::unbounded::<usize>();
    let (msg_tx, msg_rx) = crossbeam::channel::unbounded::<WorkerMsg>();
    for i in 0..total {
        task_tx.send(i).expect("queue open");
    }
    drop(task_tx);

    let jobs = cfg.jobs.max(1).min(total.max(1));
    let cache = cfg.cache.as_ref();
    let corrupt_before = cache.map_or(0, |c| c.corrupt_entries());
    let runner = &runner;
    let keys_ref = &keys;

    let mut slots: Vec<Option<(PointResult, bool)>> = (0..total).map(|_| None).collect();
    crossbeam::scope(|s| {
        for _ in 0..jobs {
            let task_rx = task_rx.clone();
            let msg_tx = msg_tx.clone();
            s.spawn(move |_| {
                while let Ok(i) = task_rx.recv() {
                    let spec = &specs[i];
                    let key = &keys_ref[i];
                    let cached_hit = match cache {
                        Some(c) if !cfg.rerun => c.lookup(key),
                        _ => None,
                    };
                    let (result, cached) = match cached_hit {
                        Some(r) => (r, true),
                        None => {
                            let _ = msg_tx.send(WorkerMsg::Started { index: i });
                            let ckpt = match (cache, cfg.checkpoint_every) {
                                (Some(c), Some(every)) => Some(CheckpointCtx {
                                    path: c.dir().join("checkpoints").join(format!("{key}.json")),
                                    every,
                                }),
                                _ => None,
                            };
                            let r = runner(spec, ckpt.as_ref());
                            if let Some(c) = cache {
                                let _ = c.store(key, spec, &r);
                            }
                            // The result is durable now; the mid-run
                            // checkpoint has served its purpose.
                            if let Some(cx) = &ckpt {
                                let _ = std::fs::remove_file(&cx.path);
                            }
                            (r, false)
                        }
                    };
                    if msg_tx
                        .send(WorkerMsg::Done {
                            index: i,
                            result,
                            cached,
                        })
                        .is_err()
                    {
                        break;
                    }
                }
            });
        }
        drop(msg_tx);
        while let Ok(msg) = msg_rx.recv() {
            match msg {
                WorkerMsg::Started { index } => {
                    if cfg.progress {
                        eprintln!(
                            "  [{}] point {}/{total}: {} procs seed {} — running...",
                            cfg.label,
                            index + 1,
                            specs[index].procs(),
                            specs[index].seed,
                        );
                    }
                }
                WorkerMsg::Done {
                    index,
                    result,
                    cached,
                } => {
                    if cfg.progress {
                        eprintln!(
                            "  [{}] point {}/{total}: {} procs seed {} — {} ({:.1} µs)",
                            cfg.label,
                            index + 1,
                            specs[index].procs(),
                            specs[index].seed,
                            if cached { "cache hit" } else { "ran" },
                            result.mean_allreduce_us,
                        );
                    }
                    slots[index] = Some((result, cached));
                }
            }
        }
    })
    .expect("campaign worker panicked");

    let wall_s = started.elapsed().as_secs_f64();
    let mut results = Vec::with_capacity(total);
    let mut cache_hits = 0usize;
    let mut sim_events = 0u64;
    let mut cached_flags = Vec::with_capacity(total);
    for slot in slots {
        let (r, cached) = slot.expect("every point produced a result");
        if cached {
            cache_hits += 1;
        } else {
            sim_events += r.events;
        }
        cached_flags.push(cached);
        results.push(r);
    }
    let truncated: Vec<usize> = specs
        .iter()
        .zip(&results)
        .enumerate()
        .filter(|(_, (s, r))| s.horizon.is_none() && !r.completed)
        .map(|(i, _)| i)
        .collect();
    let corrupt_entries = cache.map_or(0, |c| c.corrupt_entries()) - corrupt_before;
    let metrics = CampaignMetrics {
        points_total: total,
        points_run: total - cache_hits,
        cache_hits,
        corrupt_entries,
        sim_events,
        wall_s,
        events_per_sec: if wall_s > 0.0 {
            sim_events as f64 / wall_s
        } else {
            0.0
        },
    };
    if cfg.progress {
        eprintln!(
            "  [{}] {} points ({} cache hits) in {:.2}s — {:.0} events/s",
            cfg.label, total, cache_hits, wall_s, metrics.events_per_sec
        );
        if corrupt_entries > 0 {
            eprintln!(
                "  [{}] warning: {corrupt_entries} corrupt cache entr{} re-run and overwritten",
                cfg.label,
                if corrupt_entries == 1 { "y" } else { "ies" }
            );
        }
    }

    if let Some(c) = cache {
        let manifest = CampaignManifest {
            label: cfg.label.clone(),
            schema: crate::cache::CACHE_SCHEMA_VERSION,
            points: specs
                .iter()
                .enumerate()
                .map(|(i, s)| ManifestPoint {
                    index: i,
                    key: keys[i].clone(),
                    family: s.family.clone(),
                    nodes: s.nodes,
                    procs: s.procs(),
                    seed: s.seed,
                    cached: cached_flags[i],
                    completed: results[i].completed,
                    mean_allreduce_us: results[i].mean_allreduce_us,
                    events: results[i].events,
                    extra: results[i].extra.clone(),
                })
                .collect(),
            metrics: metrics.clone(),
        };
        if let Err(e) = manifest.write(c.dir()) {
            eprintln!("  [{}] warning: manifest not written: {e}", cfg.label);
        }
    }

    CampaignOutcome {
        results,
        metrics,
        truncated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pa_kernel::SchedOptions;
    use pa_mpi::MpiConfig;
    use pa_noise::NoiseProfile;
    use std::collections::BTreeMap;

    fn spec(seed: u64) -> PointSpec<u64> {
        PointSpec {
            family: "unit".into(),
            nodes: 2,
            tasks_per_node: 2,
            cpus_per_node: 4,
            kernel: SchedOptions::vanilla(),
            cosched: None,
            noise: NoiseProfile::dedicated(),
            mpi: MpiConfig::default(),
            progress: None,
            workload: seed * 10,
            seed,
            horizon: None,
            link_bandwidth: None,
            policy: None,
            dispatcher: None,
        }
    }

    /// A cheap deterministic stand-in for a DES run.
    fn fake_runner(s: &PointSpec<u64>) -> PointResult {
        PointResult {
            mean_allreduce_us: (s.seed * 3 + s.workload) as f64,
            wall_s: 0.0,
            completed: s.seed != 99,
            events: s.seed,
            extra: BTreeMap::new(),
        }
    }

    #[test]
    fn results_keep_submission_order_at_any_job_count() {
        let specs: Vec<_> = (0..20).map(spec).collect();
        let serial = run_campaign(&specs, &ExecutorConfig::serial("t"), fake_runner);
        let parallel = run_campaign(
            &specs,
            &ExecutorConfig::serial("t").with_jobs(4),
            fake_runner,
        );
        assert_eq!(serial.results, parallel.results);
        assert_eq!(serial.results[7].mean_allreduce_us, 7.0 * 3.0 + 70.0);
        assert_eq!(serial.metrics.points_total, 20);
        assert_eq!(serial.metrics.cache_hits, 0);
    }

    #[test]
    fn cache_turns_second_run_into_all_hits() {
        let dir = std::env::temp_dir().join(format!("pa-exec-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let specs: Vec<_> = (0..6).map(spec).collect();
        let cfg = |rerun| ExecutorConfig {
            jobs: 3,
            cache: Some(Cache::at(&dir).unwrap()),
            rerun,
            progress: false,
            label: "cached".into(),
            checkpoint_every: None,
        };
        let first = run_campaign(&specs, &cfg(false), fake_runner);
        assert_eq!(first.metrics.cache_hits, 0);
        let second = run_campaign(&specs, &cfg(false), fake_runner);
        assert_eq!(second.metrics.cache_hits, 6);
        assert_eq!(first.results, second.results);
        // --rerun bypasses lookups but results stay identical.
        let third = run_campaign(&specs, &cfg(true), fake_runner);
        assert_eq!(third.metrics.cache_hits, 0);
        assert_eq!(first.results, third.results);
        // The manifest was written alongside the entries.
        assert!(dir.join("cached.manifest.json").exists());
    }

    #[test]
    fn corrupt_cache_entries_are_rerun_not_fatal() {
        let dir = std::env::temp_dir().join(format!("pa-exec-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let specs: Vec<_> = (0..4).map(spec).collect();
        let cfg = || ExecutorConfig {
            jobs: 2,
            cache: Some(Cache::at(&dir).unwrap()),
            rerun: false,
            progress: false,
            label: "corrupt".into(),
            checkpoint_every: None,
        };
        let first = run_campaign(&specs, &cfg(), fake_runner);
        assert_eq!(first.metrics.corrupt_entries, 0);
        // Truncate one entry (a half-written file) and garble another
        // with a wrong-schema body; the campaign must re-run both points
        // and overwrite the bad entries, not abort.
        let c = Cache::at(&dir).unwrap();
        std::fs::write(c.path_for(&specs[1].content_key()), "{\"schema\": 1,").unwrap();
        std::fs::write(
            c.path_for(&specs[2].content_key()),
            "{\"schema\": 999, \"key\": \"nope\"}",
        )
        .unwrap();
        let second = run_campaign(&specs, &cfg(), fake_runner);
        assert_eq!(second.results, first.results);
        assert_eq!(second.metrics.cache_hits, 2);
        assert_eq!(second.metrics.points_run, 2);
        assert_eq!(second.metrics.corrupt_entries, 2);
        // The overwritten entries now serve hits again.
        let third = run_campaign(&specs, &cfg(), fake_runner);
        assert_eq!(third.metrics.cache_hits, 4);
        assert_eq!(third.metrics.corrupt_entries, 0);
    }

    #[test]
    fn truncated_fixed_work_points_are_flagged() {
        let mut specs = vec![spec(1), spec(99), spec(3)];
        let out = run_campaign(&specs, &ExecutorConfig::serial("t"), fake_runner);
        assert_eq!(out.truncated, vec![1]);
        assert!(out.ensure_complete("t").is_err());
        // A horizon-bounded point is allowed to be cut.
        specs[1].horizon = Some(pa_simkit::SimDur::from_millis(10));
        let out = run_campaign(&specs, &ExecutorConfig::serial("t"), fake_runner);
        assert!(out.truncated.is_empty());
        assert!(out.ensure_complete("t").is_ok());
    }
}
