//! Wait-state accounting and critical-path blame attribution.
//!
//! The paper's core claim is causal — OS noise hits one rank, barriers
//! amplify it across all ranks — and this crate turns that mechanism
//! into a computed artifact. It consumes only deterministic,
//! simulation-derived inputs (per-thread kernel accounts, collective
//! timing samples, per-node link counters) and produces a
//! [`BlameReport`]: per-rank wall-time decomposition with an exact-sum
//! invariant, a happens-before critical path with per-category time on
//! it, per-node rankings, and top noise/link culprits. The report's
//! canonical JSON is byte-identical at any `--sim-threads`/`--jobs`
//! because every input already is.
//!
//! ## The wait-state model
//!
//! Each rank's wall time splits into six exhaustive, mutually exclusive
//! categories, in integer nanoseconds:
//!
//! * `compute` — workload compute completed by the rank program,
//! * `coll_wait` — collective/message wait: busy-poll spin plus
//!   blocked-receive time,
//! * `runq_wait` — ready-queue time before dispatch (where daemon
//!   preemption and gang-stagger idle manifest),
//! * `noise` — device-interrupt debt served inside the rank's segments,
//! * `io_wait` — blocked on I/O completions or callout sleeps,
//! * `overhead` — the signed residual: send/recv/context-switch costs,
//!   collective-internal reduce work, tick/IPI steal. Signed because a
//!   horizon cut can leave charged-but-unserved interference debt.
//!
//! The invariant `wall == compute + coll_wait + runq_wait + noise +
//! io_wait + overhead` holds *exactly* — it is checked by
//! [`RankAccount::check_sum`] and proptested at the workspace level.
//! Link-capacity wait is reported as a per-node overlay rather than a
//! seventh category: a link-delayed message surfaces on the receiving
//! rank as collective wait, and the per-node link counters say how much
//! of it the fabric induced.

use pa_simkit::{report, Table};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

mod path;

pub use path::{CriticalPath, OpSpan, PathNode};

/// The six-way wall-time decomposition, in integer nanoseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Categories {
    /// Useful workload compute.
    pub compute_ns: u64,
    /// Barrier/collective wait: poll spin + blocked receives.
    pub coll_wait_ns: u64,
    /// Ready-queue (dispatch) delay.
    pub runq_wait_ns: u64,
    /// Noise-daemon preemption served as interrupt debt.
    pub noise_ns: u64,
    /// I/O and sleep wait.
    pub io_wait_ns: u64,
    /// Signed residual: protocol and kernel overheads.
    pub overhead_ns: i64,
}

impl Categories {
    /// Exact signed sum of all six categories.
    pub fn total_ns(&self) -> i64 {
        self.unsigned_ns() as i64 + self.overhead_ns
    }

    fn unsigned_ns(&self) -> u64 {
        self.compute_ns + self.coll_wait_ns + self.runq_wait_ns + self.noise_ns + self.io_wait_ns
    }

    /// Fold another decomposition in.
    pub fn add(&mut self, other: &Categories) {
        self.compute_ns += other.compute_ns;
        self.coll_wait_ns += other.coll_wait_ns;
        self.runq_wait_ns += other.runq_wait_ns;
        self.noise_ns += other.noise_ns;
        self.io_wait_ns += other.io_wait_ns;
        self.overhead_ns += other.overhead_ns;
    }

    /// `(label, signed ns)` rows in canonical order.
    pub fn rows(&self) -> [(&'static str, i64); 6] {
        [
            ("compute", self.compute_ns as i64),
            ("coll_wait", self.coll_wait_ns as i64),
            ("runq_wait", self.runq_wait_ns as i64),
            ("noise", self.noise_ns as i64),
            ("io_wait", self.io_wait_ns as i64),
            ("overhead", self.overhead_ns),
        ]
    }
}

/// One rank's accounted wall time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankAccount {
    /// Global rank id.
    pub rank: u32,
    /// Node hosting the rank.
    pub node: u32,
    /// Accounted wall time (spawn to exit, or to the horizon cut).
    pub wall_ns: u64,
    /// The six-way decomposition; sums exactly to `wall_ns`.
    pub cats: Categories,
}

impl RankAccount {
    /// Verify the exact-sum invariant.
    pub fn check_sum(&self) -> Result<(), String> {
        let total = self.cats.total_ns();
        if total != self.wall_ns as i64 {
            return Err(format!(
                "rank {}: categories sum to {} ns but wall is {} ns",
                self.rank, total, self.wall_ns
            ));
        }
        Ok(())
    }
}

/// One interference thread's on-CPU usage on a node.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoiseSource {
    /// Node the daemon/interrupt ran on.
    pub node: u32,
    /// Thread name from the noise profile.
    pub name: String,
    /// Its total on-CPU time, ns.
    pub cpu_ns: u64,
}

/// One node's fabric-contention counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkUsage {
    /// Node whose shard charged the waits (its egress + its ingress).
    pub node: u32,
    /// Messages delayed behind a busy link.
    pub waits: u64,
    /// Total queueing delay, ns.
    pub wait_ns: u64,
}

/// Everything [`analyze`] needs about one run — all of it derived from
/// deterministic simulation state.
#[derive(Debug, Clone, Default)]
pub struct BlameInput {
    /// Section label (e.g. "fig3 59 nodes seed 1").
    pub label: String,
    /// Run wall time (makespan), ns.
    pub wall_ns: u64,
    /// Per-rank accounts.
    pub ranks: Vec<RankAccount>,
    /// Interference threads per node (noise daemons, interrupt sources).
    pub noise: Vec<NoiseSource>,
    /// Per-node link contention.
    pub links: Vec<LinkUsage>,
    /// Per-rank collective samples; empty when record-all capture was
    /// off (the critical path is then omitted).
    pub samples: Vec<OpSpan>,
    /// Accounting epoch for the critical-path head segment (job start).
    pub epoch_ns: u64,
    /// Trace-ring events lost to capacity — surfaced as a warning.
    pub dropped_events: u64,
}

/// Per-node aggregate of the rank accounts, plus the link overlay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeBlame {
    /// Node id.
    pub node: u32,
    /// Ranks hosted there.
    pub nranks: u32,
    /// Summed rank decompositions.
    pub cats: Categories,
    /// Summed rank wall, ns.
    pub wall_ns: u64,
    /// Link-contention overlay (zero without `--link-bandwidth`).
    pub link_waits: u64,
    /// Link queueing delay overlay, ns.
    pub link_wait_ns: u64,
}

impl NodeBlame {
    /// Ranking key: time lost to waiting (the blameworthy share).
    fn blame_ns(&self) -> u64 {
        self.cats.coll_wait_ns + self.cats.runq_wait_ns + self.cats.noise_ns
    }
}

/// One noise source's induced critical-path delay.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoiseBlame {
    /// Node the source ran on.
    pub node: u32,
    /// Source thread name.
    pub name: String,
    /// Its on-CPU time, ns.
    pub cpu_ns: u64,
    /// Critical-path noise attributed to it: the node's on-path noise
    /// share, split across the node's sources by on-CPU weight.
    pub path_noise_ns: u64,
}

/// One analyzed run: the per-rank table, per-node ranking, critical
/// path, and culprit lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunBlame {
    /// Section label.
    pub label: String,
    /// Run wall time, ns.
    pub wall_ns: u64,
    /// Ranks accounted.
    pub nranks: u32,
    /// Summed decomposition across ranks.
    pub totals: Categories,
    /// Per-rank table (rank order).
    pub ranks: Vec<RankAccount>,
    /// Per-node ranking, most blameworthy first.
    pub nodes: Vec<NodeBlame>,
    /// Happens-before critical path; `None` without samples.
    pub path: Option<CriticalPath>,
    /// Noise sources ranked by induced critical-path delay (by on-CPU
    /// time when no path was extracted).
    pub noise: Vec<NoiseBlame>,
    /// Link contention ranked by induced delay.
    pub links: Vec<LinkUsage>,
    /// Non-fatal analysis warnings (e.g. dropped trace events).
    pub warnings: Vec<String>,
}

/// One job's section of a multi-job blame report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JobBlame {
    /// Job id (submission order).
    pub job: u32,
    /// Job name.
    pub name: String,
    /// Queue wait before first launch, ns.
    pub queue_wait_ns: u64,
    /// Rank-chunk threads accounted.
    pub nranks: u32,
    /// Summed wall across those threads, ns.
    pub wall_ns: u64,
    /// Summed decomposition.
    pub cats: Categories,
}

/// Category totals summed across the points of a campaign, merged the
/// same way scalar metrics are.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignTotals {
    /// Campaign label.
    pub label: String,
    /// Points folded in.
    pub points: u64,
    /// Summed rank wall across points, ns.
    pub wall_ns: u64,
    /// Summed decomposition across points.
    pub cats: Categories,
}

/// The exported artifact: labeled run sections, per-job sections, and
/// campaign-merged totals, with a canonical-JSON encoding and a
/// human-readable rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlameReport {
    /// Report title (the figure/sweep name).
    pub title: String,
    /// Analyzed representative runs.
    pub runs: Vec<RunBlame>,
    /// Per-job sections (multi-job sweeps only).
    pub jobs: Vec<JobBlame>,
    /// Campaign-merged category totals.
    pub campaigns: Vec<CampaignTotals>,
}

/// Decompose one run: verify the per-rank invariant, aggregate per
/// node, extract the critical path, and rank the culprits.
///
/// # Panics
/// Panics if any rank violates the exact-sum invariant — that is a
/// kernel accounting bug, not an input problem.
pub fn analyze(input: &BlameInput) -> RunBlame {
    let mut totals = Categories::default();
    let mut by_node: BTreeMap<u32, NodeBlame> = BTreeMap::new();
    for r in &input.ranks {
        r.check_sum()
            .unwrap_or_else(|e| panic!("blame invariant violated: {e}"));
        totals.add(&r.cats);
        let nb = by_node.entry(r.node).or_insert(NodeBlame {
            node: r.node,
            nranks: 0,
            cats: Categories::default(),
            wall_ns: 0,
            link_waits: 0,
            link_wait_ns: 0,
        });
        nb.nranks += 1;
        nb.cats.add(&r.cats);
        nb.wall_ns += r.wall_ns;
    }
    for l in &input.links {
        if let Some(nb) = by_node.get_mut(&l.node) {
            nb.link_waits = l.waits;
            nb.link_wait_ns = l.wait_ns;
        }
    }
    let mut nodes: Vec<NodeBlame> = by_node.into_values().collect();
    nodes.sort_by(|a, b| b.blame_ns().cmp(&a.blame_ns()).then(a.node.cmp(&b.node)));

    let path = path::extract(input);
    let noise = attribute_noise(input, path.as_ref());
    let mut links: Vec<LinkUsage> = input
        .links
        .iter()
        .filter(|l| l.waits > 0)
        .copied()
        .collect();
    links.sort_by(|a, b| b.wait_ns.cmp(&a.wait_ns).then(a.node.cmp(&b.node)));

    let mut warnings = Vec::new();
    if input.dropped_events > 0 {
        warnings.push(format!(
            "trace ring dropped {} events; span exports are partial (accounting is unaffected)",
            input.dropped_events
        ));
    }

    RunBlame {
        label: input.label.clone(),
        wall_ns: input.wall_ns,
        nranks: input.ranks.len() as u32,
        totals,
        ranks: input.ranks.clone(),
        nodes,
        path,
        noise,
        links,
        warnings,
    }
}

/// Split each node's on-path noise across its interference threads by
/// on-CPU weight (integer mul/div — deterministic). Without a path,
/// fall back to ranking sources by raw on-CPU time.
fn attribute_noise(input: &BlameInput, path: Option<&CriticalPath>) -> Vec<NoiseBlame> {
    let mut node_cpu: BTreeMap<u32, u64> = BTreeMap::new();
    for s in &input.noise {
        *node_cpu.entry(s.node).or_insert(0) += s.cpu_ns;
    }
    let path_noise: BTreeMap<u32, u64> = path
        .map(|p| p.nodes.iter().map(|n| (n.node, n.cats.noise_ns)).collect())
        .unwrap_or_default();
    let mut rows: Vec<NoiseBlame> = input
        .noise
        .iter()
        .filter(|s| s.cpu_ns > 0)
        .map(|s| {
            let total = node_cpu.get(&s.node).copied().unwrap_or(0);
            let on_path = path_noise.get(&s.node).copied().unwrap_or(0);
            let attributed = if total == 0 {
                0
            } else {
                ((u128::from(on_path) * u128::from(s.cpu_ns)) / u128::from(total)) as u64
            };
            NoiseBlame {
                node: s.node,
                name: s.name.clone(),
                cpu_ns: s.cpu_ns,
                path_noise_ns: attributed,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.path_noise_ns
            .cmp(&a.path_noise_ns)
            .then(b.cpu_ns.cmp(&a.cpu_ns))
            .then(a.node.cmp(&b.node))
            .then(a.name.cmp(&b.name))
    });
    rows
}

impl BlameReport {
    /// Canonical JSON (struct-declaration key order, trailing newline).
    /// Byte-identical for identical runs — the CI diff target.
    pub fn to_json(&self) -> String {
        let mut s = self.to_value().to_json_string_pretty();
        s.push('\n');
        s
    }

    /// The human-readable summary tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("Blame report: {}\n", self.title));
        for run in &self.runs {
            out.push_str(&render_run(run));
        }
        if !self.jobs.is_empty() {
            let mut t = Table::new(
                "Per-job blame",
                &[
                    "job",
                    "name",
                    "queue ms",
                    "compute %",
                    "coll %",
                    "runq %",
                    "noise %",
                    "io %",
                ],
            );
            for j in &self.jobs {
                let w = j.wall_ns.max(1) as f64;
                t.row(&[
                    j.job.to_string(),
                    j.name.clone(),
                    report::fnum(j.queue_wait_ns as f64 / 1e6, 2),
                    pct(j.cats.compute_ns as f64, w),
                    pct(j.cats.coll_wait_ns as f64, w),
                    pct(j.cats.runq_wait_ns as f64, w),
                    pct(j.cats.noise_ns as f64, w),
                    pct(j.cats.io_wait_ns as f64, w),
                ]);
            }
            out.push_str(&t.render());
        }
        for c in &self.campaigns {
            let mut t = Table::new(
                format!("Campaign totals: {} ({} points)", c.label, c.points),
                &["category", "time ms", "% of rank wall"],
            );
            for (name, ns) in c.cats.rows() {
                t.row(&[
                    name.to_string(),
                    report::fnum(ns as f64 / 1e6, 2),
                    pct(ns as f64, c.wall_ns.max(1) as f64),
                ]);
            }
            out.push_str(&t.render());
        }
        out
    }
}

fn pct(part: f64, whole: f64) -> String {
    report::fnum(100.0 * part / whole, 1)
}

fn render_run(run: &RunBlame) -> String {
    let mut out = String::new();
    for w in &run.warnings {
        out.push_str(&format!("WARNING: {w}\n"));
    }
    let wall = (run.totals.total_ns().max(1)) as f64;
    let mut t = Table::new(
        format!(
            "{} — {} ranks, wall {} ms",
            run.label,
            run.nranks,
            report::fnum(run.wall_ns as f64 / 1e6, 2)
        ),
        &[
            "category",
            "time ms",
            "% of rank wall",
            "on critical path ms",
        ],
    );
    let path_rows: BTreeMap<&'static str, i64> = run
        .path
        .as_ref()
        .map(|p| p.on_path.rows().into_iter().collect())
        .unwrap_or_default();
    for (name, ns) in run.totals.rows() {
        t.row(&[
            name.to_string(),
            report::fnum(ns as f64 / 1e6, 2),
            pct(ns as f64, wall),
            path_rows
                .get(name)
                .map_or_else(|| "-".into(), |&p| report::fnum(p as f64 / 1e6, 3)),
        ]);
    }
    out.push_str(&t.render());
    if let Some(p) = &run.path {
        out.push_str(&format!(
            "critical path: {} ops, span {} ms, release cascade {} ms\n",
            p.ops,
            report::fnum(p.span_ns as f64 / 1e6, 3),
            report::fnum(p.coll_release_ns as f64 / 1e6, 3),
        ));
    }
    let mut t = Table::new(
        "Most blamed nodes",
        &[
            "node",
            "ranks",
            "coll %",
            "runq %",
            "noise %",
            "link-wait ms",
        ],
    );
    for nb in run.nodes.iter().take(8) {
        let w = nb.wall_ns.max(1) as f64;
        t.row(&[
            nb.node.to_string(),
            nb.nranks.to_string(),
            pct(nb.cats.coll_wait_ns as f64, w),
            pct(nb.cats.runq_wait_ns as f64, w),
            pct(nb.cats.noise_ns as f64, w),
            report::fnum(nb.link_wait_ns as f64 / 1e6, 3),
        ]);
    }
    out.push_str(&t.render());
    if !run.noise.is_empty() {
        let mut t = Table::new(
            "Top noise sources",
            &["node", "source", "cpu ms", "induced path delay ms"],
        );
        for s in run.noise.iter().take(8) {
            t.row(&[
                s.node.to_string(),
                s.name.clone(),
                report::fnum(s.cpu_ns as f64 / 1e6, 3),
                report::fnum(s.path_noise_ns as f64 / 1e6, 3),
            ]);
        }
        out.push_str(&t.render());
    }
    if !run.links.is_empty() {
        let mut t = Table::new("Top contended links", &["node", "delayed msgs", "wait ms"]);
        for l in run.links.iter().take(8) {
            t.row(&[
                l.node.to_string(),
                l.waits.to_string(),
                report::fnum(l.wait_ns as f64 / 1e6, 3),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acct(rank: u32, node: u32, cats: Categories) -> RankAccount {
        RankAccount {
            rank,
            node,
            wall_ns: cats.total_ns() as u64,
            cats,
        }
    }

    #[test]
    fn sum_invariant_is_enforced() {
        let good = acct(
            0,
            0,
            Categories {
                compute_ns: 70,
                coll_wait_ns: 20,
                runq_wait_ns: 5,
                noise_ns: 3,
                io_wait_ns: 1,
                overhead_ns: 1,
            },
        );
        assert!(good.check_sum().is_ok());
        let bad = RankAccount {
            wall_ns: good.wall_ns + 1,
            ..good
        };
        assert!(bad.check_sum().is_err());
    }

    #[test]
    fn negative_overhead_still_sums() {
        // Horizon cut: charged-but-unserved debt makes the residual
        // negative; the invariant must stay exact, not saturate.
        let cats = Categories {
            compute_ns: 100,
            coll_wait_ns: 0,
            runq_wait_ns: 0,
            noise_ns: 30,
            io_wait_ns: 0,
            overhead_ns: -20,
        };
        assert_eq!(cats.total_ns(), 110);
        let r = RankAccount {
            rank: 0,
            node: 0,
            wall_ns: 110,
            cats,
        };
        assert!(r.check_sum().is_ok());
    }

    #[test]
    fn analyze_ranks_nodes_by_wait_share() {
        let quiet = Categories {
            compute_ns: 90,
            coll_wait_ns: 10,
            ..Categories::default()
        };
        let noisy = Categories {
            compute_ns: 40,
            coll_wait_ns: 40,
            noise_ns: 20,
            ..Categories::default()
        };
        let input = BlameInput {
            label: "t".into(),
            wall_ns: 100,
            ranks: vec![acct(0, 0, quiet), acct(1, 1, noisy)],
            noise: vec![NoiseSource {
                node: 1,
                name: "cron".into(),
                cpu_ns: 20,
            }],
            ..BlameInput::default()
        };
        let run = analyze(&input);
        assert_eq!(run.nranks, 2);
        assert_eq!(run.nodes[0].node, 1, "noisy node must rank first");
        assert_eq!(run.totals.compute_ns, 130);
        assert!(run.path.is_none(), "no samples, no path");
        assert_eq!(run.noise[0].name, "cron");
        assert!(run.warnings.is_empty());
        let report = BlameReport {
            title: "t".into(),
            runs: vec![run],
            ..BlameReport::default()
        };
        let json = report.to_json();
        assert!(json.ends_with('\n'));
        assert!(json.contains("\"coll_wait_ns\""));
        assert!(!report.render().is_empty());
    }

    #[test]
    fn dropped_events_surface_as_warning() {
        let input = BlameInput {
            label: "t".into(),
            dropped_events: 7,
            ..BlameInput::default()
        };
        let run = analyze(&input);
        assert_eq!(run.warnings.len(), 1);
        assert!(run.warnings[0].contains("dropped 7 events"));
        let report = BlameReport {
            title: "t".into(),
            runs: vec![run],
            ..BlameReport::default()
        };
        assert!(report.render().contains("WARNING"));
    }

    #[test]
    #[should_panic(expected = "blame invariant violated")]
    fn analyze_rejects_broken_accounts() {
        let input = BlameInput {
            label: "t".into(),
            ranks: vec![RankAccount {
                rank: 0,
                node: 0,
                wall_ns: 5,
                cats: Categories::default(),
            }],
            ..BlameInput::default()
        };
        let _ = analyze(&input);
    }
}
