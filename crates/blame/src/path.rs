//! Happens-before critical-path extraction at collective granularity.
//!
//! The happens-before relation of a bulk-synchronous run has three edge
//! kinds: intra-rank program order, message send→deliver, and barrier
//! last-arrival→release. At collective granularity the last two
//! collapse: the op with sequence number `k` cannot release anyone
//! until its *last arrival* `A_k` (the rank that reached it latest),
//! and every rank's next local segment is ordered after the op's
//! completion. The run's critical path therefore alternates
//!
//! ```text
//! [cursor, A_k]  — a local segment on the last-arrival rank's node
//! [A_k, E_k]    — the collective's release cascade
//! ```
//!
//! walked over fully-sampled ops in sequence order. The walk telescopes:
//! segment lengths sum *exactly* to `E_last − epoch`, so the path's
//! per-category attribution is an exact decomposition of the span, not
//! an estimate. Local segments are charged to the laggard's node and
//! split across categories by that rank's run-wide shares (integer
//! u128 mul/div; the division remainder goes to `overhead` so nothing
//! is lost). Collective segments are charged to the release cascade.

use crate::{BlameInput, Categories};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One rank's timing sample for one collective op, from the run
/// recorder's record-all capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSpan {
    /// Global rank id.
    pub rank: u32,
    /// Node hosting the rank.
    pub node: u32,
    /// Collective sequence number (program order, shared across ranks).
    pub seq: u64,
    /// When the rank arrived at the op, ns.
    pub start_ns: u64,
    /// When the op completed at the rank, ns.
    pub end_ns: u64,
}

/// On-path time charged to one node's local segments.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathNode {
    /// Node id.
    pub node: u32,
    /// Times this node hosted the last arrival.
    pub hops: u64,
    /// Category split of the node's on-path local time.
    pub cats: Categories,
}

/// The extracted critical path and its exact decomposition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CriticalPath {
    /// Fully-sampled collective ops on the path.
    pub ops: u64,
    /// Path span: last completion minus epoch. Equals the sum of all
    /// local-segment categories plus `coll_release_ns`, exactly.
    pub span_ns: u64,
    /// Category split of the local (pre-arrival) segments.
    pub on_path: Categories,
    /// Release-cascade time: last arrival to last completion, summed.
    pub coll_release_ns: u64,
    /// Per-node local-segment attribution, node order.
    pub nodes: Vec<PathNode>,
}

/// Walk the happens-before path over `input.samples`. Returns `None`
/// when no op was sampled by every rank (record-all capture off, or a
/// horizon cut before the first full collective).
pub fn extract(input: &BlameInput) -> Option<CriticalPath> {
    let nranks = input.ranks.len();
    if nranks == 0 || input.samples.is_empty() {
        return None;
    }
    // Group samples per seq; keep the first sample per (seq, rank) —
    // the recorder emits one per op, this just makes duplicates benign.
    let mut by_seq: BTreeMap<u64, BTreeMap<u32, &OpSpan>> = BTreeMap::new();
    for s in &input.samples {
        by_seq.entry(s.seq).or_default().entry(s.rank).or_insert(s);
    }
    let shares: BTreeMap<u32, &Categories> =
        input.ranks.iter().map(|r| (r.rank, &r.cats)).collect();

    let mut cursor = input.epoch_ns;
    let mut ops = 0u64;
    let mut on_path = Categories::default();
    let mut coll_release_ns = 0u64;
    let mut nodes: BTreeMap<u32, PathNode> = BTreeMap::new();

    for ranks in by_seq.values() {
        if ranks.len() != nranks {
            // Partially-sampled op (horizon cut mid-collective): the
            // last arrival is unknowable, so the walk stops here.
            break;
        }
        // Last arrival: max start, ties to the lowest rank (BTreeMap
        // iteration order makes `>` keep the first maximum).
        let laggard = ranks
            .values()
            .copied()
            .max_by(|a, b| a.start_ns.cmp(&b.start_ns).then(b.rank.cmp(&a.rank)))
            .expect("seq group is non-empty");
        let end = ranks.values().map(|s| s.end_ns).max().expect("non-empty");

        let arrive = cursor.max(laggard.start_ns);
        let local = arrive - cursor;
        let done = arrive.max(end);
        let coll = done - arrive;
        cursor = done;
        ops += 1;
        coll_release_ns += coll;

        let split = split_by_shares(local, shares.get(&laggard.rank).copied());
        on_path.add(&split);
        let entry = nodes.entry(laggard.node).or_insert(PathNode {
            node: laggard.node,
            hops: 0,
            cats: Categories::default(),
        });
        entry.hops += 1;
        entry.cats.add(&split);
    }
    if ops == 0 {
        return None;
    }
    Some(CriticalPath {
        ops,
        span_ns: cursor - input.epoch_ns,
        on_path,
        coll_release_ns,
        nodes: nodes.into_values().collect(),
    })
}

/// Split `local` ns across categories in proportion to the rank's
/// run-wide decomposition. Integer u128 mul/div; the remainder (and the
/// whole amount, when the rank has no accounted time) lands in
/// `overhead` so the split sums to `local` exactly.
fn split_by_shares(local: u64, shares: Option<&Categories>) -> Categories {
    let mut out = Categories::default();
    let Some(sh) = shares else {
        out.overhead_ns = local as i64;
        return out;
    };
    // Weights are the non-negative components; a negative overhead
    // residual gets no weight (it is a correction, not a duration).
    let oh_w = sh.overhead_ns.max(0) as u64;
    let total =
        sh.compute_ns + sh.coll_wait_ns + sh.runq_wait_ns + sh.noise_ns + sh.io_wait_ns + oh_w;
    if total == 0 {
        out.overhead_ns = local as i64;
        return out;
    }
    let part = |w: u64| ((u128::from(local) * u128::from(w)) / u128::from(total)) as u64;
    out.compute_ns = part(sh.compute_ns);
    out.coll_wait_ns = part(sh.coll_wait_ns);
    out.runq_wait_ns = part(sh.runq_wait_ns);
    out.noise_ns = part(sh.noise_ns);
    out.io_wait_ns = part(sh.io_wait_ns);
    let assigned =
        out.compute_ns + out.coll_wait_ns + out.runq_wait_ns + out.noise_ns + out.io_wait_ns;
    out.overhead_ns = (local - assigned) as i64;
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RankAccount;

    fn rank(rank: u32, node: u32, cats: Categories) -> RankAccount {
        RankAccount {
            rank,
            node,
            wall_ns: cats.total_ns() as u64,
            cats,
        }
    }

    fn span(rank: u32, node: u32, seq: u64, start_ns: u64, end_ns: u64) -> OpSpan {
        OpSpan {
            rank,
            node,
            seq,
            start_ns,
            end_ns,
        }
    }

    fn two_rank_input() -> BlameInput {
        let even = Categories {
            compute_ns: 50,
            coll_wait_ns: 50,
            ..Categories::default()
        };
        BlameInput {
            label: "t".into(),
            wall_ns: 100,
            ranks: vec![rank(0, 0, even), rank(1, 1, even)],
            epoch_ns: 100,
            samples: vec![
                // op 0: rank 1 arrives last (at 140), completes at 150.
                span(0, 0, 0, 110, 150),
                span(1, 1, 0, 140, 150),
                // op 1: rank 0 arrives last (at 180), completes at 200.
                span(0, 0, 1, 180, 200),
                span(1, 1, 1, 160, 200),
            ],
            ..BlameInput::default()
        }
    }

    #[test]
    fn path_telescopes_exactly_to_span() {
        let input = two_rank_input();
        let p = extract(&input).expect("two full ops");
        assert_eq!(p.ops, 2);
        // span = last completion (200) − epoch (100)
        assert_eq!(p.span_ns, 100);
        // local 40 (epoch→A_0) + coll 10 + local 30 (150→A_1) + coll 20
        assert_eq!(p.coll_release_ns, 30);
        assert_eq!(p.on_path.total_ns(), 70);
        assert_eq!(
            p.on_path.total_ns() as u64 + p.coll_release_ns,
            p.span_ns,
            "telescoping must be exact"
        );
        // 50/50 compute/coll shares split each local segment evenly.
        assert_eq!(p.on_path.compute_ns, p.on_path.coll_wait_ns);
        // op 0's laggard is rank 1 (node 1), op 1's is rank 0 (node 0).
        assert_eq!(p.nodes.len(), 2);
        assert_eq!((p.nodes[0].node, p.nodes[0].hops), (0, 1));
        assert_eq!((p.nodes[1].node, p.nodes[1].hops), (1, 1));
        let node_sum: i64 = p.nodes.iter().map(|n| n.cats.total_ns()).sum();
        assert_eq!(node_sum, p.on_path.total_ns());
    }

    #[test]
    fn arrival_ties_pick_lowest_rank() {
        let mut input = two_rank_input();
        input.samples = vec![span(0, 0, 0, 140, 150), span(1, 1, 0, 140, 150)];
        let p = extract(&input).expect("one full op");
        assert_eq!(p.nodes.len(), 1);
        assert_eq!(p.nodes[0].node, 0, "tie must go to rank 0's node");
    }

    #[test]
    fn partial_op_stops_the_walk() {
        let mut input = two_rank_input();
        // op 1 lost rank 1's sample (horizon cut): walk covers op 0 only.
        input.samples.retain(|s| !(s.seq == 1 && s.rank == 1));
        let p = extract(&input).expect("op 0 is still full");
        assert_eq!(p.ops, 1);
        assert_eq!(p.span_ns, 50);
    }

    #[test]
    fn no_full_op_means_no_path() {
        let mut input = two_rank_input();
        input.samples.retain(|s| s.rank == 0);
        assert!(extract(&input).is_none());
        input.samples.clear();
        assert!(extract(&input).is_none());
    }

    #[test]
    fn split_remainder_lands_in_overhead() {
        let sh = Categories {
            compute_ns: 1,
            coll_wait_ns: 1,
            runq_wait_ns: 1,
            ..Categories::default()
        };
        let split = split_by_shares(100, Some(&sh));
        // 100/3 = 33 each; remainder 1 → overhead. Exact total.
        assert_eq!(split.compute_ns, 33);
        assert_eq!(split.overhead_ns, 1);
        assert_eq!(split.total_ns(), 100);
        let all_oh = split_by_shares(7, None);
        assert_eq!(all_oh.overhead_ns, 7);
    }
}
