//! Single-node driver.
//!
//! Runs one [`Kernel`] standalone with an immediate-loopback "fabric"
//! (all messages are node-local with a fixed shared-memory latency).
//! Used for kernel/noise unit tests and single-node experiments; the
//! multi-node driver lives in `pa-cluster`.

use crate::kernel::{Effects, Kernel, KernelEvent};
use pa_simkit::{EventId, EventQueue, SimDur, SimTime};

/// Drives one kernel to completion or a time horizon.
pub struct SoloRunner {
    /// The node kernel.
    pub kernel: Kernel,
    queue: EventQueue<KernelEvent>,
    fx: Effects,
    /// Loopback latency applied to node-local messages.
    pub shm_latency: SimDur,
    events_processed: u64,
    /// Outstanding `SegEnd` calendar entry per CPU ([`EventId::NONE`]
    /// when none), so kernel-voided segment timers are cancelled out of
    /// the calendar instead of surfacing as stale pops.
    seg_events: Vec<EventId>,
}

impl SoloRunner {
    /// Wrap a kernel (not yet booted).
    pub fn new(kernel: Kernel) -> SoloRunner {
        let ncpus = kernel.ncpus() as usize;
        SoloRunner {
            kernel,
            queue: EventQueue::new(),
            fx: Effects::new(),
            shm_latency: SimDur::from_micros(2),
            events_processed: 0,
            seg_events: vec![EventId::NONE; ncpus],
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The pending event calendar (checkpoint capture).
    pub fn queue(&self) -> &EventQueue<KernelEvent> {
        &self.queue
    }

    /// Replace the event calendar and event counter (checkpoint restore).
    /// The per-CPU outstanding-`SegEnd` slots are rebuilt from the
    /// queue's live entries — with true cancellation at most one is live
    /// per CPU at any event boundary.
    pub fn restore_queue(&mut self, queue: EventQueue<KernelEvent>, events_processed: u64) {
        self.seg_events = seg_slots_of(&queue, self.kernel.ncpus() as usize);
        self.queue = queue;
        self.events_processed = events_processed;
    }

    fn drain_effects(&mut self) {
        let now = self.queue.now();
        let node = self.kernel.node_id();
        let Self {
            queue,
            fx,
            seg_events,
            ..
        } = self;
        // Interleave voided-segment cancels with schedules in program
        // order (a handler may cancel a CPU's timer and then arm a new
        // one); the watermark says how many schedule entries precede
        // each cancel.
        let mut ci = 0;
        for (idx, (t, ev)) in fx.schedule.drain(..).enumerate() {
            while ci < fx.cancels.len() && (fx.cancels[ci].after as usize) <= idx {
                cancel_slot(queue, &mut seg_events[fx.cancels[ci].cpu.0 as usize]);
                ci += 1;
            }
            let seg_cpu = match &ev {
                KernelEvent::SegEnd { cpu, .. } => Some(cpu.0 as usize),
                _ => None,
            };
            let id = queue.schedule(t, ev);
            if let Some(c) = seg_cpu {
                seg_events[c] = id;
            }
        }
        while ci < fx.cancels.len() {
            cancel_slot(queue, &mut seg_events[fx.cancels[ci].cpu.0 as usize]);
            ci += 1;
        }
        fx.cancels.clear();
        for msg in fx.outbound.drain(..) {
            assert_eq!(
                msg.dst.node, node,
                "SoloRunner cannot route cross-node messages"
            );
            queue.schedule(now + self.shm_latency, KernelEvent::Deliver { msg });
        }
    }

    fn pop_event(&mut self) -> (SimTime, KernelEvent) {
        let (now, ev) = self.queue.pop().expect("peeked event vanished");
        if let KernelEvent::SegEnd { cpu, .. } = ev {
            self.seg_events[cpu.0 as usize] = EventId::NONE;
        }
        (now, ev)
    }

    /// Boot the kernel at the current time.
    pub fn boot(&mut self) {
        let now = self.queue.now();
        self.kernel.boot(now, &mut self.fx);
        self.drain_effects();
    }

    /// Run until all application threads exit or `horizon` passes.
    /// Returns the stop time.
    pub fn run_until_apps_done(&mut self, horizon: SimTime) -> SimTime {
        loop {
            if self.kernel.app_alive() == 0 {
                return self.queue.now();
            }
            let Some(t) = self.queue.peek_time() else {
                return self.queue.now();
            };
            if t > horizon {
                return self.queue.now();
            }
            let (now, ev) = self.pop_event();
            self.events_processed += 1;
            self.kernel.handle(now, ev, &mut self.fx);
            self.drain_effects();
        }
    }

    /// Run until `horizon` regardless of application state.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (now, ev) = self.pop_event();
            self.events_processed += 1;
            self.kernel.handle(now, ev, &mut self.fx);
            self.drain_effects();
        }
        horizon
    }
}

/// Cancel the calendar entry in `slot` (if any) and clear the slot.
fn cancel_slot(queue: &mut EventQueue<KernelEvent>, slot: &mut EventId) {
    if *slot != EventId::NONE {
        queue.cancel(*slot);
        *slot = EventId::NONE;
    }
}

/// Rebuild per-CPU outstanding-`SegEnd` slots from a calendar's live
/// entries (checkpoint restore). True cancellation guarantees at most
/// one live `SegEnd` per CPU at any event boundary. Shared by every
/// kernel driver that restores a calendar (`SoloRunner` here, the
/// sharded cluster engine in `pa-cluster`).
pub fn seg_slots_of(queue: &EventQueue<KernelEvent>, ncpus: usize) -> Vec<EventId> {
    let mut slots = vec![EventId::NONE; ncpus];
    for (_, id, ev) in queue.live_entries() {
        if let KernelEvent::SegEnd { cpu, .. } = ev {
            debug_assert_eq!(
                slots[cpu.0 as usize],
                EventId::NONE,
                "two live SegEnd entries for cpu {}",
                cpu.0
            );
            slots[cpu.0 as usize] = EventId::from_raw(id);
        }
    }
    slots
}
