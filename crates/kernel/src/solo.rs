//! Single-node driver.
//!
//! Runs one [`Kernel`] standalone with an immediate-loopback "fabric"
//! (all messages are node-local with a fixed shared-memory latency).
//! Used for kernel/noise unit tests and single-node experiments; the
//! multi-node driver lives in `pa-cluster`.

use crate::kernel::{Effects, Kernel, KernelEvent};
use pa_simkit::{EventQueue, SimDur, SimTime};

/// Drives one kernel to completion or a time horizon.
pub struct SoloRunner {
    /// The node kernel.
    pub kernel: Kernel,
    queue: EventQueue<KernelEvent>,
    fx: Effects,
    /// Loopback latency applied to node-local messages.
    pub shm_latency: SimDur,
    events_processed: u64,
}

impl SoloRunner {
    /// Wrap a kernel (not yet booted).
    pub fn new(kernel: Kernel) -> SoloRunner {
        SoloRunner {
            kernel,
            queue: EventQueue::new(),
            fx: Effects::new(),
            shm_latency: SimDur::from_micros(2),
            events_processed: 0,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// The pending event calendar (checkpoint capture).
    pub fn queue(&self) -> &EventQueue<KernelEvent> {
        &self.queue
    }

    /// Replace the event calendar and event counter (checkpoint restore).
    pub fn restore_queue(&mut self, queue: EventQueue<KernelEvent>, events_processed: u64) {
        self.queue = queue;
        self.events_processed = events_processed;
    }

    fn drain_effects(&mut self) {
        let now = self.queue.now();
        for (t, ev) in self.fx.schedule.drain(..) {
            self.queue.schedule(t, ev);
        }
        for msg in self.fx.outbound.drain(..) {
            assert_eq!(
                msg.dst.node,
                self.kernel.node_id(),
                "SoloRunner cannot route cross-node messages"
            );
            self.queue
                .schedule(now + self.shm_latency, KernelEvent::Deliver { msg });
        }
    }

    /// Boot the kernel at the current time.
    pub fn boot(&mut self) {
        let now = self.queue.now();
        self.kernel.boot(now, &mut self.fx);
        self.drain_effects();
    }

    /// Run until all application threads exit or `horizon` passes.
    /// Returns the stop time.
    pub fn run_until_apps_done(&mut self, horizon: SimTime) -> SimTime {
        loop {
            if self.kernel.app_alive() == 0 {
                return self.queue.now();
            }
            let Some(t) = self.queue.peek_time() else {
                return self.queue.now();
            };
            if t > horizon {
                return self.queue.now();
            }
            let (now, ev) = self.queue.pop().expect("peeked event vanished");
            self.events_processed += 1;
            self.kernel.handle(now, ev, &mut self.fx);
            self.drain_effects();
        }
    }

    /// Run until `horizon` regardless of application state.
    pub fn run_until(&mut self, horizon: SimTime) -> SimTime {
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (now, ev) = self.queue.pop().expect("peeked event vanished");
            self.events_processed += 1;
            self.kernel.handle(now, ev, &mut self.fx);
            self.drain_effects();
        }
        horizon
    }
}
