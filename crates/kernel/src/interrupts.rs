//! Device-interrupt noise sources.
//!
//! The study's traces attribute part of the Allreduce outliers to
//! interrupt handlers such as `caddpin` (SSA disk) and `phxentdd`
//! (Ethernet) that "commandeered CPUs to carry out their tasks" (§5.3).
//! Unlike daemons, these are not schedulable threads: they steal time from
//! whatever is running, at interrupt priority, and are invisible to the
//! dispatcher. The kernel models each source as a Poisson process of
//! short bursts charged as *debt* against the interrupted thread's current
//! segment.

use crate::types::{CpuId, Tid};
use pa_simkit::SimDur;

/// Configuration of one device-interrupt source.
#[derive(Debug, Clone)]
pub struct InterruptSourceSpec {
    /// Handler name as it appears in traces ("caddpin", "phxentdd", ...).
    pub name: String,
    /// Mean inter-arrival time (exponentially distributed).
    pub mean_interval: SimDur,
    /// Shortest burst.
    pub burst_min: SimDur,
    /// Longest burst.
    pub burst_max: SimDur,
    /// Fixed CPU the device's interrupts are routed to, or `None` for a
    /// uniformly random CPU per interrupt (undirected routing).
    pub cpu: Option<CpuId>,
}

impl InterruptSourceSpec {
    /// A source with uniform burst in `[burst_min, burst_max]` and random
    /// CPU routing.
    pub fn new(
        name: impl Into<String>,
        mean_interval: SimDur,
        burst_min: SimDur,
        burst_max: SimDur,
    ) -> InterruptSourceSpec {
        let (burst_min, burst_max) = if burst_min <= burst_max {
            (burst_min, burst_max)
        } else {
            (burst_max, burst_min)
        };
        InterruptSourceSpec {
            name: name.into(),
            mean_interval,
            burst_min,
            burst_max,
            cpu: None,
        }
    }

    /// Route all interrupts of this source to a fixed CPU.
    pub fn on_cpu(mut self, cpu: CpuId) -> InterruptSourceSpec {
        self.cpu = Some(cpu);
        self
    }

    /// Long-run fraction of one CPU this source consumes.
    pub fn utilization(&self) -> f64 {
        let mean_burst = (self.burst_min.nanos() + self.burst_max.nanos()) as f64 / 2.0;
        if self.mean_interval.is_zero() {
            0.0
        } else {
            mean_burst / self.mean_interval.nanos() as f64
        }
    }
}

/// Runtime state of an interrupt source inside a kernel.
#[derive(Debug)]
pub(crate) struct InterruptSource {
    pub spec: InterruptSourceSpec,
    /// Pseudo thread id used for trace attribution.
    pub itid: Tid,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = InterruptSourceSpec::new(
            "caddpin",
            SimDur::from_millis(10),
            SimDur::from_micros(10),
            SimDur::from_micros(30),
        );
        // mean burst 20µs every 10ms = 0.2%.
        assert!((s.utilization() - 0.002).abs() < 1e-9);
    }

    #[test]
    fn swapped_bounds_are_normalized() {
        let s = InterruptSourceSpec::new(
            "x",
            SimDur::from_millis(1),
            SimDur::from_micros(30),
            SimDur::from_micros(10),
        );
        assert!(s.burst_min <= s.burst_max);
    }

    #[test]
    fn zero_interval_has_zero_utilization() {
        let s = InterruptSourceSpec::new("x", SimDur::ZERO, SimDur::ZERO, SimDur::ZERO);
        assert_eq!(s.utilization(), 0.0);
    }

    #[test]
    fn cpu_routing() {
        let s = InterruptSourceSpec::new(
            "phxentdd",
            SimDur::from_millis(5),
            SimDur::from_micros(5),
            SimDur::from_micros(15),
        )
        .on_cpu(CpuId(3));
        assert_eq!(s.cpu, Some(CpuId(3)));
    }
}
