//! Core identifier and policy types for the simulated node kernel.

use serde::{Deserialize, Serialize};

/// Node-local thread identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tid(pub u32);

/// CPU index within a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CpuId(pub u8);

/// AIX-style dispatching priority: **lower numeric value = more favored**.
///
/// The paper's reference points (§4, §5.3):
/// * normal priority is 60; "real-time" processes run between 40 and 60;
/// * a favored value below 40 defers most daemon activity;
/// * ordinary user processes range between 90 and 120;
/// * the observed interfering daemons ran at 56;
/// * the study settled on favored = 30, unfavored = 100;
/// * the I/O-aware ALE3D runs used mmfsd = 40, favored = 41.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Prio(pub u8);

impl Prio {
    /// The co-scheduler daemon itself ("an even more favored priority").
    pub const COSCHED: Prio = Prio(20);
    /// The favored task priority used in the study's benchmark runs.
    pub const FAVORED: Prio = Prio(30);
    /// GPFS mmfsd pinned priority in the I/O-aware configuration.
    pub const MMFSD: Prio = Prio(40);
    /// Priority of the observed long-running daemons in the traces.
    pub const DAEMON_OBSERVED: Prio = Prio(56);
    /// AIX "normal" priority.
    pub const NORMAL: Prio = Prio(60);
    /// Typical degraded user-process priority (user range is 90–120).
    pub const USER: Prio = Prio(90);
    /// The unfavored task priority used in the study's benchmark runs.
    pub const UNFAVORED: Prio = Prio(100);
    /// Numerically worst priority (the idle loop).
    pub const IDLE: Prio = Prio(127);

    /// True iff `self` is strictly more favored (numerically lower).
    pub fn beats(self, other: Prio) -> bool {
        self.0 < other.0
    }
}

/// Where a thread's ready work is queued (§3.1.2 of the paper):
/// AIX queues work to a specific processor for storage locality, or to all
/// processors to minimize dispatching latency. The prototype kernel forces
/// everything except the parallel job onto the global queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QueueDiscipline {
    /// Queue to one CPU (its "home"); another idle CPU may still steal it.
    Pinned(CpuId),
    /// Queue to all CPUs; dispatched wherever a slot frees first, at a
    /// small locality penalty while executing.
    Global,
}

/// Thread lifecycle state as seen by the dispatcher.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThreadState {
    /// Waiting in a run queue.
    Ready,
    /// Occupying a CPU (including busy-poll waits).
    Running,
    /// Not runnable (sleeping, blocked on recv or I/O).
    Blocked,
    /// Finished; slot retained for accounting.
    Exited,
}

/// How tick interrupts are phased across the CPUs of a node (§3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TickAlign {
    /// AIX default: CPU *i* ticks at offset `i·period/ncpus` so that timer
    /// code never runs concurrently on two CPUs.
    Staggered,
    /// The prototype option: all CPUs tick at the same local-time boundary.
    /// Whether ticks also align *across* nodes depends purely on how well
    /// node clocks are synchronized (§4 item 1).
    Aligned,
}

/// How cross-CPU preemption is accomplished (§3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PreemptMode {
    /// Default AIX: the busy processor notices a requested preemption only
    /// at its next tick, interrupt or block — up to one full tick late.
    Lazy,
    /// The pre-existing "real time scheduling" option: a hardware
    /// interrupt is forced, but (a) only for forward preemptions and
    /// (b) only one interrupt in flight at a time.
    RtIpi,
    /// The paper's improved option: IPIs are also generated for *reverse*
    /// preemptions (a running thread's priority lowered below a waiting
    /// one) and to multiple processors concurrently.
    RtIpiImproved,
}

/// Which dispatcher policy orders the ready queues (see
/// [`dispatch`](crate::dispatch)). The AIX policy reproduces the paper's
/// 2003 priority-band semantics bit for bit; the fair policies answer the
/// "does parallel awareness still pay under a modern scheduler?" question.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum DispatcherKind {
    /// 2003 AIX semantics: strict priority dispatch, FIFO within a level,
    /// fixed round-robin timeslice. The default; bit-identical to the
    /// pre-trait kernel.
    #[default]
    Aix,
    /// CFS-style weighted-fair scheduling: ready order keyed by virtual
    /// runtime (nice-to-weight table), sched-latency slice targeting, and
    /// a wakeup-granularity preemption threshold.
    Cfs,
    /// EEVDF-style scheduling: ready order keyed by virtual deadline
    /// (eligible virtual runtime plus a weight-scaled request), earliest
    /// deadline dispatched first.
    Eevdf,
}

impl DispatcherKind {
    /// Every policy, in canonical (CLI/docs) order.
    pub const ALL: [DispatcherKind; 3] = [
        DispatcherKind::Aix,
        DispatcherKind::Cfs,
        DispatcherKind::Eevdf,
    ];

    /// Parse the CLI spelling (`aix`, `cfs`, `eevdf`).
    pub fn parse(s: &str) -> Option<DispatcherKind> {
        match s {
            "aix" => Some(DispatcherKind::Aix),
            "cfs" => Some(DispatcherKind::Cfs),
            "eevdf" => Some(DispatcherKind::Eevdf),
            _ => None,
        }
    }

    /// The CLI spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            DispatcherKind::Aix => "aix",
            DispatcherKind::Cfs => "cfs",
            DispatcherKind::Eevdf => "eevdf",
        }
    }
}

/// Queue policy applied to non-application threads (§3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DaemonQueuePolicy {
    /// AIX default: daemons are queued to their home CPU.
    PerCpu,
    /// Prototype: daemons are queued to all CPUs ("maximum parallelism"),
    /// trading per-daemon locality for overlap.
    Global,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_priority_value_beats_higher() {
        assert!(Prio::FAVORED.beats(Prio::DAEMON_OBSERVED));
        assert!(Prio::DAEMON_OBSERVED.beats(Prio::USER));
        assert!(Prio::USER.beats(Prio::UNFAVORED));
        assert!(!Prio::UNFAVORED.beats(Prio::UNFAVORED));
        assert!(Prio::COSCHED.beats(Prio::FAVORED));
    }

    #[test]
    fn paper_priority_table_is_ordered() {
        // §4/§5.3 ordering: cosched < favored < mmfsd ≤ daemons < normal
        // < user < unfavored < idle.
        let chain = [
            Prio::COSCHED,
            Prio::FAVORED,
            Prio::MMFSD,
            Prio::DAEMON_OBSERVED,
            Prio::NORMAL,
            Prio::USER,
            Prio::UNFAVORED,
            Prio::IDLE,
        ];
        for w in chain.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "{:?} should be more favored than {:?}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn dispatcher_kind_round_trips_cli_names() {
        for k in DispatcherKind::ALL {
            assert_eq!(DispatcherKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(DispatcherKind::parse("o1"), None);
        assert_eq!(DispatcherKind::default(), DispatcherKind::Aix);
    }

    #[test]
    fn io_aware_priorities_sandwich_mmfsd() {
        // §5.3: mmfsd at 40, favored tasks at 41 — mmfsd may preempt tasks
        // but tasks beat every other daemon.
        let favored_io_aware = Prio(41);
        assert!(Prio::MMFSD.beats(favored_io_aware));
        assert!(favored_io_aware.beats(Prio::DAEMON_OBSERVED));
    }
}
