//! The simulated SMP-node kernel: dispatcher, ticks, preemption, callouts.
//!
//! One [`Kernel`] models one node of the cluster (e.g. a 16-way Power3 SP
//! node). It owns the node's threads, per-CPU and global run queues, the
//! tick machinery, the timer-callout queue, the I/O request path, and a
//! trace buffer. It is driven externally: the cluster driver pops events
//! from the global calendar and calls [`Kernel::handle`]; new events and
//! outbound messages are returned through [`Effects`].
//!
//! ## Fidelity notes (mapping to the paper)
//!
//! * **Delayed preemption** — readying a better-priority thread does *not*
//!   immediately preempt a busy CPU. Under [`PreemptMode::Lazy`] the switch
//!   waits for that CPU's next tick, interrupt, or block (worst case one
//!   full tick, §3); the RT modes force an IPI with the paper's
//!   "tenths of a millisecond" latency.
//! * **Tick-batched callouts** — `SleepUntil` wakeups ride the callout
//!   queue and are serviced only during tick processing, so the big-tick
//!   option naturally batches daemon wakeups (§3.1.1).
//! * **Busy-poll receives** — a polling thread occupies its CPU while
//!   waiting and, if preempted, cannot notice message arrival until
//!   redispatched; this is the amplification mechanism behind the
//!   cascading collective stalls of §2.
//! * **Interference as debt** — interrupt-context time (ticks, IPIs,
//!   device interrupts) extends the running thread's current busy segment
//!   rather than context-switching, matching interrupt semantics.

use crate::clock::ClockModel;
use crate::dispatch::{make_dispatcher, Dispatcher};
use crate::interrupts::{InterruptSource, InterruptSourceSpec};
use crate::io::{IoRequest, IoServiceModel};
use crate::msg::{Mailbox, Message, SrcSel, TagSel};
use crate::options::SchedOptions;
use crate::program::{Action, Program, StepCtx, WaitMode};
use crate::runq::{DispatchKey, ReadyQueue};
use crate::types::{
    CpuId, DaemonQueuePolicy, PreemptMode, Prio, QueueDiscipline, ThreadState, Tid,
};
use pa_simkit::{RngState, SimDur, SimRng, SimTime};
use pa_trace::{HookId, ThreadClass, TraceBuffer, TraceEvent};
use serde::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Events addressed to one node's kernel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum KernelEvent {
    /// Periodic timer interrupt on a CPU.
    Tick {
        /// CPU taking the tick.
        cpu: CpuId,
    },
    /// The running thread's busy segment completes (if `token` is current).
    SegEnd {
        /// CPU whose segment ends.
        cpu: CpuId,
        /// Occupancy token at scheduling time; stale tokens are ignored.
        token: u64,
    },
    /// A preemption inter-processor interrupt arrives.
    Ipi {
        /// Target CPU.
        cpu: CpuId,
    },
    /// A running busy-poller notices a delivered message (if still current).
    PollNotice {
        /// CPU of the poller.
        cpu: CpuId,
        /// Occupancy token at delivery time.
        token: u64,
    },
    /// A message arrives at this node (routed by the cluster fabric).
    Deliver {
        /// The message.
        msg: Message,
    },
    /// A device interrupt from the given source fires.
    DeviceInterrupt {
        /// Index into the kernel's interrupt source table.
        source: usize,
    },
    /// A device interrupt handler finishes (trace bookkeeping + resched).
    InterruptEnd {
        /// CPU that was interrupted.
        cpu: CpuId,
        /// Pseudo-tid of the handler.
        itid: Tid,
    },
    /// Scheduler nudge after a post-boot spawn ([`Kernel::spawn_at`]): run
    /// the dispatcher on `cpu` so a freshly Ready thread is picked up
    /// without waiting for the next tick. Unlike [`KernelEvent::Ipi`] this
    /// models no interrupt cost — job launch overhead is accounted by the
    /// batch layer, not the node kernel.
    Resched {
        /// CPU whose dispatcher runs.
        cpu: CpuId,
    },
}

/// A voided in-flight [`KernelEvent::SegEnd`] timer. The kernel already
/// guards against stale timers with occupancy tokens; this tells the
/// driver the calendar entry itself is dead so it can be removed instead
/// of surfacing later as a no-op pop (the tombstone source in
/// cancel-heavy co-scheduled runs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegCancel {
    /// CPU whose outstanding segment timer is void.
    pub cpu: CpuId,
    /// Number of `Effects::schedule` entries already emitted when this
    /// cancel was recorded. A handler may void a segment and then arm a
    /// new one for the same CPU in a single event, so the driver must
    /// interleave cancels with schedules in program order: apply this
    /// cancel after scheduling exactly `after` entries of the batch.
    pub after: u32,
}

/// Side effects of handling one event, drained by the cluster driver.
#[derive(Debug, Default)]
pub struct Effects {
    /// Events to schedule for this same node (global time).
    pub schedule: Vec<(SimTime, KernelEvent)>,
    /// Messages leaving this thread context; the fabric routes them (both
    /// cross-node and node-local loopback).
    pub outbound: Vec<Message>,
    /// Segment timers voided by this event, watermarked against
    /// `schedule` (see [`SegCancel::after`]).
    pub cancels: Vec<SegCancel>,
}

impl Effects {
    /// Empty effects buffer.
    pub fn new() -> Effects {
        Effects::default()
    }

    /// Clear for reuse.
    pub fn clear(&mut self) {
        self.schedule.clear();
        self.outbound.clear();
        self.cancels.clear();
    }

    /// Record that `cpu`'s in-flight segment timer is void, watermarked
    /// at the current position in `schedule`.
    pub fn cancel_seg(&mut self, cpu: CpuId) {
        self.cancels.push(SegCancel {
            cpu,
            after: self.schedule.len() as u32,
        });
    }
}

/// Specification for spawning a thread.
#[derive(Debug, Clone)]
pub struct ThreadSpec {
    /// Name shown in traces and usage reports.
    pub name: String,
    /// Attribution class.
    pub class: ThreadClass,
    /// Initial dispatching priority.
    pub prio: Prio,
    /// Preferred home CPU. Application threads are pinned 1:1 to it; for
    /// other classes it seeds the per-CPU queue policy and is assigned
    /// round-robin when `None`.
    pub home_cpu: Option<CpuId>,
}

impl ThreadSpec {
    /// Convenience constructor.
    pub fn new(name: impl Into<String>, class: ThreadClass, prio: Prio) -> ThreadSpec {
        ThreadSpec {
            name: name.into(),
            class,
            prio,
            home_cpu: None,
        }
    }

    /// Pin/home the thread to a CPU.
    pub fn on_cpu(mut self, cpu: CpuId) -> ThreadSpec {
        self.home_cpu = Some(cpu);
        self
    }
}

/// What a thread resumes into when it next holds the CPU.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
enum Cont {
    /// Previous action finished; call `Program::step`.
    Step,
    /// Finish a send: emit the message, then step.
    FinishSend(Message),
    /// Finish a receive: the matched message is in `in_msg`.
    FinishRecv,
    /// Busy-polling for a matching message (occupies the CPU).
    PollWait { tag: TagSel, src: SrcSel },
    /// Blocked waiting for a matching message.
    BlockedRecv { tag: TagSel, src: SrcSel },
    /// Blocked in the callout queue.
    Sleeping,
    /// Blocked on an I/O completion.
    IoWait,
    /// I/O daemon blocked waiting for work.
    IoIdle,
}

/// Why a thread entered [`ThreadState::Blocked`], latched at block time.
///
/// Latching matters: [`Kernel::on_deliver`] rewrites `cont` to
/// `FinishRecv` *before* waking the sleeper, so the reason can no longer
/// be inferred from the continuation at wake time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum BlockReason {
    /// Not blocked (or reason already consumed by a wake).
    None,
    /// Blocked in `Recv { wait: Block }` — collective/message wait.
    Msg,
    /// Blocked on an I/O completion (or the I/O daemon idling).
    Io,
    /// Blocked in the callout queue (`SleepUntil`).
    Sleep,
}

/// One thread's kernel-side state.
struct ThreadSlot {
    name: String,
    class: ThreadClass,
    prio: Prio,
    discipline: QueueDiscipline,
    state: ThreadState,
    program: Option<Box<dyn Program>>,
    mailbox: Mailbox,
    cont: Cont,
    /// Remaining CPU demand of the current busy segment when off-CPU.
    remaining: SimDur,
    /// Message to hand to the program at the next step.
    in_msg: Option<Message>,
    /// Accumulated on-CPU time.
    cpu_time: SimDur,
    last_dispatch: SimTime,
    /// When the thread last entered a ready queue (runqueue-wait stats).
    enqueued_at: SimTime,
    /// When the thread last started busy-polling on a CPU (spin stats).
    poll_since: SimTime,
    // --- per-thread wait-state accounting (pa-blame substrate) ---
    /// When the thread was spawned (accounting epoch).
    spawned_at: SimTime,
    /// Total closed ready-queue wait.
    runq_wait: SimDur,
    /// Total closed busy-poll spin (subset of `cpu_time`).
    poll_spin: SimDur,
    /// Device-interrupt time charged into this thread's segments as debt
    /// (subset of `cpu_time` once the debt is served).
    noise_debt: SimDur,
    /// Total closed blocked time, split by the latched [`BlockReason`].
    blk_msg: SimDur,
    blk_io: SimDur,
    blk_sleep: SimDur,
    /// When the thread last entered [`ThreadState::Blocked`].
    blocked_since: SimTime,
    /// Why it is blocked (valid while state is Blocked).
    block_reason: BlockReason,
    /// When the thread exited; end of its accounting interval.
    exited_at: Option<SimTime>,
}

/// One CPU's dispatcher state.
struct Cpu {
    running: Option<Tid>,
    /// Bumped on every occupancy change; stale tokens void in-flight events.
    token: u64,
    /// Global end time of the scheduled busy segment (None while polling
    /// or idle).
    seg_end: Option<SimTime>,
    /// Interference accumulated during the current segment.
    debt: SimDur,
    slice_start: SimTime,
    local_q: ReadyQueue,
    ipi_pending: bool,
}

/// A row of the per-thread usage report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageRow {
    /// Thread name.
    pub name: String,
    /// Thread class.
    pub class: ThreadClass,
    /// Total on-CPU time.
    pub cpu_time: SimDur,
}

/// Exhaustive wall-time decomposition of one thread, produced by
/// [`Kernel::thread_account`].
///
/// Invariant (exact, in integer nanoseconds): for any query time `end`
/// at or after every event this kernel has handled,
/// `wall == cpu + runq_wait + blocked_msg + blocked_io + blocked_sleep`.
/// Every instant of the thread's life is in exactly one bucket: it is
/// Running (cpu), Ready in a queue (runq_wait), or Blocked (one of the
/// three latched reasons). `poll_spin` and `noise_debt` are *subsets* of
/// `cpu`, not additional buckets: spinning happens on-CPU, and served
/// interference debt extends on-CPU segments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ThreadAccount {
    /// Start of the accounting interval (spawn time).
    pub spawned_at: SimTime,
    /// End of the accounting interval (exit time, or the query time for
    /// threads still live at a horizon cut).
    pub end: SimTime,
    /// `end - spawned_at`.
    pub wall: SimDur,
    /// On-CPU time, including busy-poll spin and served debt.
    pub cpu: SimDur,
    /// Ready-queue wait before dispatch.
    pub runq_wait: SimDur,
    /// Blocked waiting for a message (`Recv { wait: Block }`).
    pub blocked_msg: SimDur,
    /// Blocked on I/O completion (or the I/O daemon idling).
    pub blocked_io: SimDur,
    /// Blocked in the callout queue (`SleepUntil`).
    pub blocked_sleep: SimDur,
    /// Busy-poll spin; subset of `cpu`.
    pub poll_spin: SimDur,
    /// Device-interrupt debt charged into this thread's segments; subset
    /// of `cpu` once served (a horizon cut can leave charged debt
    /// unserved — consumers treat the compute residual as signed).
    pub noise_debt: SimDur,
}

/// Display names of the runqueue-wait priority bands (see [`prio_band`]).
pub const RUNQ_BANDS: [&str; 4] = ["rt", "daemon", "normal", "user"];

/// Map a priority to its runqueue-wait accounting band: co-scheduler/RT
/// favored (< 40), observed daemons (40–59), normal timeshare (60–89),
/// user/unfavored (≥ 90). AIX semantics: lower value = more favored.
pub fn prio_band(prio: Prio) -> usize {
    match prio.0 {
        0..=39 => 0,
        40..=59 => 1,
        60..=89 => 2,
        _ => 3,
    }
}

/// Dispatcher counters for one node, bumped inline on the hot path
/// (plain `u64` adds; the sim is single-threaded so there are no locks).
/// Everything here is simulation-determined — fold into a `pa-obs`
/// registry post-run without breaking snapshot identity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Threads placed on a CPU.
    pub dispatches: u64,
    /// Dispatches that resumed a preempted segment (context-switch cost
    /// charged into the resumed demand).
    pub ctx_switches: u64,
    /// Running threads taken off a CPU and requeued (preemption, yield,
    /// round-robin).
    pub preemptions: u64,
    /// Preemption IPIs scheduled (zero under `PreemptMode::Lazy`).
    pub ipis_sent: u64,
    /// Preemption IPIs taken.
    pub ipis_taken: u64,
    /// Decrementer ticks processed.
    pub ticks: u64,
    /// Callouts fired from tick processing (daemon wakeup batches).
    pub callouts_fired: u64,
    /// CPU time burnt busy-polling for messages, in ns (§2's cascade
    /// amplifier: a preempted poller spins again once redispatched).
    pub poll_spin_ns: u64,
    /// Total ready-queue wait before dispatch, in ns, per priority band.
    pub runq_wait_ns: [u64; 4],
    /// Dispatches counted into each priority band.
    pub runq_waits: [u64; 4],
}

/// One ready queue's checkpointed contents: `(key, arrival seq, tid)`
/// entries in dispatch order plus the arrival-sequence allocator.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RunqSnap {
    entries: Vec<(DispatchKey, u64, Tid)>,
    next_seq: u64,
}

impl RunqSnap {
    fn capture(q: &ReadyQueue) -> RunqSnap {
        let (entries, next_seq) = q.snapshot();
        RunqSnap { entries, next_seq }
    }

    fn rebuild(&self) -> Result<ReadyQueue, String> {
        ReadyQueue::from_parts(self.entries.clone(), self.next_seq)
    }
}

/// One CPU's checkpointed dispatcher state.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CpuSnap {
    running: Option<Tid>,
    token: u64,
    seg_end: Option<SimTime>,
    debt: SimDur,
    slice_start: SimTime,
    local_q: RunqSnap,
    ipi_pending: bool,
}

/// One thread's checkpointed kernel-side state. The program itself is
/// rebuilt from the experiment spec on restore; only its opaque
/// [`Program::snapshot_state`] value travels in the checkpoint.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ThreadSnap {
    name: String,
    state: ThreadState,
    prio: Prio,
    cont: Cont,
    remaining: SimDur,
    in_msg: Option<Message>,
    cpu_time: SimDur,
    last_dispatch: SimTime,
    enqueued_at: SimTime,
    poll_since: SimTime,
    spawned_at: SimTime,
    runq_wait: SimDur,
    poll_spin: SimDur,
    noise_debt: SimDur,
    blk_msg: SimDur,
    blk_io: SimDur,
    blk_sleep: SimDur,
    blocked_since: SimTime,
    block_reason: BlockReason,
    exited_at: Option<SimTime>,
    mailbox: Vec<Message>,
    program: Value,
}

/// [`KernelStats`] in serializable form (the per-band arrays become
/// vectors because the wire format has no fixed-size arrays).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct KernelStatsSnap {
    dispatches: u64,
    ctx_switches: u64,
    preemptions: u64,
    ipis_sent: u64,
    ipis_taken: u64,
    ticks: u64,
    callouts_fired: u64,
    poll_spin_ns: u64,
    runq_wait_ns: Vec<u64>,
    runq_waits: Vec<u64>,
}

/// The trace ring's checkpointed contents (capacity, mask, and thread
/// registrations are construction-time state, rebuilt from the spec).
#[derive(Debug, Clone, Serialize, Deserialize)]
struct TraceSnap {
    events: Vec<TraceEvent>,
    dropped: u64,
    evicted_until: Option<SimTime>,
}

/// Complete mutable state of a booted [`Kernel`], produced by
/// [`Kernel::snapshot`] and consumed by [`Kernel::restore`].
///
/// A snapshot is an *overlay*, not a free-standing kernel: restore
/// requires a kernel rebuilt through the identical assembly sequence
/// (same spawns in the same order, same options, same interrupt sources)
/// and then booted, so that construction-time state — programs, trace
/// registrations, queue disciplines, the I/O model — already exists.
/// `restore` validates node id, CPU/thread counts, thread names, and
/// scheduler options, and fails loudly on any mismatch.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelSnapshot {
    node: u32,
    clock: ClockModel,
    opts: SchedOptions,
    cpus: Vec<CpuSnap>,
    threads: Vec<ThreadSnap>,
    global_q: RunqSnap,
    callouts: Vec<(SimTime, u64, Tid)>,
    callout_seq: u64,
    io_pending: Vec<IoRequest>,
    io_next_token: u64,
    rng: RngState,
    ipi_in_flight: bool,
    app_alive: u64,
    next_daemon_home: u8,
    /// Opaque policy state of the active dispatcher (`Null` for AIX).
    disp: Value,
    stats: KernelStatsSnap,
    trace: TraceSnap,
}

fn band_array(v: &[u64], what: &str) -> Result<[u64; 4], String> {
    v.try_into()
        .map_err(|_| format!("{what} has {} priority bands, expected 4", v.len()))
}

/// Hard cap on consecutive zero-cost program actions, to catch programs
/// that livelock the stepping loop.
const MAX_ZERO_COST_STEPS: u32 = 100_000;

/// The simulated node kernel. See module docs.
pub struct Kernel {
    node: u32,
    ncpus: u8,
    opts: SchedOptions,
    clock: ClockModel,
    cpus: Vec<Cpu>,
    threads: Vec<ThreadSlot>,
    global_q: ReadyQueue,
    /// Active dispatcher policy (selected by `opts.dispatcher`).
    disp: Box<dyn Dispatcher>,
    /// (local wake time, seq) -> tid. Serviced during tick processing.
    callouts: BTreeMap<(SimTime, u64), Tid>,
    callout_seq: u64,
    io_pending: VecDeque<IoRequest>,
    io_daemon: Option<Tid>,
    io_model: IoServiceModel,
    io_next_token: u64,
    trace: TraceBuffer,
    rng: SimRng,
    /// RtIpi mode: at most one preemption IPI in flight node-wide.
    ipi_in_flight: bool,
    interrupt_sources: Vec<InterruptSource>,
    app_alive: usize,
    next_daemon_home: u8,
    booted: bool,
    stats: KernelStats,
}

impl Kernel {
    /// Create a kernel for node `node` with `ncpus` CPUs.
    ///
    /// # Panics
    /// Panics if the options fail [`SchedOptions::validate`] or `ncpus` is 0.
    pub fn new(
        node: u32,
        ncpus: u8,
        opts: SchedOptions,
        clock: ClockModel,
        rng: SimRng,
        trace_capacity: usize,
    ) -> Kernel {
        opts.validate()
            .unwrap_or_else(|e| panic!("invalid SchedOptions: {e}"));
        assert!(ncpus > 0, "a node needs at least one CPU");
        Kernel {
            node,
            ncpus,
            opts,
            clock,
            cpus: (0..ncpus)
                .map(|_| Cpu {
                    running: None,
                    token: 0,
                    seg_end: None,
                    debt: SimDur::ZERO,
                    slice_start: SimTime::ZERO,
                    local_q: ReadyQueue::new(),
                    ipi_pending: false,
                })
                .collect(),
            threads: Vec::new(),
            global_q: ReadyQueue::new(),
            disp: make_dispatcher(opts.dispatcher),
            callouts: BTreeMap::new(),
            callout_seq: 0,
            io_pending: VecDeque::new(),
            io_daemon: None,
            io_model: IoServiceModel::default(),
            io_next_token: 0,
            trace: TraceBuffer::new(trace_capacity),
            rng,
            ipi_in_flight: false,
            interrupt_sources: Vec::new(),
            app_alive: 0,
            next_daemon_home: 0,
            booted: false,
            stats: KernelStats::default(),
        }
    }

    // ------------------------------------------------------------------
    // Setup API (before boot)
    // ------------------------------------------------------------------

    /// Node index.
    pub fn node_id(&self) -> u32 {
        self.node
    }

    /// Number of CPUs.
    pub fn ncpus(&self) -> u8 {
        self.ncpus
    }

    /// The active option block.
    pub fn options(&self) -> &SchedOptions {
        &self.opts
    }

    /// The node clock (mutable: the co-scheduler's startup sync uses this).
    pub fn clock_mut(&mut self) -> &mut ClockModel {
        &mut self.clock
    }

    /// The node clock.
    pub fn clock(&self) -> &ClockModel {
        &self.clock
    }

    /// The node's trace buffer.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Mutable trace buffer (for enabling hooks).
    pub fn trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.trace
    }

    /// Replace the I/O service model.
    pub fn set_io_model(&mut self, model: IoServiceModel) {
        self.io_model = model;
    }

    /// The I/O service model.
    pub fn io_model(&self) -> &IoServiceModel {
        &self.io_model
    }

    /// Spawn a thread. Threads spawned before [`Kernel::boot`] start Ready;
    /// for mid-run arrivals (the batch-queue layer's job launches) use
    /// [`Kernel::spawn_at`] instead.
    pub fn spawn(&mut self, spec: ThreadSpec, program: Box<dyn Program>) -> Tid {
        assert!(!self.booted, "spawn after boot: use spawn_at");
        self.spawn_inner(spec, program, SimTime::ZERO).0
    }

    /// Spawn a thread on a *booted* node at global time `now` — a mid-run
    /// job arrival. The thread becomes Ready immediately and a
    /// [`KernelEvent::Resched`] is scheduled for its home CPU so an idle
    /// or preemptible CPU picks it up without waiting for the next tick.
    /// `now` must not precede any event already handled by this kernel;
    /// the cluster engine guarantees this by spawning only at window
    /// barriers.
    pub fn spawn_at(
        &mut self,
        now: SimTime,
        spec: ThreadSpec,
        program: Box<dyn Program>,
        fx: &mut Effects,
    ) -> Tid {
        assert!(self.booted, "spawn_at before boot: use spawn");
        let (tid, home) = self.spawn_inner(spec, program, now);
        fx.schedule.push((now, KernelEvent::Resched { cpu: home }));
        tid
    }

    fn spawn_inner(
        &mut self,
        spec: ThreadSpec,
        program: Box<dyn Program>,
        enq_at: SimTime,
    ) -> (Tid, CpuId) {
        let tid = Tid(self.threads.len() as u32);
        let home = spec.home_cpu.unwrap_or_else(|| {
            let h = CpuId(self.next_daemon_home % self.ncpus);
            self.next_daemon_home = self.next_daemon_home.wrapping_add(1);
            h
        });
        assert!(home.0 < self.ncpus, "home CPU {home:?} out of range");
        let discipline = if spec.class == ThreadClass::App {
            QueueDiscipline::Pinned(home)
        } else {
            match self.opts.daemon_queue {
                DaemonQueuePolicy::PerCpu => QueueDiscipline::Pinned(home),
                DaemonQueuePolicy::Global => QueueDiscipline::Global,
            }
        };
        if spec.class == ThreadClass::App {
            self.app_alive += 1;
        }
        self.trace
            .register_thread(tid.0, spec.name.clone(), spec.class);
        self.threads.push(ThreadSlot {
            name: spec.name,
            class: spec.class,
            prio: spec.prio,
            discipline,
            state: ThreadState::Ready,
            program: Some(program),
            mailbox: Mailbox::new(),
            cont: Cont::Step,
            remaining: SimDur::ZERO,
            in_msg: None,
            cpu_time: SimDur::ZERO,
            last_dispatch: SimTime::ZERO,
            enqueued_at: enq_at,
            poll_since: SimTime::ZERO,
            spawned_at: enq_at,
            runq_wait: SimDur::ZERO,
            poll_spin: SimDur::ZERO,
            noise_debt: SimDur::ZERO,
            blk_msg: SimDur::ZERO,
            blk_io: SimDur::ZERO,
            blk_sleep: SimDur::ZERO,
            blocked_since: SimTime::ZERO,
            block_reason: BlockReason::None,
            exited_at: None,
        });
        // Policy state must exist before the first enqueue keys it.
        self.disp.on_spawn(tid);
        self.enqueue(tid, enq_at);
        (tid, home)
    }

    /// Register a device-interrupt source. Returns its pseudo-tid.
    pub fn add_interrupt_source(&mut self, spec: InterruptSourceSpec) -> Tid {
        assert!(!self.booted, "add interrupt sources before boot");
        let itid = Tid(self.threads.len() as u32);
        self.trace
            .register_thread(itid.0, spec.name.clone(), ThreadClass::Interrupt);
        // Pseudo slot so tid indexing stays uniform; never scheduled.
        self.threads.push(ThreadSlot {
            name: spec.name.clone(),
            class: ThreadClass::Interrupt,
            prio: Prio(0),
            discipline: QueueDiscipline::Global,
            state: ThreadState::Exited,
            program: None,
            mailbox: Mailbox::new(),
            cont: Cont::Step,
            remaining: SimDur::ZERO,
            in_msg: None,
            cpu_time: SimDur::ZERO,
            last_dispatch: SimTime::ZERO,
            enqueued_at: SimTime::ZERO,
            poll_since: SimTime::ZERO,
            spawned_at: SimTime::ZERO,
            runq_wait: SimDur::ZERO,
            poll_spin: SimDur::ZERO,
            noise_debt: SimDur::ZERO,
            blk_msg: SimDur::ZERO,
            blk_io: SimDur::ZERO,
            blk_sleep: SimDur::ZERO,
            blocked_since: SimTime::ZERO,
            block_reason: BlockReason::None,
            exited_at: Some(SimTime::ZERO),
        });
        // Pseudo-slots keep policy state tid-dense too (never dispatched).
        self.disp.on_spawn(itid);
        self.interrupt_sources.push(InterruptSource { spec, itid });
        itid
    }

    /// Designate the I/O daemon thread servicing [`Action::IoSubmit`].
    pub fn set_io_daemon(&mut self, tid: Tid) {
        self.io_daemon = Some(tid);
    }

    /// Boot the node at `now`: schedules first ticks and interrupt
    /// arrivals, then fills every CPU from the ready queues.
    pub fn boot(&mut self, now: SimTime, fx: &mut Effects) {
        assert!(!self.booted, "boot called twice");
        self.booted = true;
        let period = self.opts.tick_period();
        for c in 0..self.ncpus {
            let phase = self.opts.tick_phase(c, self.ncpus);
            let first = self.clock.next_local_boundary(now, period, phase);
            fx.schedule
                .push((first, KernelEvent::Tick { cpu: CpuId(c) }));
        }
        for i in 0..self.interrupt_sources.len() {
            let mean = self.interrupt_sources[i].spec.mean_interval;
            let gap = self.rng.exp_dur(mean);
            fx.schedule
                .push((now + gap, KernelEvent::DeviceInterrupt { source: i }));
        }
        for c in 0..self.ncpus {
            if self.cpus[c as usize].running.is_none() {
                self.dispatch_next(CpuId(c), now, fx);
            }
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Number of live application threads.
    pub fn app_alive(&self) -> usize {
        self.app_alive
    }

    /// Current priority of a thread.
    pub fn thread_prio(&self, tid: Tid) -> Prio {
        self.threads[tid.0 as usize].prio
    }

    /// Current state of a thread.
    pub fn thread_state(&self, tid: Tid) -> ThreadState {
        self.threads[tid.0 as usize].state
    }

    /// Accumulated on-CPU time of a thread (updated when it leaves a CPU).
    pub fn thread_cpu_time(&self, tid: Tid) -> SimDur {
        self.threads[tid.0 as usize].cpu_time
    }

    /// Exhaustive wall-time decomposition of a thread at query time
    /// `end`, which must be at or after every event this kernel has
    /// handled (the cluster driver's final time qualifies). Open
    /// intervals — a thread still running, queued, or blocked at a
    /// horizon cut — are closed against `end` by its current state, so
    /// the [`ThreadAccount`] sum invariant holds mid-run too.
    pub fn thread_account(&self, tid: Tid, end: SimTime) -> ThreadAccount {
        let t = &self.threads[tid.0 as usize];
        let mut acc = ThreadAccount {
            spawned_at: t.spawned_at,
            end,
            wall: SimDur::ZERO,
            cpu: t.cpu_time,
            runq_wait: t.runq_wait,
            blocked_msg: t.blk_msg,
            blocked_io: t.blk_io,
            blocked_sleep: t.blk_sleep,
            poll_spin: t.poll_spin,
            noise_debt: t.noise_debt,
        };
        match t.state {
            ThreadState::Running => {
                acc.cpu += end.since(t.last_dispatch);
                if matches!(t.cont, Cont::PollWait { .. }) {
                    acc.poll_spin += end.since(t.poll_since);
                }
            }
            ThreadState::Ready => acc.runq_wait += end.since(t.enqueued_at),
            ThreadState::Blocked => {
                let open = end.since(t.blocked_since);
                match t.block_reason {
                    BlockReason::Msg => acc.blocked_msg += open,
                    BlockReason::Io => acc.blocked_io += open,
                    BlockReason::Sleep => acc.blocked_sleep += open,
                    BlockReason::None => {
                        debug_assert!(false, "blocked thread without a latched reason")
                    }
                }
            }
            ThreadState::Exited => acc.end = t.exited_at.unwrap_or(t.spawned_at),
        }
        acc.wall = acc.end.since(acc.spawned_at);
        acc
    }

    /// Deterministic counters of one thread's program (empty for
    /// programless pseudo-threads). Exited threads keep their programs,
    /// so final counters stay readable.
    pub fn thread_program_metrics(&self, tid: Tid) -> Vec<(&'static str, u64)> {
        self.threads[tid.0 as usize]
            .program
            .as_ref()
            .map_or_else(Vec::new, |p| p.metrics())
    }

    /// Per-thread usage rows (for the overhead audit experiment).
    pub fn usage_report(&self) -> Vec<UsageRow> {
        self.threads
            .iter()
            .filter(|t| t.program.is_some() || t.cpu_time > SimDur::ZERO)
            .map(|t| UsageRow {
                name: t.name.clone(),
                class: t.class,
                cpu_time: t.cpu_time,
            })
            .collect()
    }

    /// Thread currently running on `cpu`.
    pub fn running_on(&self, cpu: CpuId) -> Option<Tid> {
        self.cpus[cpu.0 as usize].running
    }

    /// Dispatcher counters accumulated since boot.
    pub fn stats(&self) -> &KernelStats {
        &self.stats
    }

    /// Deterministic per-program counters: one `(kind, metric, value)` row
    /// per metric of every thread whose program reports any (exited
    /// threads included — programs are retained after `Action::Exit`).
    pub fn program_metrics(&self) -> Vec<(&'static str, &'static str, u64)> {
        let mut rows = Vec::new();
        for t in &self.threads {
            if let Some(p) = &t.program {
                let kind = p.kind();
                rows.extend(p.metrics().into_iter().map(|(name, v)| (kind, name, v)));
            }
        }
        rows
    }

    // ------------------------------------------------------------------
    // Event handling
    // ------------------------------------------------------------------

    /// Handle one event at global time `now`.
    pub fn handle(&mut self, now: SimTime, ev: KernelEvent, fx: &mut Effects) {
        debug_assert!(self.booted, "events before boot");
        match ev {
            KernelEvent::Tick { cpu } => self.on_tick(cpu, now, fx),
            KernelEvent::SegEnd { cpu, token } => self.on_seg_end(cpu, token, now, fx),
            KernelEvent::Ipi { cpu } => self.on_ipi(cpu, now, fx),
            KernelEvent::PollNotice { cpu, token } => self.on_poll_notice(cpu, token, now, fx),
            KernelEvent::Deliver { msg } => self.on_deliver(msg, now, fx),
            KernelEvent::DeviceInterrupt { source } => self.on_device_interrupt(source, now, fx),
            KernelEvent::InterruptEnd { cpu, itid } => self.on_interrupt_end(cpu, itid, now, fx),
            KernelEvent::Resched { cpu } => self.resched(cpu, now, fx),
        }
    }

    fn on_tick(&mut self, cpu: CpuId, now: SimTime, fx: &mut Effects) {
        let ci = cpu.0 as usize;
        // Decrementer processing steals time from the running thread.
        let mut steal = self.opts.costs.tick_cost;

        // Service callouts due in local time. Every CPU's tick services the
        // node-wide queue (master-agnostic; wake granularity is set by tick
        // phasing, which is the point of §3.2.1).
        let local_now = self.clock.to_local(now);
        let mut woken = Vec::new();
        while let Some((&(t, seq), &tid)) = self.callouts.first_key_value() {
            if t > local_now {
                break;
            }
            self.callouts.remove(&(t, seq));
            woken.push(tid);
        }
        steal += self.opts.costs.callout_cost * woken.len() as u64;

        self.stats.ticks += 1;
        self.stats.callouts_fired += woken.len() as u64;
        let running = self.cpus[ci].running.map_or(0, |t| t.0);
        self.trace
            .emit(now, cpu.0, HookId::Tick, running, steal.nanos());
        if self.cpus[ci].seg_end.is_some() {
            self.cpus[ci].debt += steal;
        }

        for tid in woken {
            self.wake(tid, now, fx);
        }

        // The tick is the lazy kernel's notice point for pending
        // preemptions and the round-robin boundary.
        self.resched(cpu, now, fx);

        // Next tick for this CPU.
        let period = self.opts.tick_period();
        let phase = self.opts.tick_phase(cpu.0, self.ncpus);
        let local_next = self.clock.to_local(now).next_boundary(period, phase);
        fx.schedule
            .push((self.clock.to_global(local_next), KernelEvent::Tick { cpu }));
    }

    fn on_seg_end(&mut self, cpu: CpuId, token: u64, now: SimTime, fx: &mut Effects) {
        let ci = cpu.0 as usize;
        if self.cpus[ci].token != token {
            return; // stale: occupancy changed since scheduling
        }
        let Some(tid) = self.cpus[ci].running else {
            return;
        };
        debug_assert!(self.cpus[ci].seg_end.is_some(), "SegEnd without a segment");
        // Interference extended the segment: keep running for the debt.
        let debt = self.cpus[ci].debt;
        if !debt.is_zero() {
            self.cpus[ci].debt = SimDur::ZERO;
            let end = now + debt;
            self.cpus[ci].seg_end = Some(end);
            let token = self.cpus[ci].token;
            fx.schedule.push((end, KernelEvent::SegEnd { cpu, token }));
            return;
        }
        self.cpus[ci].seg_end = None;
        self.threads[tid.0 as usize].remaining = SimDur::ZERO;
        self.seg_complete(cpu, tid, now, fx);
    }

    fn on_ipi(&mut self, cpu: CpuId, now: SimTime, fx: &mut Effects) {
        let ci = cpu.0 as usize;
        self.ipi_in_flight = false;
        self.cpus[ci].ipi_pending = false;
        self.stats.ipis_taken += 1;
        let running = self.cpus[ci].running.map_or(0, |t| t.0);
        self.trace.emit(now, cpu.0, HookId::Ipi, running, 0);
        if self.cpus[ci].seg_end.is_some() {
            self.cpus[ci].debt += self.opts.costs.ipi_cost;
        }
        self.resched(cpu, now, fx);
    }

    fn on_poll_notice(&mut self, cpu: CpuId, token: u64, now: SimTime, fx: &mut Effects) {
        let ci = cpu.0 as usize;
        if self.cpus[ci].token != token {
            return;
        }
        let Some(tid) = self.cpus[ci].running else {
            return;
        };
        let recv_cost = self.opts.costs.recv_overhead;
        let slot = &mut self.threads[tid.0 as usize];
        let Cont::PollWait { tag, src } = slot.cont else {
            return;
        };
        if let Some(m) = slot.mailbox.take_match(tag, src) {
            let spin = now.since(slot.poll_since);
            slot.in_msg = Some(m);
            slot.cont = Cont::FinishRecv;
            slot.remaining = recv_cost;
            slot.poll_spin += spin;
            self.stats.poll_spin_ns += spin.nanos();
            self.start_segment(cpu, tid, now, fx);
        }
    }

    fn on_deliver(&mut self, msg: Message, now: SimTime, fx: &mut Effects) {
        debug_assert_eq!(msg.dst.node, self.node, "message routed to wrong node");
        let tid = msg.dst.tid;
        if tid.0 as usize >= self.threads.len()
            || self.threads[tid.0 as usize].state == ThreadState::Exited
        {
            return; // late delivery to a finished thread: dropped
        }
        let recv_cost = self.opts.costs.recv_overhead;
        let poll_detect = self.opts.costs.poll_detect;
        let slot = &mut self.threads[tid.0 as usize];
        slot.mailbox.deliver(msg);
        match (&slot.cont, slot.state) {
            (&Cont::PollWait { tag, src }, ThreadState::Running)
                if slot.mailbox.has_match(tag, src) =>
            {
                // Find the poller's CPU and schedule the notice.
                let cpu = self
                    .cpus
                    .iter()
                    .position(|c| c.running == Some(tid))
                    .expect("running thread must occupy a CPU");
                let token = self.cpus[cpu].token;
                fx.schedule.push((
                    now + poll_detect,
                    KernelEvent::PollNotice {
                        cpu: CpuId(cpu as u8),
                        token,
                    },
                ));
            }
            (&Cont::BlockedRecv { tag, src }, ThreadState::Blocked)
                if slot.mailbox.has_match(tag, src) =>
            {
                // Message wakeups are interrupt-driven (not callouts).
                let m = slot
                    .mailbox
                    .take_match(tag, src)
                    .expect("match just checked");
                slot.in_msg = Some(m);
                slot.cont = Cont::FinishRecv;
                slot.remaining = recv_cost;
                self.wake(tid, now, fx);
            }
            _ => {} // queued for a future Recv
        }
    }

    fn on_device_interrupt(&mut self, source: usize, now: SimTime, fx: &mut Effects) {
        let nc = self.ncpus;
        let (cpu, dur, itid) = {
            let fixed = self.interrupt_sources[source].spec.cpu;
            let burst_min = self.interrupt_sources[source].spec.burst_min;
            let burst_max = self.interrupt_sources[source].spec.burst_max;
            let itid = self.interrupt_sources[source].itid;
            let cpu = fixed.unwrap_or_else(|| CpuId(self.rng.range(0, u64::from(nc)) as u8));
            let dur = self
                .rng
                .dur_range(burst_min, burst_max + SimDur::from_nanos(1));
            (cpu, dur, itid)
        };
        let ci = cpu.0 as usize;
        if let Some(tid) = self.cpus[ci].running {
            self.trace.emit(now, cpu.0, HookId::Undispatch, tid.0, 0);
            if self.cpus[ci].seg_end.is_some() {
                self.cpus[ci].debt += dur;
                // Noise attribution: device interrupts are the
                // profile-injected interference; tick/IPI steal is kernel
                // overhead and stays in the unattributed cpu residual.
                self.threads[tid.0 as usize].noise_debt += dur;
            }
        }
        self.trace.emit(now, cpu.0, HookId::Dispatch, itid.0, 0);
        self.threads[itid.0 as usize].cpu_time += dur;
        fx.schedule
            .push((now + dur, KernelEvent::InterruptEnd { cpu, itid }));
        // Next arrival of this source.
        let mean = self.interrupt_sources[source].spec.mean_interval;
        let gap = self.rng.exp_dur(mean);
        fx.schedule
            .push((now + gap, KernelEvent::DeviceInterrupt { source }));
    }

    fn on_interrupt_end(&mut self, cpu: CpuId, itid: Tid, now: SimTime, fx: &mut Effects) {
        self.trace.emit(now, cpu.0, HookId::Undispatch, itid.0, 0);
        if let Some(tid) = self.cpus[cpu.0 as usize].running {
            self.trace.emit(now, cpu.0, HookId::Dispatch, tid.0, 0);
        }
        // Interrupt exit is a preemption notice point (§3: "takes an
        // interrupt").
        self.resched(cpu, now, fx);
    }

    // ------------------------------------------------------------------
    // Dispatcher internals
    // ------------------------------------------------------------------

    /// Queue a Ready thread under the policy's key, returning the key so
    /// placement can compare it against runners without recomputing.
    fn enqueue(&mut self, tid: Tid, now: SimTime) -> DispatchKey {
        let prio = self.threads[tid.0 as usize].prio;
        let key = self.disp.enqueue_key(tid, prio);
        self.threads[tid.0 as usize].enqueued_at = now;
        match self.threads[tid.0 as usize].discipline {
            QueueDiscipline::Pinned(c) => self.cpus[c.0 as usize].local_q.push(tid, key),
            QueueDiscipline::Global => self.global_q.push(tid, key),
        }
        key
    }

    /// Remove `tid` from whatever queue holds it (priority change path).
    fn dequeue(&mut self, tid: Tid) -> bool {
        if self.global_q.remove(tid) {
            return true;
        }
        self.cpus.iter_mut().any(|c| c.local_q.remove(tid))
    }

    /// Is `tid` waiting in some ready queue?
    fn is_queued(&self, tid: Tid) -> bool {
        self.global_q.contains(tid) || self.cpus.iter().any(|c| c.local_q.contains(tid))
    }

    /// Choose the next thread for `cpu`, honouring local/global key order
    /// and idle stealing.
    fn pick_for(&mut self, cpu: CpuId) -> Option<Tid> {
        let ci = cpu.0 as usize;
        let local_best = self.cpus[ci].local_q.best_key();
        let global_best = self.global_q.best_key();
        let picked = match (local_best, global_best) {
            (Some(l), Some(g)) if g < l => self.global_q.pop(),
            (Some(_), _) => self.cpus[ci].local_q.pop(),
            (None, Some(_)) => self.global_q.pop(),
            (None, None) => {
                if !self.opts.idle_steal {
                    return None;
                }
                // Idle steal: take the best thread pinned to another CPU.
                let mut best: Option<(DispatchKey, usize)> = None;
                for (i, c) in self.cpus.iter().enumerate() {
                    if i == ci {
                        continue;
                    }
                    if let Some(k) = c.local_q.best_key() {
                        if best.is_none_or(|(bk, _)| k < bk) {
                            best = Some((k, i));
                        }
                    }
                }
                best.and_then(|(_, i)| self.cpus[i].local_q.pop())
            }
        };
        picked.map(|(key, tid)| {
            self.disp.on_pick(tid, key);
            tid
        })
    }

    fn dispatch_next(&mut self, cpu: CpuId, now: SimTime, fx: &mut Effects) {
        let ci = cpu.0 as usize;
        debug_assert!(self.cpus[ci].running.is_none(), "dispatch on busy CPU");
        self.cpus[ci].token += 1;
        self.cpus[ci].seg_end = None;
        self.cpus[ci].debt = SimDur::ZERO;
        if let Some(tid) = self.pick_for(cpu) {
            self.run_on(cpu, tid, now, fx);
        }
    }

    fn run_on(&mut self, cpu: CpuId, tid: Tid, now: SimTime, fx: &mut Effects) {
        let ci = cpu.0 as usize;
        let ctx_cost = self.opts.costs.ctx_switch;
        let recv_cost = self.opts.costs.recv_overhead;

        self.cpus[ci].running = Some(tid);
        self.cpus[ci].token += 1;
        self.cpus[ci].seg_end = None;
        self.cpus[ci].debt = SimDur::ZERO;
        self.cpus[ci].slice_start = now;
        self.trace.emit(now, cpu.0, HookId::Dispatch, tid.0, 0);
        let (band, waited) = {
            let slot = &mut self.threads[tid.0 as usize];
            let waited = now.since(slot.enqueued_at);
            slot.runq_wait += waited;
            (prio_band(slot.prio), waited)
        };
        self.stats.dispatches += 1;
        self.stats.runq_wait_ns[band] += waited.nanos();
        self.stats.runq_waits[band] += 1;

        enum Next {
            Segment,
            Spin,
            Complete,
        }
        let mut resumed = false;
        let next = {
            let slot = &mut self.threads[tid.0 as usize];
            debug_assert!(
                matches!(
                    slot.cont,
                    Cont::Step | Cont::FinishSend(_) | Cont::FinishRecv | Cont::PollWait { .. }
                ),
                "dispatched a blocked thread ({})",
                slot.name
            );
            slot.state = ThreadState::Running;
            slot.last_dispatch = now;
            match slot.cont {
                Cont::PollWait { tag, src } => {
                    if let Some(m) = slot.mailbox.take_match(tag, src) {
                        slot.in_msg = Some(m);
                        slot.cont = Cont::FinishRecv;
                        slot.remaining = recv_cost + ctx_cost;
                        resumed = true;
                        Next::Segment
                    } else {
                        slot.poll_since = now;
                        Next::Spin
                    }
                }
                _ if !slot.remaining.is_zero() => {
                    // Context-switch cost is charged into the resumed
                    // segment.
                    slot.remaining += ctx_cost;
                    resumed = true;
                    Next::Segment
                }
                _ => Next::Complete,
            }
        };
        self.stats.ctx_switches += u64::from(resumed);
        match next {
            Next::Segment => self.start_segment(cpu, tid, now, fx),
            Next::Spin => {} // resume busy-polling; no scheduled end
            Next::Complete => self.seg_complete(cpu, tid, now, fx),
        }
    }

    fn start_segment(&mut self, cpu: CpuId, tid: Tid, now: SimTime, fx: &mut Effects) {
        let ci = cpu.0 as usize;
        debug_assert_eq!(self.cpus[ci].running, Some(tid));
        let remaining = self.threads[tid.0 as usize].remaining;
        debug_assert!(!remaining.is_zero(), "empty segment");
        let end = now + remaining;
        self.cpus[ci].seg_end = Some(end);
        let token = self.cpus[ci].token;
        fx.schedule.push((end, KernelEvent::SegEnd { cpu, token }));
    }

    /// The current busy segment completed: perform its continuation, then
    /// step the program for the next action.
    fn seg_complete(&mut self, cpu: CpuId, tid: Tid, now: SimTime, fx: &mut Effects) {
        let cont = core::mem::replace(&mut self.threads[tid.0 as usize].cont, Cont::Step);
        match cont {
            Cont::FinishSend(mut msg) => {
                msg.sent_at = now;
                self.trace.emit(now, cpu.0, HookId::MsgSend, tid.0, msg.tag);
                fx.outbound.push(msg);
            }
            Cont::FinishRecv => {
                let tag = self.threads[tid.0 as usize]
                    .in_msg
                    .as_ref()
                    .map_or(0, |m| m.tag);
                self.trace.emit(now, cpu.0, HookId::MsgRecv, tid.0, tag);
            }
            Cont::Step => {}
            _ => unreachable!("segment completion with a waiting continuation"),
        }
        self.advance(cpu, tid, now, fx);
    }

    /// Step the program until it issues a time-consuming or waiting action.
    fn advance(&mut self, cpu: CpuId, tid: Tid, now: SimTime, fx: &mut Effects) {
        let costs = self.opts.costs;
        let mut zero_steps = 0u32;
        loop {
            zero_steps += 1;
            assert!(
                zero_steps < MAX_ZERO_COST_STEPS,
                "program '{}' livelocked the stepping loop",
                self.threads[tid.0 as usize].name
            );
            let mut program = self.threads[tid.0 as usize]
                .program
                .take()
                .expect("advance on a thread without a program");
            let action = {
                let local_now = self.clock.to_local(now);
                let node = self.node;
                let slot_prio = self.threads[tid.0 as usize].prio;
                let received = self.threads[tid.0 as usize].in_msg.take();
                let mut ctx = StepCtx {
                    now,
                    local_now,
                    node,
                    tid,
                    prio: slot_prio,
                    received,
                    io_pending: &mut self.io_pending,
                };
                program.step(&mut ctx)
            };
            self.threads[tid.0 as usize].program = Some(program);

            match action {
                Action::Compute(d) => {
                    let slot = &mut self.threads[tid.0 as usize];
                    let mut demand = d;
                    // Globally-queued interference pays the locality tax.
                    if slot.discipline == QueueDiscipline::Global && slot.class.is_interference() {
                        demand = demand.mul_f64(costs.global_queue_penalty);
                    }
                    if demand.is_zero() {
                        continue;
                    }
                    slot.remaining = demand;
                    slot.cont = Cont::Step;
                    self.start_segment(cpu, tid, now, fx);
                    return;
                }
                Action::Send(msg) => {
                    let slot = &mut self.threads[tid.0 as usize];
                    slot.remaining = costs.send_overhead;
                    slot.cont = Cont::FinishSend(msg);
                    self.start_segment(cpu, tid, now, fx);
                    return;
                }
                Action::Recv { tag, src, wait } => {
                    let matched = self.threads[tid.0 as usize].mailbox.take_match(tag, src);
                    let slot = &mut self.threads[tid.0 as usize];
                    if let Some(m) = matched {
                        slot.in_msg = Some(m);
                        slot.cont = Cont::FinishRecv;
                        slot.remaining = costs.recv_overhead;
                        self.start_segment(cpu, tid, now, fx);
                        return;
                    }
                    match wait {
                        WaitMode::Poll => {
                            slot.cont = Cont::PollWait { tag, src };
                            slot.poll_since = now;
                            // Spinning: CPU busy, no scheduled end.
                            return;
                        }
                        WaitMode::Block => {
                            slot.cont = Cont::BlockedRecv { tag, src };
                            self.block_current(cpu, tid, now, fx);
                            return;
                        }
                        WaitMode::Try => {
                            // Nothing matched: step again with no message.
                            continue;
                        }
                    }
                }
                Action::SleepUntil(local_t) => {
                    let local_now = self.clock.to_local(now);
                    let t = local_t.max(local_now);
                    let seq = self.callout_seq;
                    self.callout_seq += 1;
                    self.callouts.insert((t, seq), tid);
                    self.threads[tid.0 as usize].cont = Cont::Sleeping;
                    self.block_current(cpu, tid, now, fx);
                    return;
                }
                Action::SetPriority { target, prio } => {
                    self.set_priority(target, prio, now, fx);
                    continue;
                }
                Action::IoSubmit { bytes } => {
                    let token = self.io_next_token;
                    self.io_next_token += 1;
                    self.io_pending.push_back(IoRequest {
                        token,
                        requester: tid,
                        bytes,
                    });
                    self.trace.emit(now, cpu.0, HookId::IoStart, tid.0, token);
                    self.threads[tid.0 as usize].cont = Cont::IoWait;
                    // Wake the I/O daemon if it is idle.
                    let d = self.io_daemon.unwrap_or_else(|| {
                        panic!(
                            "IoSubmit on node {} with no I/O daemon configured",
                            self.node
                        )
                    });
                    if matches!(self.threads[d.0 as usize].cont, Cont::IoIdle) {
                        self.threads[d.0 as usize].cont = Cont::Step;
                        self.wake(d, now, fx);
                    }
                    self.block_current(cpu, tid, now, fx);
                    return;
                }
                Action::IoComplete(req) => {
                    self.trace
                        .emit(now, cpu.0, HookId::IoDone, req.requester.0, req.token);
                    debug_assert!(
                        matches!(self.threads[req.requester.0 as usize].cont, Cont::IoWait),
                        "IoComplete for a thread not waiting on I/O"
                    );
                    self.threads[req.requester.0 as usize].cont = Cont::Step;
                    self.wake(req.requester, now, fx);
                    continue;
                }
                Action::IoIdle => {
                    if !self.io_pending.is_empty() {
                        continue; // work arrived meanwhile; step again
                    }
                    self.threads[tid.0 as usize].cont = Cont::IoIdle;
                    self.block_current(cpu, tid, now, fx);
                    return;
                }
                Action::Trace { hook, aux } => {
                    self.trace.emit(now, cpu.0, hook, tid.0, aux);
                    continue;
                }
                Action::Yield => {
                    self.threads[tid.0 as usize].cont = Cont::Step;
                    self.preempt_current(cpu, now, fx);
                    self.dispatch_next(cpu, now, fx);
                    return;
                }
                Action::Exit => {
                    let ci = cpu.0 as usize;
                    let class = self.threads[tid.0 as usize].class;
                    let last = self.threads[tid.0 as usize].last_dispatch;
                    {
                        // The program is kept (not dropped) so its final
                        // counters stay readable via `program_metrics`.
                        let slot = &mut self.threads[tid.0 as usize];
                        slot.state = ThreadState::Exited;
                        slot.cpu_time += now.since(last);
                        slot.exited_at = Some(now);
                        self.disp.charge(tid, slot.prio, now.since(last));
                    }
                    if class == ThreadClass::App {
                        self.app_alive -= 1;
                    }
                    self.trace.emit(now, cpu.0, HookId::Undispatch, tid.0, 0);
                    self.cpus[ci].running = None;
                    self.dispatch_next(cpu, now, fx);
                    return;
                }
            }
        }
    }

    /// Take the running thread off `cpu` and requeue it (preemption,
    /// yield, round-robin). Leaves the CPU empty.
    fn preempt_current(&mut self, cpu: CpuId, now: SimTime, fx: &mut Effects) {
        let ci = cpu.0 as usize;
        let tid = self.cpus[ci].running.take().expect("preempt on idle CPU");
        let seg_end = self.cpus[ci].seg_end.take();
        let debt = core::mem::take(&mut self.cpus[ci].debt);
        self.cpus[ci].token += 1;
        if seg_end.is_some() {
            // The token bump already voids the in-flight SegEnd; tell the
            // driver so the calendar entry dies instead of lingering.
            fx.cancel_seg(cpu);
        }
        let slot = &mut self.threads[tid.0 as usize];
        let mut spin = SimDur::ZERO;
        if let Some(end) = seg_end {
            // Unfinished demand plus the interference that stretched it.
            slot.remaining = end.since(now) + debt;
        } else {
            // Poll-waiter: its on-CPU time so far was pure spinning.
            if matches!(slot.cont, Cont::PollWait { .. }) {
                spin = now.since(slot.poll_since);
                slot.poll_spin += spin;
            }
            slot.remaining = SimDur::ZERO;
        }
        let ran = now.since(slot.last_dispatch);
        slot.cpu_time += ran;
        slot.state = ThreadState::Ready;
        self.disp.charge(tid, slot.prio, ran);
        self.stats.preemptions += 1;
        self.stats.poll_spin_ns += spin.nanos();
        self.trace.emit(now, cpu.0, HookId::Undispatch, tid.0, 0);
        self.enqueue(tid, now);
    }

    /// Block the running thread (no requeue) and dispatch a successor.
    fn block_current(&mut self, cpu: CpuId, tid: Tid, now: SimTime, fx: &mut Effects) {
        let ci = cpu.0 as usize;
        debug_assert_eq!(self.cpus[ci].running, Some(tid));
        debug_assert!(
            self.threads[tid.0 as usize].remaining.is_zero(),
            "blocking mid-segment is not a kernel transition"
        );
        self.cpus[ci].running = None;
        if self.cpus[ci].seg_end.take().is_some() {
            fx.cancel_seg(cpu);
        }
        self.cpus[ci].debt = SimDur::ZERO;
        self.cpus[ci].token += 1;
        let slot = &mut self.threads[tid.0 as usize];
        slot.state = ThreadState::Blocked;
        let ran = now.since(slot.last_dispatch);
        slot.cpu_time += ran;
        self.disp.charge(tid, slot.prio, ran);
        slot.blocked_since = now;
        // Latch the reason now: `on_deliver` rewrites `cont` before the
        // wake, so it cannot be recovered later.
        slot.block_reason = match slot.cont {
            Cont::BlockedRecv { .. } => BlockReason::Msg,
            Cont::Sleeping => BlockReason::Sleep,
            Cont::IoWait | Cont::IoIdle => BlockReason::Io,
            _ => BlockReason::None,
        };
        debug_assert!(
            slot.block_reason != BlockReason::None,
            "block_current with a runnable continuation"
        );
        self.trace.emit(now, cpu.0, HookId::Undispatch, tid.0, 0);
        self.dispatch_next(cpu, now, fx);
    }

    /// Make a blocked thread runnable and place it.
    fn wake(&mut self, tid: Tid, now: SimTime, fx: &mut Effects) {
        {
            let slot = &mut self.threads[tid.0 as usize];
            if slot.state != ThreadState::Blocked {
                return; // spurious wake (duplicate callout, already running)
            }
            if matches!(slot.cont, Cont::Sleeping) {
                slot.cont = Cont::Step;
            }
            let blocked = now.since(slot.blocked_since);
            match slot.block_reason {
                BlockReason::Msg => slot.blk_msg += blocked,
                BlockReason::Io => slot.blk_io += blocked,
                BlockReason::Sleep => slot.blk_sleep += blocked,
                BlockReason::None => {}
            }
            slot.block_reason = BlockReason::None;
            slot.state = ThreadState::Ready;
        }
        let key = self.enqueue(tid, now);
        self.place(tid, key, now, fx);
    }

    /// Placement after readying: grab an idle CPU, else request preemption
    /// against the appropriate victim. `key` is the dispatch key the thread
    /// was just enqueued under — the dispatcher compares it against the
    /// victim's running key to decide whether preemption is warranted.
    fn place(&mut self, tid: Tid, key: DispatchKey, now: SimTime, fx: &mut Effects) {
        let disc = self.threads[tid.0 as usize].discipline;
        // Prefer the thread's home CPU if idle, then any idle CPU.
        let home_idle = match disc {
            QueueDiscipline::Pinned(c) if self.cpus[c.0 as usize].running.is_none() => Some(c),
            _ => None,
        };
        let idle = home_idle.or_else(|| {
            (0..self.ncpus)
                .map(CpuId)
                .find(|c| self.cpus[c.0 as usize].running.is_none())
        });
        if let Some(c) = idle {
            self.dispatch_next(c, now, fx);
            // If the idle CPU took this thread (or anything that freed the
            // situation), we are done; otherwise fall through to the
            // preemption path (possible when stealing is disabled or a
            // better thread was picked instead).
            if !self.is_queued(tid) || self.threads[tid.0 as usize].state != ThreadState::Ready {
                return;
            }
        }
        // Preemption path over busy CPUs only.
        let victim = match disc {
            QueueDiscipline::Pinned(c) => self.cpus[c.0 as usize].running.is_some().then_some(c),
            QueueDiscipline::Global => {
                // Worst (highest-key) runner; ties to the lowest CPU index.
                let mut worst: Option<(DispatchKey, CpuId)> = None;
                for (i, c) in self.cpus.iter().enumerate() {
                    let Some(r) = c.running else { continue };
                    let slot = &self.threads[r.0 as usize];
                    let rk = self
                        .disp
                        .running_key(r, slot.prio, now.since(slot.last_dispatch));
                    if worst.is_none_or(|(wk, _)| rk > wk) {
                        worst = Some((rk, CpuId(i as u8)));
                    }
                }
                worst.map(|(_, c)| c)
            }
        };
        let Some(victim) = victim else { return };
        let run_key = {
            let r = self.cpus[victim.0 as usize]
                .running
                .expect("victim is busy");
            let slot = &self.threads[r.0 as usize];
            self.disp
                .running_key(r, slot.prio, now.since(slot.last_dispatch))
        };
        if self.disp.should_preempt(key, run_key, false) {
            self.request_preempt(victim, now, fx);
        }
    }

    /// Ask `cpu` to reconsider its running thread, via the configured
    /// preemption mechanism.
    fn request_preempt(&mut self, cpu: CpuId, now: SimTime, fx: &mut Effects) {
        match self.opts.preempt {
            PreemptMode::Lazy => {
                // Nothing: the next tick, interrupt, or block notices.
            }
            PreemptMode::RtIpi => {
                // One IPI in flight node-wide (the deficiency the paper
                // fixed).
                if !self.ipi_in_flight {
                    self.ipi_in_flight = true;
                    self.stats.ipis_sent += 1;
                    let lat = self.rng.dur_range(
                        self.opts.costs.ipi_latency_min,
                        self.opts.costs.ipi_latency_max,
                    );
                    fx.schedule.push((now + lat, KernelEvent::Ipi { cpu }));
                }
            }
            PreemptMode::RtIpiImproved => {
                if !self.cpus[cpu.0 as usize].ipi_pending {
                    self.cpus[cpu.0 as usize].ipi_pending = true;
                    self.stats.ipis_sent += 1;
                    let lat = self.rng.dur_range(
                        self.opts.costs.ipi_latency_min,
                        self.opts.costs.ipi_latency_max,
                    );
                    fx.schedule.push((now + lat, KernelEvent::Ipi { cpu }));
                }
            }
        }
    }

    /// Preemption check at a notice point (tick, IPI, interrupt end).
    fn resched(&mut self, cpu: CpuId, now: SimTime, fx: &mut Effects) {
        let ci = cpu.0 as usize;
        let Some(tid) = self.cpus[ci].running else {
            self.dispatch_next(cpu, now, fx);
            return;
        };
        let cand = best_of(self.cpus[ci].local_q.best_key(), self.global_q.best_key());
        let Some(cand) = cand else {
            return;
        };
        let run_key = {
            let slot = &self.threads[tid.0 as usize];
            self.disp
                .running_key(tid, slot.prio, now.since(slot.last_dispatch))
        };
        let contenders = self.cpus[ci].local_q.len() + self.global_q.len();
        let slice = self.disp.slice_len(self.opts.timeslice, contenders);
        let slice_expired = now.since(self.cpus[ci].slice_start) >= slice;
        if self.disp.should_preempt(cand, run_key, slice_expired) {
            self.preempt_current(cpu, now, fx);
            self.dispatch_next(cpu, now, fx);
        }
    }

    /// Change a thread's priority (the co-scheduler's lever), triggering
    /// forward or reverse preemption handling as configured.
    pub fn set_priority(&mut self, target: Tid, prio: Prio, now: SimTime, fx: &mut Effects) {
        let old = self.threads[target.0 as usize].prio;
        if old == prio {
            return;
        }
        self.threads[target.0 as usize].prio = prio;
        self.trace.emit(
            now,
            u8::MAX,
            HookId::PrioChange,
            target.0,
            u64::from(prio.0),
        );
        match self.threads[target.0 as usize].state {
            ThreadState::Ready => {
                // Re-key in its queue, then re-run placement (forward
                // preemption if it now beats a runner). Bank the ready
                // time waited so far first — `enqueue` restamps
                // `enqueued_at`, and the wait-state identity must not
                // lose the interval spent under the old key.
                {
                    let slot = &mut self.threads[target.0 as usize];
                    slot.runq_wait += now.since(slot.enqueued_at);
                }
                self.dequeue(target);
                let key = self.enqueue(target, now);
                self.place(target, key, now, fx);
            }
            ThreadState::Running => {
                // Reverse preemption: only the improved RT option forces an
                // interrupt when a running thread is *lowered* below a
                // waiting one (§3, deficiency 1).
                let ci = self
                    .cpus
                    .iter()
                    .position(|c| c.running == Some(target))
                    .expect("running thread has a CPU");
                let cand = best_of(self.cpus[ci].local_q.best_key(), self.global_q.best_key());
                if let Some(cand) = cand {
                    let run_key = {
                        let slot = &self.threads[target.0 as usize];
                        self.disp
                            .running_key(target, prio, now.since(slot.last_dispatch))
                    };
                    if self.disp.should_preempt(cand, run_key, false)
                        && self.opts.preempt == PreemptMode::RtIpiImproved
                    {
                        self.request_preempt(CpuId(ci as u8), now, fx);
                    }
                }
            }
            ThreadState::Blocked | ThreadState::Exited => {}
        }
    }

    /// Deliver a message directly (test convenience; the cluster driver
    /// normally schedules `KernelEvent::Deliver`).
    pub fn deliver_now(&mut self, msg: Message, now: SimTime, fx: &mut Effects) {
        self.on_deliver(msg, now, fx);
    }

    // ------------------------------------------------------------------
    // Checkpoint / restore
    // ------------------------------------------------------------------

    /// Capture every piece of post-boot mutable state. See
    /// [`KernelSnapshot`] for the overlay-restore contract.
    ///
    /// # Panics
    /// Panics if the kernel has not booted — pre-boot state is entirely
    /// reproduced by re-running assembly, so snapshotting it indicates a
    /// driver bug.
    pub fn snapshot(&self) -> KernelSnapshot {
        assert!(self.booted, "snapshot before boot");
        let (events, dropped, evicted_until) = self.trace.snapshot_ring();
        KernelSnapshot {
            node: self.node,
            clock: self.clock,
            opts: self.opts,
            cpus: self
                .cpus
                .iter()
                .map(|c| CpuSnap {
                    running: c.running,
                    token: c.token,
                    seg_end: c.seg_end,
                    debt: c.debt,
                    slice_start: c.slice_start,
                    local_q: RunqSnap::capture(&c.local_q),
                    ipi_pending: c.ipi_pending,
                })
                .collect(),
            threads: self
                .threads
                .iter()
                .map(|t| ThreadSnap {
                    name: t.name.clone(),
                    state: t.state,
                    prio: t.prio,
                    cont: t.cont.clone(),
                    remaining: t.remaining,
                    in_msg: t.in_msg.clone(),
                    cpu_time: t.cpu_time,
                    last_dispatch: t.last_dispatch,
                    enqueued_at: t.enqueued_at,
                    poll_since: t.poll_since,
                    spawned_at: t.spawned_at,
                    runq_wait: t.runq_wait,
                    poll_spin: t.poll_spin,
                    noise_debt: t.noise_debt,
                    blk_msg: t.blk_msg,
                    blk_io: t.blk_io,
                    blk_sleep: t.blk_sleep,
                    blocked_since: t.blocked_since,
                    block_reason: t.block_reason,
                    exited_at: t.exited_at,
                    mailbox: t.mailbox.snapshot(),
                    program: t
                        .program
                        .as_ref()
                        .map_or(Value::Null, |p| p.snapshot_state()),
                })
                .collect(),
            global_q: RunqSnap::capture(&self.global_q),
            callouts: self
                .callouts
                .iter()
                .map(|(&(t, s), &tid)| (t, s, tid))
                .collect(),
            callout_seq: self.callout_seq,
            io_pending: self.io_pending.iter().copied().collect(),
            io_next_token: self.io_next_token,
            rng: self.rng.save_state(),
            ipi_in_flight: self.ipi_in_flight,
            app_alive: self.app_alive as u64,
            next_daemon_home: self.next_daemon_home,
            disp: self.disp.snapshot_state(),
            stats: KernelStatsSnap {
                dispatches: self.stats.dispatches,
                ctx_switches: self.stats.ctx_switches,
                preemptions: self.stats.preemptions,
                ipis_sent: self.stats.ipis_sent,
                ipis_taken: self.stats.ipis_taken,
                ticks: self.stats.ticks,
                callouts_fired: self.stats.callouts_fired,
                poll_spin_ns: self.stats.poll_spin_ns,
                runq_wait_ns: self.stats.runq_wait_ns.to_vec(),
                runq_waits: self.stats.runq_waits.to_vec(),
            },
            trace: TraceSnap {
                events,
                dropped,
                evicted_until,
            },
        }
    }

    /// Overlay a checkpointed state onto this kernel. The kernel must be
    /// booted and assembled identically to the one that produced the
    /// snapshot (same spawns in the same order); programs stay in place
    /// and receive their state via [`Program::restore_state`].
    pub fn restore(&mut self, snap: &KernelSnapshot) -> Result<(), String> {
        if !self.booted {
            return Err("restore before boot: rebuild and boot the node first".into());
        }
        if snap.node != self.node {
            return Err(format!(
                "checkpoint is for node {} but this kernel is node {}",
                snap.node, self.node
            ));
        }
        if snap.cpus.len() != self.cpus.len() {
            return Err(format!(
                "checkpoint has {} CPUs but node {} has {}",
                snap.cpus.len(),
                self.node,
                self.cpus.len()
            ));
        }
        if snap.threads.len() != self.threads.len() {
            return Err(format!(
                "checkpoint has {} threads but node {} has {}",
                snap.threads.len(),
                self.node,
                self.threads.len()
            ));
        }
        if snap.opts != self.opts {
            return Err(format!(
                "checkpoint was taken under different scheduler options on node {}",
                self.node
            ));
        }
        for (slot, ts) in self.threads.iter().zip(&snap.threads) {
            if slot.name != ts.name {
                return Err(format!(
                    "checkpoint thread '{}' does not match rebuilt thread '{}' on node {}",
                    ts.name, slot.name, self.node
                ));
            }
        }

        self.clock = snap.clock;
        for (cpu, cs) in self.cpus.iter_mut().zip(&snap.cpus) {
            cpu.running = cs.running;
            cpu.token = cs.token;
            cpu.seg_end = cs.seg_end;
            cpu.debt = cs.debt;
            cpu.slice_start = cs.slice_start;
            cpu.local_q = cs.local_q.rebuild()?;
            cpu.ipi_pending = cs.ipi_pending;
        }
        for (slot, ts) in self.threads.iter_mut().zip(&snap.threads) {
            slot.state = ts.state;
            slot.prio = ts.prio;
            slot.cont = ts.cont.clone();
            slot.remaining = ts.remaining;
            slot.in_msg = ts.in_msg.clone();
            slot.cpu_time = ts.cpu_time;
            slot.last_dispatch = ts.last_dispatch;
            slot.enqueued_at = ts.enqueued_at;
            slot.poll_since = ts.poll_since;
            slot.spawned_at = ts.spawned_at;
            slot.runq_wait = ts.runq_wait;
            slot.poll_spin = ts.poll_spin;
            slot.noise_debt = ts.noise_debt;
            slot.blk_msg = ts.blk_msg;
            slot.blk_io = ts.blk_io;
            slot.blk_sleep = ts.blk_sleep;
            slot.blocked_since = ts.blocked_since;
            slot.block_reason = ts.block_reason;
            slot.exited_at = ts.exited_at;
            slot.mailbox.restore(ts.mailbox.clone());
            if let Some(p) = slot.program.as_mut() {
                p.restore_state(&ts.program)
                    .map_err(|e| format!("program state for thread '{}': {e}", slot.name))?;
            }
        }
        self.global_q = snap.global_q.rebuild()?;
        self.callouts = snap
            .callouts
            .iter()
            .map(|&(t, s, tid)| ((t, s), tid))
            .collect();
        self.callout_seq = snap.callout_seq;
        self.io_pending = snap.io_pending.iter().copied().collect();
        self.io_next_token = snap.io_next_token;
        self.rng.load_state(&snap.rng)?;
        self.ipi_in_flight = snap.ipi_in_flight;
        self.app_alive = snap.app_alive as usize;
        self.next_daemon_home = snap.next_daemon_home;
        self.disp
            .restore_state(&snap.disp)
            .map_err(|e| format!("dispatcher state on node {}: {e}", self.node))?;
        self.stats = KernelStats {
            dispatches: snap.stats.dispatches,
            ctx_switches: snap.stats.ctx_switches,
            preemptions: snap.stats.preemptions,
            ipis_sent: snap.stats.ipis_sent,
            ipis_taken: snap.stats.ipis_taken,
            ticks: snap.stats.ticks,
            callouts_fired: snap.stats.callouts_fired,
            poll_spin_ns: snap.stats.poll_spin_ns,
            runq_wait_ns: band_array(&snap.stats.runq_wait_ns, "runq_wait_ns")?,
            runq_waits: band_array(&snap.stats.runq_waits, "runq_waits")?,
        };
        self.trace.restore_ring(
            snap.trace.events.clone(),
            snap.trace.dropped,
            snap.trace.evicted_until,
        )?;
        Ok(())
    }
}

/// Better (lower) of two optional dispatch keys.
fn best_of(a: Option<DispatchKey>, b: Option<DispatchKey>) -> Option<DispatchKey> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.min(y)),
        (x, y) => x.or(y),
    }
}
